#!/usr/bin/env python
"""Chrome-trace validator: structural checks on exported trace files.

Run from the repository root (needs ``src`` importable)::

    PYTHONPATH=src python tools/check_trace.py trace.json [more.json ...]

Loads each file as JSON and runs :func:`repro.obs.validate_chrome_trace`
over it: the payload must carry a ``traceEvents`` list whose entries are
well-formed ``X`` (complete span), ``C`` (counter) or ``i`` (instant)
events — name/ts/pid/tid present, non-negative durations, non-empty
counter args — and must contain at least one span (an empty timeline
from a supposedly traced run is a failed run, not a clean one).

CI uses this to validate the trace written by the traced campaign smoke
(``repro trace ... campaign run ...``); see docs/observability.md.

Exit code 0 when every file is valid; 1 with one line per problem
otherwise; 2 on usage errors (no files named, file missing/unreadable).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # bare-checkout convenience, mirrors reprolint.py
    sys.path.insert(0, str(SRC))

from repro.obs import validate_chrome_trace  # noqa: E402


def check_file(path: Path) -> List[str]:
    """Problems found in one trace file (empty list = valid)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable trace: {error}"]
    return [f"{path}: {problem}" for problem in validate_chrome_trace(payload)]


def main(argv: "List[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: check_trace.py TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2
    missing = [arg for arg in args if not Path(arg).is_file()]
    if missing:
        for arg in missing:
            print(f"no such trace file: {arg}", file=sys.stderr)
        return 2
    problems: List[str] = []
    summaries: List[str] = []
    for arg in args:
        path = Path(arg)
        file_problems = check_file(path)
        problems.extend(file_problems)
        if not file_problems:
            events = json.loads(path.read_text(encoding="utf-8"))["traceEvents"]
            spans = sum(1 for event in events if event.get("ph") == "X")
            summaries.append(f"{path}: {spans} spans, {len(events)} events")
    for line in problems:
        print(line)
    if problems:
        print(f"{len(problems)} trace problem(s)")
        return 1
    for line in summaries:
        print(line)
    print("traces OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

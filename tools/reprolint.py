#!/usr/bin/env python
"""Standalone launcher for the reprolint static analyzer.

Equivalent to ``PYTHONPATH=src python -m repro.lint`` but runnable from a
bare checkout without environment setup::

    python tools/reprolint.py [PATHS ...]

See ``python tools/reprolint.py --help`` and ``docs/determinism.md`` for
the rule set, configuration (``[tool.reprolint]`` in ``pyproject.toml``)
and the ``# reprolint: disable=RPLxxx`` escape syntax.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.lint.cli import main  # noqa: E402  (needs the src path above)

if __name__ == "__main__":
    sys.exit(main())

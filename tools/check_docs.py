#!/usr/bin/env python
"""Documentation checker: resolvable links, parseable code blocks.

Run from anywhere::

    python tools/check_docs.py

Checks, over the repository's Markdown tree (top-level ``README.md``,
``docs/*.md``, ``src/repro/README.md``):

* every intra-repo Markdown link ``[text](path)`` resolves to an existing
  file or directory (``http(s)://``, ``mailto:`` and ``#anchor`` links are
  skipped);
* every fenced code block tagged ``python`` compiles
  (``compile(..., "exec")``) and every block tagged ``bash`` passes
  ``bash -n`` — documentation examples must at least parse.

Exit code 0 when clean; 1 with one line per problem otherwise.  The same
checks run in the test suite (``tests/test_docs.py``) and in the CI
``docs`` job.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target split off any " title" suffix later.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
FENCE_RE = re.compile(r"^```([A-Za-z0-9_+-]*)\s*$")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path = REPO_ROOT) -> List[Path]:
    """The Markdown files under the documentation contract."""
    files = [root / "README.md", root / "src" / "repro" / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path) -> List[str]:
    """Problems with the intra-repo links of one Markdown file."""
    problems: List[str] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1).strip().split(" ")[0]
        if target.startswith(_SKIP_PREFIXES):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text[: match.start()].count("\n") + 1
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link "
                f"-> {target}"
            )
    return problems


def iter_code_blocks(text: str) -> Iterator[Tuple[str, str, int]]:
    """Yield ``(language, code, first_line_number)`` for each fenced block."""
    language = None
    block: List[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        fence = FENCE_RE.match(line.strip())
        if fence and language is None:
            language = fence.group(1).lower()
            block = []
            start = number + 1
        elif line.strip() == "```" and language is not None:
            yield language, "\n".join(block), start
            language = None
        elif language is not None:
            block.append(line)


def check_code_blocks(path: Path) -> List[str]:
    """Problems with the tagged code blocks of one Markdown file."""
    problems: List[str] = []
    for language, code, line in iter_code_blocks(path.read_text(encoding="utf-8")):
        location = f"{path.relative_to(REPO_ROOT)}:{line}"
        if language == "python":
            try:
                compile(code, str(path), "exec")
            except SyntaxError as error:
                problems.append(
                    f"{location}: python block does not compile: {error}"
                )
        elif language == "bash":
            result = subprocess.run(
                ["bash", "-n"], input=code, text=True, capture_output=True
            )
            if result.returncode != 0:
                detail = (result.stderr or "").strip().splitlines()
                problems.append(
                    f"{location}: bash block does not parse: "
                    f"{detail[0] if detail else 'bash -n failed'}"
                )
    return problems


def main() -> int:
    problems: List[str] = []
    files = doc_files()
    if not files:
        print("no documentation files found — is the repo layout intact?")
        return 1
    for path in files:
        problems.extend(check_links(path))
        problems.extend(check_code_blocks(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    blocks = sum(
        1
        for path in files
        for language, _, _ in iter_code_blocks(path.read_text(encoding="utf-8"))
        if language in ("python", "bash")
    )
    print(
        f"docs OK: {len(files)} files, all links resolve, "
        f"{blocks} python/bash blocks parse"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

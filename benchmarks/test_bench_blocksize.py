"""Micro-benchmark: tune the batched engines' ``block_size`` option.

Sweeps the committed-future window consumed per engine step over a range of
powers of two, running the standard n=120 vectorized cell (``gathering`` +
``waiting``: one dense-event and one sparse-event workload) at each size.
Two things are asserted:

* **correctness is block-size independent** — every size reproduces the
  reference metrics trial for trial (the block boundaries are pure
  consumption windows, never semantics);
* the engine's **default** (:data:`repro.core.fast_execution.
  DEFAULT_BLOCK_SIZE`, exposed as the ``block_size`` engine option) is not
  badly mistuned: it must reach at least half the throughput of the best
  size measured in this run.

The measured table is printed and appended to ``BENCH_blocksize.json`` so
the tuning can be revisited when the workload shape changes.
"""

import time

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.core.fast_execution import DEFAULT_BLOCK_SIZE
from repro.sim.batch import run_sweep_cell

from bench_utils import record_bench_trajectory

BENCH_N = 120
BENCH_TRIALS = 5
BLOCK_SIZES = (1024, 2048, 4096, 8192, 16384, 32768)
TIMING_ROUNDS = 3

FACTORIES = {
    "gathering": lambda n: Gathering(),
    "waiting": lambda n: Waiting(),
}


def _run_cells(block_size):
    return {
        name: run_sweep_cell(
            factory,
            BENCH_N,
            BENCH_TRIALS,
            master_seed=7,
            experiment="bench_blocksize",
            engine="vectorized",
            block_size=block_size,
        )
        for name, factory in FACTORIES.items()
    }


def test_block_size_tuning(benchmark):
    """Every block size is exact; the default is competitively tuned."""
    expected = {
        name: run_sweep_cell(
            factory,
            BENCH_N,
            BENCH_TRIALS,
            master_seed=7,
            experiment="bench_blocksize",
            engine="reference",
        )
        for name, factory in FACTORIES.items()
    }

    def measure():
        timings = {}
        for block_size in BLOCK_SIZES:
            best = None
            for _ in range(TIMING_ROUNDS):
                started = time.perf_counter()
                cells = _run_cells(block_size)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            assert cells == expected, block_size
            timings[block_size] = best
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    best_size = min(timings, key=timings.get)
    default_seconds = timings.get(DEFAULT_BLOCK_SIZE)
    if default_seconds is None:
        best_default = None
        for _ in range(TIMING_ROUNDS):
            started = time.perf_counter()
            _run_cells(DEFAULT_BLOCK_SIZE)
            elapsed = time.perf_counter() - started
            best_default = (
                elapsed if best_default is None else min(best_default, elapsed)
            )
        default_seconds = best_default
    print(f"\nblock-size tuning (n={BENCH_N}, trials={BENCH_TRIALS}):")
    for block_size in BLOCK_SIZES:
        marker = " <- best" if block_size == best_size else (
            " <- default" if block_size == DEFAULT_BLOCK_SIZE else ""
        )
        print(f"  block {block_size:6d}: {timings[block_size] * 1000:7.2f} ms{marker}")
    benchmark.extra_info["timings_ms"] = {
        str(k): round(v * 1000, 3) for k, v in timings.items()
    }
    benchmark.extra_info["best_block_size"] = best_size
    benchmark.extra_info["default_block_size"] = DEFAULT_BLOCK_SIZE
    record_bench_trajectory(
        "blocksize",
        {
            "n": BENCH_N,
            "trials": BENCH_TRIALS,
            "algorithms": sorted(FACTORIES),
            "timings_ms": {
                str(k): round(v * 1000, 3) for k, v in timings.items()
            },
            "best_block_size": best_size,
            "default_block_size": DEFAULT_BLOCK_SIZE,
        },
    )
    assert default_seconds <= 2.0 * timings[best_size], (
        f"default block size {DEFAULT_BLOCK_SIZE} ({default_seconds * 1000:.1f} ms) is "
        f"more than 2x slower than the best measured size {best_size} "
        f"({timings[best_size] * 1000:.1f} ms) — retune the default"
    )

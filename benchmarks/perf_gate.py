"""CI perf-regression gate for the trial-vectorized engine and opt kernel.

Compares the **latest** vectorized-vs-reference record of the
``BENCH_engine.json`` trajectory — in CI that is the record the preceding
``pytest benchmarks`` step appended moments earlier, on the same machine —
against the best *prior* records, and fails (exit code 1) on a regression.
Reading the fresh record instead of re-measuring keeps the gate free and
avoids double-running the most expensive benchmark of the job.

Speedups are wall-clock *ratios*, far more hardware-portable than absolute
timings — but not perfectly so: a committed development-machine record can
legitimately sit above what a loaded 2-core CI runner measures.  The gate
therefore applies two tolerances:

* **same machine class** (matching ``host`` fingerprint, see
  :func:`bench_utils.machine_fingerprint`): the measured speedup must stay
  within 30% of the best prior record — the tight ratchet the trajectory
  is for.  It engages wherever records accumulate from the same machine
  class: locally against the committed trajectory, and on CI only when a
  committed record's host matches the runner class (ephemeral runners do
  not commit their own records back);
* **any machine**: the measured speedup must stay within 60% of the best
  prior record anywhere — a catastrophic-regression guard that still
  catches an engine collapse (e.g. 32x -> 8x) without flaking on hardware
  spread.  This floor is additionally capped at the benchmark suite's own
  CI-safe hard floor (``MIN_VECTORIZED_VS_REFERENCE``), so a machine the
  suite considers healthy can never fail the gate.

When the trajectory holds no vectorized record at all (fresh clone, or
after trimming stray records), the gate measures once via
``test_bench_engine.measure_vectorized_engine``, **appends** the result as
the trajectory's first vectorized record, and passes — so the very next
run has something to guard against.  ``--measure`` forces that path;
``--require-record`` (the CI mode) forbids it, failing with a clear
message instead when no record exists — in CI a missing record means the
preceding benchmark step silently failed to record, which the gate must
surface rather than paper over.  A trajectory file that exists but is
empty or unparseable always fails with a clear message (exit code 2),
never a traceback.

The gate also covers the competitive-ratio subsystem's offline-optimum
kernel (:func:`opt_kernel_records`, appended by
``benchmarks/test_bench_opt.py``): ``--require-record`` demands that a
``ratio_kernel`` record exists and its recorded speedup stays above the
subsystem's acceptance floor (>= 10x vs per-sequence Python).

A third record family covers the **knowledge-kernel** workload — the
three knowledge-heavy algorithms (spanning tree / full knowledge / future
broadcast) that run trial-vectorized through their own decision kernels
(:func:`knowledge_kernel_records`, appended by
``test_bench_engine.test_knowledge_kernel_speedup_and_equality`` under
the distinct engine tag ``vectorized_knowledge`` so the main vectorized
ratchet keeps its single-workload meaning).  ``--require-record`` demands
that a vectorized_knowledge-vs-fast record exists and its recorded
speedup stays above ``MIN_KNOWLEDGE_VS_FAST``.

Run from the repository root::

    PYTHONPATH=src:benchmarks python benchmarks/perf_gate.py

The gate is wired into the CI ``benchmarks`` job (``.github/workflows/
ci.yml``) directly after the benchmark run.
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

#: Tolerated drop below the best prior record from the same machine class.
SAME_HOST_TOLERANCE = 0.30
#: Tolerated drop below the best prior record from any machine.
CROSS_HOST_TOLERANCE = 0.60


class TrajectoryError(RuntimeError):
    """The benchmark trajectory file is unusable (empty, corrupt, wrong shape)."""


def load_trajectory() -> list:
    """The BENCH_engine.json trajectory, or ``[]`` when the file is absent.

    An absent file is a legitimate bootstrap state (fresh clone before any
    benchmark ran); an *unreadable* one is not — empty files, invalid JSON
    and non-list payloads raise :class:`TrajectoryError` with a message
    naming the file and the fix, instead of surfacing a raw traceback.
    """
    path = BENCH_DIR / "BENCH_engine.json"
    if not path.exists():
        return []
    text = path.read_text(encoding="utf-8").strip()
    regenerate = (
        "delete the file and re-run the benchmarks to regenerate it "
        "(PYTHONPATH=src python -m pytest benchmarks -x -q -s)"
    )
    if not text:
        raise TrajectoryError(f"{path} exists but is empty; {regenerate}")
    try:
        trajectory = json.loads(text)
    except json.JSONDecodeError as error:
        raise TrajectoryError(
            f"{path} is not valid JSON ({error}); {regenerate}"
        ) from None
    if not isinstance(trajectory, list):
        raise TrajectoryError(
            f"{path} must contain a JSON list of benchmark records, "
            f"found {type(trajectory).__name__}; {regenerate}"
        )
    return trajectory


def vectorized_records() -> list:
    """All vectorized-vs-reference records, in trajectory order.

    Raises:
        TrajectoryError: if the trajectory file exists but is unreadable.
    """
    return [
        record
        for record in load_trajectory()
        if record.get("engine") == "vectorized"
        and record.get("baseline") == "reference"
    ]


def opt_kernel_records() -> list:
    """All ratio-kernel-vs-per-sequence-Python records, in trajectory order.

    These are appended by ``benchmarks/test_bench_opt.py`` (the offline-
    optimum kernel of the competitive-ratio subsystem).

    Raises:
        TrajectoryError: if the trajectory file exists but is unreadable.
    """
    return [
        record
        for record in load_trajectory()
        if record.get("engine") == "ratio_kernel"
        and record.get("baseline") == "offline_python"
    ]


def knowledge_kernel_records() -> list:
    """All vectorized_knowledge-vs-fast records, in trajectory order.

    These are appended by ``test_bench_engine.
    test_knowledge_kernel_speedup_and_equality`` (the decision kernels of
    the knowledge-heavy algorithms: spanning tree, full knowledge, future
    broadcast).

    Raises:
        TrajectoryError: if the trajectory file exists but is unreadable.
    """
    return [
        record
        for record in load_trajectory()
        if record.get("engine") == "vectorized_knowledge"
        and record.get("baseline") == "fast"
    ]


def check_knowledge_kernel(
    records: list, require_record: bool, gates: dict | None = None
) -> int:
    """Gate the knowledge-kernel record: presence (CI mode) and hard floor.

    Like the opt kernel, this workload gets a single acceptance floor
    (the same ``MIN_KNOWLEDGE_VS_FAST`` the benchmark asserts) rather
    than a ratchet: the margin over the fast engine is structurally
    modest (both engines share the per-trial plan/oracle construction
    cost), so a host-relative ratchet would mostly track noise.  Returns
    the exit-code contribution (0 ok, 1 regression, 2 missing required
    record).
    """
    if not records:
        if require_record:
            print(
                "perf gate error: BENCH_engine.json holds no "
                "vectorized_knowledge-vs-fast record; the benchmark step "
                "that precedes the gate should have appended one (run "
                "PYTHONPATH=src python -m pytest "
                "benchmarks/test_bench_engine.py -x -q -s)"
            )
            if gates is not None:
                gates["knowledge_kernel"] = {"ok": False, "error": "missing record"}
            return 2
        print("no knowledge-kernel record yet; knowledge gate passes (bootstrap)")
        if gates is not None:
            gates["knowledge_kernel"] = {"ok": True, "bootstrap": True}
        return 0
    from test_bench_engine import MIN_KNOWLEDGE_VS_FAST

    latest = records[-1]["speedup"]
    if gates is not None:
        gates["knowledge_kernel"] = {
            "ok": latest >= MIN_KNOWLEDGE_VS_FAST,
            "speedup": latest,
            "floor": MIN_KNOWLEDGE_VS_FAST,
            "margin": round(latest - MIN_KNOWLEDGE_VS_FAST, 3),
            "record": records[-1],
        }
    print(
        f"latest recorded knowledge-kernel speedup: {latest:.1f}x vs the "
        f"fast engine (floor {MIN_KNOWLEDGE_VS_FAST:.1f}x)"
    )
    if latest < MIN_KNOWLEDGE_VS_FAST:
        print(
            f"FAIL: knowledge-kernel speedup {latest:.1f}x below the "
            f"{MIN_KNOWLEDGE_VS_FAST:.1f}x floor"
        )
        return 1
    return 0


def check_opt_kernel(
    records: list, require_record: bool, gates: dict | None = None
) -> int:
    """Gate the opt-kernel record: presence (CI mode) and hard floor.

    The opt kernel has a single acceptance floor (>= 10x, the same one
    ``test_bench_opt.py`` asserts) rather than a ratchet: its wall-clock
    is dominated by one numpy sweep, so the two-tier host tolerance of the
    engine gate adds nothing.  Returns the exit-code contribution (0 ok,
    1 regression, 2 missing required record).
    """
    if not records:
        if require_record:
            print(
                "perf gate error: BENCH_engine.json holds no ratio_kernel-"
                "vs-offline_python record; the benchmark step that precedes "
                "the gate should have appended one (run PYTHONPATH=src "
                "python -m pytest benchmarks/test_bench_opt.py -x -q -s)"
            )
            if gates is not None:
                gates["ratio_kernel"] = {"ok": False, "error": "missing record"}
            return 2
        print("no opt-kernel record yet; opt gate passes (bootstrap)")
        if gates is not None:
            gates["ratio_kernel"] = {"ok": True, "bootstrap": True}
        return 0
    from test_bench_opt import MIN_OPT_KERNEL_SPEEDUP

    latest = records[-1]["speedup"]
    if gates is not None:
        gates["ratio_kernel"] = {
            "ok": latest >= MIN_OPT_KERNEL_SPEEDUP,
            "speedup": latest,
            "floor": MIN_OPT_KERNEL_SPEEDUP,
            "margin": round(latest - MIN_OPT_KERNEL_SPEEDUP, 3),
            "record": records[-1],
        }
    print(
        f"latest recorded opt-kernel speedup: {latest:.1f}x vs per-sequence "
        f"python (floor {MIN_OPT_KERNEL_SPEEDUP:.0f}x)"
    )
    if latest < MIN_OPT_KERNEL_SPEEDUP:
        print(
            f"FAIL: opt-kernel speedup {latest:.1f}x below the "
            f"{MIN_OPT_KERNEL_SPEEDUP:.0f}x floor"
        )
        return 1
    return 0


def measure_and_record() -> dict:
    """Measure once, append the record to the trajectory, return it."""
    from bench_utils import record_bench_trajectory
    from test_bench_engine import (
        BENCH_N,
        BENCH_TRIALS,
        VECTOR_FACTORIES,
        measure_vectorized_engine,
    )

    reference_seconds, fast_seconds, vectorized_seconds = (
        measure_vectorized_engine()
    )
    speedup = reference_seconds / vectorized_seconds
    record = {
        "engine": "vectorized",
        "baseline": "reference",
        "adversary": "uniform",
        "algorithms": sorted(VECTOR_FACTORIES),
        "n": BENCH_N,
        "trials": BENCH_TRIALS,
        "seconds": round(vectorized_seconds, 6),
        "baseline_seconds": round(reference_seconds, 6),
        "speedup": round(speedup, 3),
    }
    record_bench_trajectory("engine", record)
    print(
        f"measured (n={BENCH_N}, trials={BENCH_TRIALS}): reference "
        f"{reference_seconds:.3f}s, fast {fast_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s -> {speedup:.1f}x vs reference "
        "(recorded)"
    )
    return record


def check(measured: dict, prior: list, gates: dict | None = None) -> int:
    """Apply the two-tier regression rule; return the process exit code."""
    from bench_utils import machine_fingerprint

    speedup = measured["speedup"]
    host = measured.get("host", machine_fingerprint())
    gate: dict = {"speedup": speedup, "host": host, "record": measured}
    failed = False
    same_host = [r["speedup"] for r in prior if r.get("host") == host]
    if same_host:
        floor = (1.0 - SAME_HOST_TOLERANCE) * max(same_host)
        gate["same_host"] = {
            "best": max(same_host),
            "floor": round(floor, 3),
            "margin": round(speedup - floor, 3),
            "ok": speedup >= floor,
        }
        print(
            f"same-host best {max(same_host):.1f}x, floor {floor:.1f}x "
            f"({SAME_HOST_TOLERANCE:.0%} tolerance)"
        )
        if speedup < floor:
            print(
                f"FAIL: {speedup:.1f}x dropped more than "
                f"{SAME_HOST_TOLERANCE:.0%} below the same-host best"
            )
            failed = True
    from test_bench_engine import MIN_VECTORIZED_VS_REFERENCE

    any_host = [r["speedup"] for r in prior]
    # The cross-host floor never exceeds the benchmark suite's own CI-safe
    # hard floor: a machine the suite considers healthy must pass the gate.
    floor = min(
        (1.0 - CROSS_HOST_TOLERANCE) * max(any_host),
        MIN_VECTORIZED_VS_REFERENCE,
    )
    gate["cross_host"] = {
        "best": max(any_host),
        "floor": round(floor, 3),
        "margin": round(speedup - floor, 3),
        "ok": speedup >= floor,
    }
    print(
        f"all-host best {max(any_host):.1f}x, catastrophic floor "
        f"{floor:.1f}x ({CROSS_HOST_TOLERANCE:.0%} tolerance, capped at the "
        f"suite floor {MIN_VECTORIZED_VS_REFERENCE:.0f}x)"
    )
    if speedup < floor:
        print(
            f"FAIL: {speedup:.1f}x dropped more than "
            f"{CROSS_HOST_TOLERANCE:.0%} below the best recorded anywhere"
        )
        failed = True
    gate["ok"] = not failed
    if gates is not None:
        gates["vectorized"] = gate
    if failed:
        return 1
    print("PASS")
    return 0


def _run(argv: list, gates: dict) -> int:
    """The gate body; text goes to stdout, structured results into ``gates``."""
    try:
        records = vectorized_records()
        opt_records = opt_kernel_records()
        knowledge_records = knowledge_kernel_records()
    except TrajectoryError as error:
        print(f"perf gate error: {error}")
        gates["trajectory"] = {"ok": False, "error": str(error)}
        return 2
    if not records and "--require-record" in argv:
        # CI mode: the benchmark step that runs immediately before the gate
        # must have appended a vectorized record; its absence means that
        # step silently failed to record, and measuring here would hide it.
        print(
            "perf gate error: BENCH_engine.json holds no vectorized-vs-"
            "reference record for the gated config; the benchmark step "
            "that precedes the gate should have appended one (run "
            "PYTHONPATH=src python -m pytest benchmarks -x -q -s, or pass "
            "--measure to let the gate measure and record itself)"
        )
        gates["vectorized"] = {"ok": False, "error": "missing record"}
        return 2
    opt_exit = check_opt_kernel(opt_records, "--require-record" in argv, gates)
    if opt_exit:
        return opt_exit
    knowledge_exit = check_knowledge_kernel(
        knowledge_records, "--require-record" in argv, gates
    )
    if knowledge_exit:
        return knowledge_exit
    if "--measure" in argv or not records:
        measured = measure_and_record()
        prior = records
    else:
        measured = records[-1]
        prior = records[:-1]
        print(
            f"latest recorded vectorized speedup: "
            f"{measured['speedup']:.1f}x vs reference"
        )
    if not prior:
        print("no prior vectorized record to compare against; gate passes (bootstrap)")
        gates["vectorized"] = {
            "ok": True, "bootstrap": True, "speedup": measured["speedup"],
        }
        return 0
    return check(measured, prior, gates)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    gates: dict = {}
    if "--json" not in argv:
        return _run(argv, gates)
    # --json: machine-readable mode.  The human-readable lines are
    # swallowed (they narrate the same decisions the structure reports)
    # and one JSON object with per-gate record/floor/margin goes to
    # stdout, so CI and `repro bench trajectory` consumers never have to
    # scrape text.
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = _run(argv, gates)
    print(
        json.dumps(
            {"ok": code == 0, "exit_code": code, "gates": gates},
            indent=2,
            sort_keys=True,
        )
    )
    return code


if __name__ == "__main__":
    sys.exit(main())

"""Unit tests for the perf gate's trajectory handling and failure modes.

The gate must never die with a traceback on a missing/empty/corrupt
``BENCH_engine.json`` — CI surfaces its stdout, so every failure mode has
to print a clear, actionable message and return a distinct exit code
(0 pass, 1 regression, 2 unusable trajectory / missing required record).
"""

import json

import perf_gate
import pytest


@pytest.fixture
def gate_dir(tmp_path, monkeypatch):
    """Point the gate at an isolated trajectory directory."""
    monkeypatch.setattr(perf_gate, "BENCH_DIR", tmp_path)
    return tmp_path


def write_trajectory(gate_dir, records):
    (gate_dir / "BENCH_engine.json").write_text(json.dumps(records))


def vectorized_record(speedup, host="ci"):
    return {
        "engine": "vectorized",
        "baseline": "reference",
        "speedup": speedup,
        "host": host,
    }


def opt_record(speedup, host="ci"):
    return {
        "engine": "ratio_kernel",
        "baseline": "offline_python",
        "speedup": speedup,
        "host": host,
    }


def knowledge_record(speedup, host="ci"):
    return {
        "engine": "vectorized_knowledge",
        "baseline": "fast",
        "speedup": speedup,
        "host": host,
    }


class TestTrajectoryLoading:
    def test_missing_file_is_bootstrap_not_error(self, gate_dir):
        assert perf_gate.vectorized_records() == []

    def test_empty_file_raises_clear_error(self, gate_dir):
        (gate_dir / "BENCH_engine.json").write_text("")
        with pytest.raises(perf_gate.TrajectoryError, match="empty"):
            perf_gate.vectorized_records()

    def test_invalid_json_raises_clear_error(self, gate_dir):
        (gate_dir / "BENCH_engine.json").write_text("{truncated")
        with pytest.raises(perf_gate.TrajectoryError, match="not valid JSON"):
            perf_gate.vectorized_records()

    def test_non_list_payload_raises_clear_error(self, gate_dir):
        (gate_dir / "BENCH_engine.json").write_text('{"engine": "vectorized"}')
        with pytest.raises(perf_gate.TrajectoryError, match="JSON list"):
            perf_gate.vectorized_records()

    def test_filters_to_gated_config(self, gate_dir):
        write_trajectory(gate_dir, [
            vectorized_record(30.0),
            {"engine": "fast", "baseline": "reference", "speedup": 8.0},
            {"engine": "vectorized", "baseline": "fast", "speedup": 2.0},
        ])
        records = perf_gate.vectorized_records()
        assert [r["speedup"] for r in records] == [30.0]


class TestMainExitCodes:
    def test_empty_file_exits_2_with_message(self, gate_dir, capsys):
        (gate_dir / "BENCH_engine.json").write_text("")
        assert perf_gate.main([]) == 2
        out = capsys.readouterr().out
        assert "perf gate error" in out and "traceback" not in out.lower()

    def test_corrupt_file_exits_2_with_message(self, gate_dir, capsys):
        (gate_dir / "BENCH_engine.json").write_text("[{]")
        assert perf_gate.main([]) == 2
        assert "regenerate" in capsys.readouterr().out

    def test_require_record_fails_on_missing_file(self, gate_dir, capsys):
        assert perf_gate.main(["--require-record"]) == 2
        out = capsys.readouterr().out
        assert "no vectorized-vs-reference record" in out

    def test_require_record_fails_when_no_gated_record(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            {"engine": "fast", "baseline": "reference", "speedup": 8.0},
        ])
        assert perf_gate.main(["--require-record"]) == 2
        assert "no vectorized-vs-reference record" in capsys.readouterr().out

    def test_single_record_bootstrap_passes(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), opt_record(20.0),
            knowledge_record(2.1),
        ])
        assert perf_gate.main(["--require-record"]) == 0
        assert "bootstrap" in capsys.readouterr().out

    def test_healthy_latest_record_passes(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.0), knowledge_record(2.1),
        ])
        assert perf_gate.main(["--require-record"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_same_host_regression_fails(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(10.0),
        ])
        assert perf_gate.main([]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestOptKernelGate:
    """The opt-kernel record is covered by --require-record and a floor."""

    def test_records_filter(self, gate_dir):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), opt_record(20.0), opt_record(18.0),
        ])
        records = perf_gate.opt_kernel_records()
        assert [r["speedup"] for r in records] == [20.0, 18.0]

    def test_require_record_fails_without_opt_record(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
        ])
        assert perf_gate.main(["--require-record"]) == 2
        out = capsys.readouterr().out
        assert "ratio_kernel" in out and "test_bench_opt" in out

    def test_missing_opt_record_is_bootstrap_without_require(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
        ])
        assert perf_gate.main([]) == 0
        assert "opt-kernel record yet" in capsys.readouterr().out

    def test_opt_record_below_floor_fails(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(4.0),
        ])
        assert perf_gate.main(["--require-record"]) == 1
        assert "opt-kernel speedup" in capsys.readouterr().out

    def test_healthy_opt_record_reported(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.3), knowledge_record(2.1),
        ])
        assert perf_gate.main(["--require-record"]) == 0
        out = capsys.readouterr().out
        assert "opt-kernel speedup: 20.3x" in out


class TestKnowledgeKernelGate:
    """The knowledge-kernel record is covered by --require-record and a floor."""

    def test_records_filter(self, gate_dir):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), opt_record(20.0),
            knowledge_record(2.1), knowledge_record(2.3),
            {"engine": "vectorized_knowledge", "baseline": "reference",
             "speedup": 3.7},
        ])
        records = perf_gate.knowledge_kernel_records()
        assert [r["speedup"] for r in records] == [2.1, 2.3]

    def test_require_record_fails_without_knowledge_record(
        self, gate_dir, capsys
    ):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.0),
        ])
        assert perf_gate.main(["--require-record"]) == 2
        out = capsys.readouterr().out
        assert "vectorized_knowledge" in out and "test_bench_engine" in out

    def test_missing_knowledge_record_is_bootstrap_without_require(
        self, gate_dir, capsys
    ):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.0),
        ])
        assert perf_gate.main([]) == 0
        assert "knowledge-kernel record yet" in capsys.readouterr().out

    def test_knowledge_record_below_floor_fails(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.0), knowledge_record(0.8),
        ])
        assert perf_gate.main(["--require-record"]) == 1
        assert "knowledge-kernel speedup" in capsys.readouterr().out

    def test_healthy_knowledge_record_reported(self, gate_dir, capsys):
        write_trajectory(gate_dir, [
            vectorized_record(32.0), vectorized_record(31.0),
            opt_record(20.0), knowledge_record(2.1),
        ])
        assert perf_gate.main(["--require-record"]) == 0
        out = capsys.readouterr().out
        assert "knowledge-kernel speedup: 2.1x" in out

"""Unit tests for the benchmark trajectory schema helpers."""

import json

import pytest

from bench_utils import (
    ENGINE_SCHEMA_KEYS,
    migrate_engine_trajectory,
    normalize_engine_record,
)


LEGACY_FAST = {
    "algorithms": ["gathering", "waiting_greedy"],
    "fast_seconds": 0.038724,
    "n": 120,
    "reference_seconds": 0.292582,
    "speedup": 7.556,
    "trials": 5,
}

LEGACY_MOBILITY = {
    "adversaries": ["community", "waypoint"],
    "algorithm": "waiting",
    "batched_fast_seconds": 0.450726,
    "kind": "mobility_batched",
    "n": 100,
    "reference_seconds": 2.549349,
    "speedup": 5.656,
    "trials": 5,
}


class TestNormalizeEngineRecord:
    def test_legacy_fast_shape(self):
        record = normalize_engine_record(LEGACY_FAST)
        assert set(record) == set(ENGINE_SCHEMA_KEYS)
        assert record["engine"] == "fast"
        assert record["baseline"] == "reference"
        assert record["adversary"] == "uniform"
        assert record["seconds"] == LEGACY_FAST["fast_seconds"]
        assert record["baseline_seconds"] == LEGACY_FAST["reference_seconds"]

    def test_legacy_mobility_shape(self):
        record = normalize_engine_record(LEGACY_MOBILITY)
        assert set(record) == set(ENGINE_SCHEMA_KEYS)
        assert record["engine"] == "fast_batched"
        assert record["adversary"] == "community+waypoint"
        assert record["algorithms"] == ["waiting"]
        assert record["seconds"] == LEGACY_MOBILITY["batched_fast_seconds"]

    def test_normalized_shape_is_idempotent(self):
        once = normalize_engine_record(LEGACY_FAST)
        assert normalize_engine_record(once) == once

    def test_extra_keys_are_dropped_from_normalized_records(self):
        padded = dict(normalize_engine_record(LEGACY_FAST), stray="x")
        assert "stray" not in normalize_engine_record(padded)

    def test_host_provenance_is_preserved(self):
        stamped = dict(normalize_engine_record(LEGACY_FAST), host="arm64-8cpu")
        assert normalize_engine_record(stamped)["host"] == "arm64-8cpu"

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            normalize_engine_record({"mystery": 1})


class TestMigrateEngineTrajectory:
    def test_migrates_mixed_shapes_in_place(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps([LEGACY_FAST, LEGACY_MOBILITY]))
        migrate_engine_trajectory(path)
        migrated = json.loads(path.read_text())
        assert [set(record) for record in migrated] == [
            set(ENGINE_SCHEMA_KEYS)
        ] * 2
        # Idempotent: a second migration leaves the file unchanged.
        before = path.read_text()
        migrate_engine_trajectory(path)
        assert path.read_text() == before

    def test_committed_trajectory_is_fully_normalized(self):
        from bench_utils import BENCH_DIR

        trajectory = json.loads(
            (BENCH_DIR / "BENCH_engine.json").read_text(encoding="utf-8")
        )
        for record in trajectory:
            assert set(ENGINE_SCHEMA_KEYS) <= set(record), record

"""Benchmark E16: head-to-head comparison figure, plus core micro-benchmarks.

The comparison benchmark regenerates the summary series (mean interactions
to termination per algorithm per n).  The micro-benchmarks time the two
hottest primitives of the library — the executor's interaction loop and the
offline optimum computation — so that performance regressions in the
substrate are caught alongside the scientific results.
"""

import pytest

from repro.algorithms.gathering import Gathering
from repro.core.execution import Executor
from repro.experiments.comparison import run_comparison
from repro.graph.generators import uniform_random_sequence
from repro.offline.convergecast import build_convergecast_schedule, opt

from bench_utils import run_experiment_benchmark


def test_comparison_figure(benchmark):
    """E16: mean termination time of every algorithm across an n sweep."""
    report = run_experiment_benchmark(
        benchmark, run_comparison, ns=(16, 24, 36, 54, 80), trials=10
    )
    assert report.verdict
    means = report.details["means_at_largest_n"]
    # Qualitative shape of the paper: more knowledge -> fewer interactions.
    assert means["full_knowledge"] < means["waiting_greedy"] < means["gathering"]


@pytest.fixture(scope="module")
def committed_sequence():
    """A fixed random sequence reused by the micro-benchmarks."""
    return uniform_random_sequence(list(range(100)), 40_000, seed=7)


def test_micro_executor_throughput(benchmark, committed_sequence):
    """Micro-benchmark: executor interactions per second (Gathering, n=100)."""
    nodes = list(range(100))

    def run():
        executor = Executor(nodes, 0, Gathering())
        return executor.run(committed_sequence)

    result = benchmark(run)
    assert result.terminated


def test_micro_offline_opt(benchmark, committed_sequence):
    """Micro-benchmark: offline optimum (foremost-arrival sweep) on 40k interactions."""
    nodes = list(range(100))
    value = benchmark(lambda: opt(committed_sequence, nodes, 0))
    assert value < 40_000


def test_micro_schedule_construction(benchmark, committed_sequence):
    """Micro-benchmark: explicit optimal schedule construction."""
    nodes = list(range(100))
    schedule = benchmark(
        lambda: build_convergecast_schedule(committed_sequence, nodes, 0)
    )
    assert len(schedule.transmissions) == 99

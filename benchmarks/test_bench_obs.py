"""Observability overhead gate: tracing must never spend the speedups.

The instrumentation added to the engines (``docs/observability.md``) is
guarded by the no-op collector contract: with the default
:class:`~repro.obs.NoopCollector` installed, the per-batch cost is one
``current_collector()`` lookup plus a handful of constant-time calls on
a disabled object.  This file holds the engines to that promise at the
perf-gate workload (the three-algorithm n=120 vectorized sweep):

* with an explicitly installed no-op collector the vectorized engine
  must still clear ``MIN_VECTORIZED_VS_REFERENCE`` — the same CI floor
  ``perf_gate.py`` enforces, so instrumentation overhead would fail here
  before it fails the ratchet;
* with a *recording* collector the speedup floor must still hold (span
  recording is per-batch, not per-interaction) and the recorded trace
  must carry the engine spans — tracing a benchmark run is free enough
  to leave on.
"""

from repro.obs import NoopCollector, RecordingCollector, use_collector

from test_bench_engine import (
    BENCH_N,
    BENCH_TRIALS,
    MIN_VECTORIZED_VS_REFERENCE,
    VECTOR_FACTORIES,
    measure_vectorized_engine,
)


def test_noop_collector_keeps_vectorized_above_perf_floor(benchmark):
    """Instrumented hot paths with tracing off still clear the CI floor."""
    with use_collector(NoopCollector()):
        (reference_seconds, fast_seconds, vectorized_seconds) = benchmark.pedantic(
            measure_vectorized_engine, rounds=1, iterations=1, warmup_rounds=0
        )
    vs_reference = reference_seconds / vectorized_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["speedup_vs_reference"] = vs_reference
    print(
        f"\nobs overhead benchmark (noop collector, n={BENCH_N}, "
        f"trials={BENCH_TRIALS}, algorithms={sorted(VECTOR_FACTORIES)}): "
        f"reference {reference_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s -> {vs_reference:.1f}x"
    )
    assert vs_reference >= MIN_VECTORIZED_VS_REFERENCE, (
        f"vectorized speedup {vs_reference:.2f}x with the no-op collector "
        f"fell below the perf-gate floor {MIN_VECTORIZED_VS_REFERENCE:.0f}x — "
        "instrumentation is leaking cost into the hot path"
    )


def test_recording_collector_overhead_stays_per_batch():
    """Even full recording keeps the floor and captures the engine spans."""
    collector = RecordingCollector()
    with use_collector(collector):
        (reference_seconds, _, vectorized_seconds) = measure_vectorized_engine()
    vs_reference = reference_seconds / vectorized_seconds
    assert vs_reference >= MIN_VECTORIZED_VS_REFERENCE, (
        f"vectorized speedup {vs_reference:.2f}x under a recording collector "
        f"fell below the perf-gate floor {MIN_VECTORIZED_VS_REFERENCE:.0f}x"
    )
    names = {span.name for span in collector.spans}
    assert "engine.run_many" in names
    assert "engine.lockstep" in names

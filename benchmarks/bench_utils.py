"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment from :mod:`repro.experiments` exactly
once (``rounds=1, iterations=1``): the quantity of interest is the
experiment's *content* (the regenerated table and its verdict), not the wall
clock of the harness itself, so repeated timing rounds would only burn time.
The report table is echoed to stdout so that ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's series directly, and the raw
values are attached to the benchmark's ``extra_info`` so they land in the
saved benchmark JSON as well.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.sim.results import ExperimentReport

#: Directory holding the ``BENCH_*.json`` trajectory files.
BENCH_DIR = Path(__file__).resolve().parent


def run_experiment_benchmark(
    benchmark, runner: Callable[..., ExperimentReport], **kwargs
) -> ExperimentReport:
    """Run one experiment under the benchmark fixture and echo its report."""
    report = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["experiment_id"] = report.experiment_id
    benchmark.extra_info["claim"] = report.claim
    benchmark.extra_info["verdict"] = report.verdict
    for key, value in report.details.items():
        benchmark.extra_info[f"detail/{key}"] = repr(value)
    print()
    print(report.to_markdown())
    return report


def record_bench_trajectory(name: str, record: Dict) -> Path:
    """Append one record to the ``BENCH_<name>.json`` trajectory file.

    Each trajectory file is a JSON list; every benchmark run appends one
    record, so successive runs build a wall-clock history (e.g. the
    reference-vs-fast engine timings) that can be compared across commits.
    Returns the path written.
    """
    path = BENCH_DIR / f"BENCH_{name}.json"
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    else:
        trajectory = []
    trajectory.append(record)
    path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path

"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment from :mod:`repro.experiments` exactly
once (``rounds=1, iterations=1``): the quantity of interest is the
experiment's *content* (the regenerated table and its verdict), not the wall
clock of the harness itself, so repeated timing rounds would only burn time.
The report table is echoed to stdout so that ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's series directly, and the raw
values are attached to the benchmark's ``extra_info`` so they land in the
saved benchmark JSON as well.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.sim.results import ExperimentReport

#: Directory holding the ``BENCH_*.json`` trajectory files.
BENCH_DIR = Path(__file__).resolve().parent

#: Canonical schema of every record in the ``engine`` trajectory
#: (``BENCH_engine.json``): one engine measured against one baseline on one
#: sweep.  ``seconds``/``baseline_seconds`` are best-of-rounds wall clocks;
#: ``speedup`` is their ratio.
ENGINE_SCHEMA_KEYS = (
    "engine",
    "baseline",
    "adversary",
    "algorithms",
    "n",
    "trials",
    "seconds",
    "baseline_seconds",
    "speedup",
)


def machine_fingerprint() -> str:
    """A coarse, stable identifier of the measuring machine class.

    Speedup *ratios* travel across machines far better than absolute
    timings, but not perfectly — so the perf-regression gate
    (``perf_gate.py``) applies its strict tolerance only between records
    carrying the same fingerprint.  Architecture + logical core count is
    stable across runs of the same CI runner class while separating a
    laptop from a 2-core hosted runner.
    """
    return f"{platform.machine()}-{os.cpu_count()}cpu"


def normalize_engine_record(record: Dict) -> Dict:
    """Map any historical engine-trajectory record shape onto the schema.

    Three shapes exist in the wild: the original fast-vs-reference rows
    (``fast_seconds``/``reference_seconds``), the mobility batched rows
    (``kind == "mobility_batched"``, ``batched_fast_seconds``, a list of
    ``adversaries``), and already-normalized rows (passed through, with the
    key order canonicalised).  Raises ValueError on anything else, so a new
    shape cannot silently creep into the trajectory again.
    """
    if set(ENGINE_SCHEMA_KEYS) <= set(record):
        normalized = {key: record[key] for key in ENGINE_SCHEMA_KEYS}
    elif "fast_seconds" in record and "reference_seconds" in record:
        normalized = {
            "engine": "fast",
            "baseline": "reference",
            "adversary": record.get("adversary", "uniform"),
            "algorithms": list(record["algorithms"]),
            "n": record["n"],
            "trials": record["trials"],
            "seconds": record["fast_seconds"],
            "baseline_seconds": record["reference_seconds"],
            "speedup": record["speedup"],
        }
    elif record.get("kind") == "mobility_batched":
        normalized = {
            "engine": "fast_batched",
            "baseline": "reference",
            "adversary": "+".join(record["adversaries"]),
            "algorithms": [record["algorithm"]],
            "n": record["n"],
            "trials": record["trials"],
            "seconds": record["batched_fast_seconds"],
            "baseline_seconds": record["reference_seconds"],
            "speedup": record["speedup"],
        }
    else:
        raise ValueError(
            f"unrecognised engine benchmark record shape: {sorted(record)}"
        )
    # Optional provenance key: preserved when present (historical records
    # predate it), stamped by record_bench_trajectory on new records.
    if "host" in record:
        normalized["host"] = record["host"]
    return normalized


def migrate_engine_trajectory(path: Path = None) -> Path:
    """Rewrite ``BENCH_engine.json`` in place onto the canonical schema.

    Idempotent: already-normalized trajectories are rewritten unchanged.
    Returns the path written.
    """
    path = path or BENCH_DIR / "BENCH_engine.json"
    trajectory = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
    normalized = [normalize_engine_record(record) for record in trajectory]
    path.write_text(
        json.dumps(normalized, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def run_experiment_benchmark(
    benchmark, runner: Callable[..., ExperimentReport], **kwargs
) -> ExperimentReport:
    """Run one experiment under the benchmark fixture and echo its report."""
    report = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["experiment_id"] = report.experiment_id
    benchmark.extra_info["claim"] = report.claim
    benchmark.extra_info["verdict"] = report.verdict
    for key, value in report.details.items():
        benchmark.extra_info[f"detail/{key}"] = repr(value)
    print()
    print(report.to_markdown())
    return report


def record_bench_trajectory(name: str, record: Dict) -> Path:
    """Append one record to the ``BENCH_<name>.json`` trajectory file.

    Each trajectory file is a JSON list; every benchmark run appends one
    record, so successive runs build a wall-clock history (e.g. the
    engine-vs-baseline timings) that can be compared across commits.
    Records of the ``engine`` trajectory are normalized onto
    :data:`ENGINE_SCHEMA_KEYS` before being appended, so the file stays on
    one schema from now on.  Returns the path written.
    """
    if name == "engine":
        record = normalize_engine_record(record)
        record.setdefault("host", machine_fingerprint())
    path = BENCH_DIR / f"BENCH_{name}.json"
    if path.exists():
        trajectory = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    else:
        trajectory = []
    trajectory.append(record)
    path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path

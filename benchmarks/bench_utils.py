"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment from :mod:`repro.experiments` exactly
once (``rounds=1, iterations=1``): the quantity of interest is the
experiment's *content* (the regenerated table and its verdict), not the wall
clock of the harness itself, so repeated timing rounds would only burn time.
The report table is echoed to stdout so that ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's series directly, and the raw
values are attached to the benchmark's ``extra_info`` so they land in the
saved benchmark JSON as well.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.sim.results import ExperimentReport


def run_experiment_benchmark(
    benchmark, runner: Callable[..., ExperimentReport], **kwargs
) -> ExperimentReport:
    """Run one experiment under the benchmark fixture and echo its report."""
    report = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["experiment_id"] = report.experiment_id
    benchmark.extra_info["claim"] = report.claim
    benchmark.extra_info["verdict"] = report.verdict
    for key, value in report.details.items():
        benchmark.extra_info[f"detail/{key}"] = repr(value)
    print()
    print(report.to_markdown())
    return report

"""Benchmarks E1–E3: impossibility constructions (Theorems 1, 2, 3).

Each benchmark regenerates the corresponding "result" of the paper: the
adversary construction starves the algorithm for the whole horizon while the
offline optimum could have completed many convergecasts (cost = ∞).
"""

from repro.experiments.impossibility import (
    run_theorem1,
    run_theorem2,
    run_theorem3,
)

from bench_utils import run_experiment_benchmark


def test_theorem1_adaptive_adversary(benchmark):
    """E1: adaptive adversary vs every no-knowledge algorithm (3 nodes)."""
    report = run_experiment_benchmark(benchmark, run_theorem1, horizon=5000)
    assert report.verdict


def test_theorem2_oblivious_adversary_vs_randomized(benchmark):
    """E2: oblivious adversary defeats oblivious randomized algorithms w.h.p."""
    report = run_experiment_benchmark(
        benchmark,
        run_theorem2,
        n=16,
        horizon_cycles=60,
        trials=30,
        estimation_trials=200,
    )
    assert report.verdict


def test_theorem3_underlying_graph_not_enough(benchmark):
    """E3: knowing G-bar does not help against an adaptive adversary (n >= 4)."""
    report = run_experiment_benchmark(benchmark, run_theorem3, horizon=5000)
    assert report.verdict

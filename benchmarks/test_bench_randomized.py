"""Benchmarks E7–E15: bounds under the randomized adversary (Section 4).

Each benchmark regenerates one of the paper's quantitative claims as a
table (n sweep, measured mean vs. theoretical bound) and asserts that the
claim's *shape* is reproduced: who wins, the fitted growth exponent, and
the w.h.p. concentration where the paper states one.
"""

from repro.experiments.randomized import (
    run_corollary1,
    run_cost_conversion,
    run_lemma1,
    run_theorem10,
    run_theorem11,
    run_theorem7,
    run_theorem8,
    run_theorem9_gathering,
    run_theorem9_waiting,
)

from bench_utils import run_experiment_benchmark

#: The n sweep used by the benchmark-scale runs (larger than the test-scale
#: sweep so the growth-rate fits are meaningful, still laptop-friendly).
BENCH_NS = (16, 24, 36, 54, 80, 120)
BENCH_TRIALS = 15


def test_theorem7_lower_bound(benchmark):
    """E7: Ω(n²) interactions are required without knowledge."""
    report = run_experiment_benchmark(
        benchmark, run_theorem7, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict
    assert 1.6 <= report.details["fitted_exponent"] <= 2.4


def test_theorem8_full_knowledge(benchmark):
    """E8: the offline optimum / full-knowledge algorithm is Θ(n log n)."""
    report = run_experiment_benchmark(
        benchmark, run_theorem8, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict
    assert abs(report.details["ratio_drift"]) <= 0.35


def test_corollary1_future_knowledge(benchmark):
    """E9: DODA(future) terminates in Θ(n log n)."""
    report = run_experiment_benchmark(
        benchmark, run_corollary1, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict


def test_theorem9_waiting(benchmark):
    """E10: Waiting terminates in O(n² log n) expected interactions."""
    report = run_experiment_benchmark(
        benchmark, run_theorem9_waiting, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict


def test_theorem9_gathering(benchmark):
    """E11: Gathering terminates in O(n²) expected interactions (optimal)."""
    report = run_experiment_benchmark(
        benchmark, run_theorem9_gathering, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict
    assert 1.6 <= report.details["fitted_exponent"] <= 2.4


def test_lemma1_sink_meetings(benchmark):
    """E12: within n·f(n) interactions, Θ(f(n)) distinct nodes meet the sink."""
    report = run_experiment_benchmark(
        benchmark, run_lemma1, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict


def test_theorem10_waiting_greedy(benchmark):
    """E13: Waiting Greedy with tau = Θ(n^{3/2}√log n) terminates by tau w.h.p."""
    report = run_experiment_benchmark(
        benchmark, run_theorem10, ns=BENCH_NS, trials=BENCH_TRIALS
    )
    assert report.verdict


def test_theorem11_optimality(benchmark):
    """E14: Waiting Greedy beats every no-knowledge algorithm, gap grows with n."""
    report = run_experiment_benchmark(
        benchmark, run_theorem11, ns=(16, 32, 64, 96), trials=10
    )
    assert report.verdict
    speedups = report.details["speedups"]
    assert speedups[-1] > speedups[0]


def test_cost_conversion(benchmark):
    """E15: O(n²) interactions correspond to cost O(n / log n)."""
    report = run_experiment_benchmark(
        benchmark, run_cost_conversion, ns=(12, 18, 27, 40, 60), trials=8
    )
    assert report.verdict

"""Differential benchmark: batched mobility sweeps vs. the reference engine.

Runs the same mobility-adversary sweep (``community`` and ``waypoint``
families, n >= 100) through the reference per-trial path and the batched
fast-engine path (one ``FastExecutor.run_many`` invocation per sweep cell),
asserts the results are identical trial for trial, and that the batched
path is measurably faster.  Timings are appended to the
``BENCH_engine.json`` trajectory next to the uniform-adversary engine
benchmark so the speedup can be tracked across commits.
"""

import time

from repro.algorithms.waiting import Waiting
from repro.sim.batch import sweep_adversary_batched
from repro.sim.runner import sweep_random_adversary

from bench_utils import record_bench_trajectory

BENCH_N = 100
BENCH_TRIALS = 5
FAMILIES = ("community", "waypoint")
#: The sampling cost of the committed mobility future is shared by both
#: engines, so the gate is lower than the uniform-adversary benchmark's.
MIN_SPEEDUP = 1.5
#: Best of N timing rounds, so one noisy measurement cannot fail the gate.
TIMING_ROUNDS = 3


def _timed(run) -> "tuple":
    best = None
    result = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_batched_mobility_sweep_speedup_and_equality(benchmark):
    """The batched fast path reproduces the reference mobility sweeps, faster."""
    reference = {}
    reference_seconds = 0.0
    for family in FAMILIES:
        result, seconds = _timed(
            lambda family=family: sweep_random_adversary(
                lambda n: Waiting(),
                ns=[BENCH_N],
                trials=BENCH_TRIALS,
                master_seed=7,
                experiment="bench_mobility",
                engine="reference",
                adversary=family,
            )
        )
        reference[family] = result
        reference_seconds += seconds

    def run_batched():
        return {
            family: sweep_adversary_batched(
                lambda n: Waiting(),
                ns=[BENCH_N],
                trials=BENCH_TRIALS,
                master_seed=7,
                experiment="bench_mobility",
                engine="fast",
                adversary=family,
            )
            for family in FAMILIES
        }

    batched, batched_seconds = benchmark.pedantic(
        _timed, args=(run_batched,), rounds=1, iterations=1, warmup_rounds=0
    )
    for family in FAMILIES:
        for ref_point, fast_point in zip(
            reference[family].points, batched[family].points
        ):
            assert fast_point.trials == ref_point.trials, family

    speedup = reference_seconds / batched_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["families"] = list(FAMILIES)
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["batched_fast_seconds"] = batched_seconds
    benchmark.extra_info["speedup"] = speedup
    record_bench_trajectory(
        "engine",
        {
            "engine": "fast_batched",
            "baseline": "reference",
            "adversary": "+".join(FAMILIES),
            "algorithms": ["waiting"],
            "n": BENCH_N,
            "trials": BENCH_TRIALS,
            "seconds": round(batched_seconds, 6),
            "baseline_seconds": round(reference_seconds, 6),
            "speedup": round(speedup, 3),
        },
    )
    print(
        f"\nmobility sweep benchmark (n={BENCH_N}, trials={BENCH_TRIALS}, "
        f"families={list(FAMILIES)}): reference {reference_seconds:.3f}s, "
        f"batched fast {batched_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched mobility sweep speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.1f}x (reference {reference_seconds:.3f}s, "
        f"batched {batched_seconds:.3f}s)"
    )

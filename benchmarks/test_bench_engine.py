"""Differential benchmark: fast execution engine vs. reference executor.

Runs the same ``gathering`` / ``waiting_greedy`` randomized-adversary sweep
(n >= 100) through both engines, asserts that the results are identical
trial for trial, and that the fast engine is at least 3x faster overall.
Timings are appended to the ``BENCH_engine.json`` trajectory so that the
speedup can be tracked across commits.
"""

import time

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import sweep_random_adversary

from bench_utils import record_bench_trajectory

#: The benchmark sweep: acceptance requires n >= 100.
BENCH_N = 120
BENCH_TRIALS = 5
MIN_SPEEDUP = 3.0
#: Each engine is timed this many times and the best run is kept, so a
#: single noisy measurement on a loaded machine cannot fail the gate.
TIMING_ROUNDS = 3

FACTORIES = {
    "gathering": lambda n: Gathering(),
    "waiting_greedy": lambda n: WaitingGreedy(tau=optimal_tau(n)),
}


def _timed_sweep(engine: str) -> "tuple":
    """Run the benchmark sweep on one engine, best wall clock of N rounds.

    The results are identical across rounds (fully seeded); only the timing
    varies, and taking the minimum keeps the speedup gate robust against
    one-off scheduling noise.
    """
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        results = {
            name: sweep_random_adversary(
                factory,
                ns=[BENCH_N],
                trials=BENCH_TRIALS,
                master_seed=7,
                experiment="bench_engine",
                engine=engine,
            )
            for name, factory in FACTORIES.items()
        }
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def test_fast_engine_speedup_and_equality(benchmark):
    """The fast engine reproduces the reference sweep >= 3x faster."""
    reference, reference_seconds = _timed_sweep("reference")
    (fast, fast_seconds) = benchmark.pedantic(
        lambda: _timed_sweep("fast"), rounds=1, iterations=1, warmup_rounds=0
    )
    for name in FACTORIES:
        for ref_point, fast_point in zip(
            reference[name].points, fast[name].points
        ):
            assert fast_point.trials == ref_point.trials, name
    speedup = reference_seconds / fast_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    record_bench_trajectory(
        "engine",
        {
            "n": BENCH_N,
            "trials": BENCH_TRIALS,
            "algorithms": sorted(FACTORIES),
            "reference_seconds": round(reference_seconds, 6),
            "fast_seconds": round(fast_seconds, 6),
            "speedup": round(speedup, 3),
        },
    )
    print(
        f"\nengine benchmark (n={BENCH_N}, trials={BENCH_TRIALS}, "
        f"algorithms={sorted(FACTORIES)}): reference {reference_seconds:.3f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.0f}x (reference {reference_seconds:.3f}s, "
        f"fast {fast_seconds:.3f}s)"
    )


def test_parallel_sweep_matches_serial(benchmark):
    """workers > 1 reproduces the serial sweep bit for bit."""
    factory = FACTORIES["gathering"]
    serial = sweep_random_adversary(
        factory,
        ns=[BENCH_N],
        trials=BENCH_TRIALS,
        master_seed=7,
        experiment="bench_engine",
        engine="fast",
    )
    parallel = benchmark.pedantic(
        lambda: parallel_sweep(
            factory,
            ns=[BENCH_N],
            trials=BENCH_TRIALS,
            master_seed=7,
            experiment="bench_engine",
            engine="fast",
            workers=4,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert parallel.points[0].trials == serial.points[0].trials
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["identical_to_serial"] = True

"""Differential benchmarks: fast and vectorized engines vs. reference.

Three engine benchmarks share this file:

* the legacy **fast-engine gate** — the ``gathering`` / ``waiting_greedy``
  randomized-adversary sweep at n >= 100 through the reference and fast
  engines, asserting identical trials and a >= 3x speedup;
* the **trial-vectorized gate** — the paper's three-algorithm workload
  (Waiting / Gathering / Waiting Greedy, the Monte-Carlo sweep the
  reproduction's claims rest on) at the same n, with each cell executed as
  one :class:`~repro.core.vector_execution.VectorizedExecutor` batch.
  Results must be identical trial for trial to the per-trial reference
  sweep; the measured speedups vs. the reference *and* vs. the fast engine
  are appended to the ``BENCH_engine.json`` trajectory (canonical schema,
  see :func:`bench_utils.normalize_engine_record`);
* the **knowledge-kernel gate** — the three knowledge-heavy algorithms
  (spanning tree / full knowledge / future broadcast) that gained decision
  kernels, at the same n.  Their vectorized cells must run with **zero
  engine fallbacks** (``EngineFallbackWarning`` is an error here), be
  identical trial for trial to the reference sweep, and beat the fast
  engine; the record is appended under the distinct engine tag
  ``vectorized_knowledge`` so the long-standing vectorized-vs-reference
  ratchet in ``perf_gate.py`` keeps its single-workload meaning.

The hard speedup floors asserted here are deliberately below the locally
measured figures (recorded in the trajectory) so that a loaded CI machine
cannot flake the suite; regression against the *best recorded* trajectory
value is enforced separately by ``benchmarks/perf_gate.py``.
"""

import time
import warnings

from repro.algorithms.full_knowledge import FullKnowledge
from repro.algorithms.future_broadcast import FutureBroadcast
from repro.algorithms.gathering import Gathering
from repro.algorithms.spanning_tree import SpanningTreeAggregation
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.vector_execution import EngineFallbackWarning
from repro.sim.batch import sweep_adversary_batched
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import sweep_random_adversary

from bench_utils import record_bench_trajectory

#: The benchmark sweep: acceptance requires n >= 100.
BENCH_N = 120
BENCH_TRIALS = 5
MIN_SPEEDUP = 3.0
#: CI-safe hard floors for the vectorized engine (locally measured values
#: are ~3x higher and live in the trajectory; perf_gate.py guards those).
MIN_VECTORIZED_VS_REFERENCE = 10.0
MIN_VECTORIZED_VS_FAST = 1.2
#: CI-safe hard floor for the knowledge-kernel gate (locally measured
#: ~2.1x vs fast; perf_gate.py requires and floors the recorded value).
MIN_KNOWLEDGE_VS_FAST = 1.2
#: Each engine is timed this many times and the best run is kept, so a
#: single noisy measurement on a loaded machine cannot fail the gate.
TIMING_ROUNDS = 3

FACTORIES = {
    "gathering": lambda n: Gathering(),
    "waiting_greedy": lambda n: WaitingGreedy(tau=optimal_tau(n)),
}

#: The full paper workload for the trial-vectorized gate.
VECTOR_FACTORIES = {
    "waiting": lambda n: Waiting(),
    "gathering": lambda n: Gathering(),
    "waiting_greedy": lambda n: WaitingGreedy(tau=optimal_tau(n)),
}

#: The knowledge-heavy algorithms, newly covered by decision kernels.
KNOWLEDGE_FACTORIES = {
    "spanning_tree": lambda n: SpanningTreeAggregation(),
    "full_knowledge": lambda n: FullKnowledge(),
    "future_broadcast": lambda n: FutureBroadcast(),
}


def _timed_sweep(engine: str, factories=FACTORIES) -> "tuple":
    """Run the benchmark sweep on one engine, best wall clock of N rounds.

    The results are identical across rounds (fully seeded); only the timing
    varies, and taking the minimum keeps the speedup gate robust against
    one-off scheduling noise.
    """
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        results = {
            name: sweep_random_adversary(
                factory,
                ns=[BENCH_N],
                trials=BENCH_TRIALS,
                master_seed=7,
                experiment="bench_engine",
                engine=engine,
            )
            for name, factory in factories.items()
        }
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def _timed_vectorized_sweep(factories=VECTOR_FACTORIES) -> "tuple":
    """The same sweep through one vectorized batch per cell, best of N."""
    best = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        results = {
            name: sweep_adversary_batched(
                factory,
                ns=[BENCH_N],
                trials=BENCH_TRIALS,
                master_seed=7,
                experiment="bench_engine",
                engine="vectorized",
            )
            for name, factory in factories.items()
        }
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return results, best


def _assert_sweeps_identical(candidate, expected, factories):
    for name in factories:
        for candidate_point, expected_point in zip(
            candidate[name].points, expected[name].points
        ):
            assert candidate_point.trials == expected_point.trials, name


def test_fast_engine_speedup_and_equality(benchmark):
    """The fast engine reproduces the reference sweep >= 3x faster."""
    reference, reference_seconds = _timed_sweep("reference")
    (fast, fast_seconds) = benchmark.pedantic(
        lambda: _timed_sweep("fast"), rounds=1, iterations=1, warmup_rounds=0
    )
    _assert_sweeps_identical(fast, reference, FACTORIES)
    speedup = reference_seconds / fast_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    record_bench_trajectory(
        "engine",
        {
            "engine": "fast",
            "baseline": "reference",
            "adversary": "uniform",
            "algorithms": sorted(FACTORIES),
            "n": BENCH_N,
            "trials": BENCH_TRIALS,
            "seconds": round(fast_seconds, 6),
            "baseline_seconds": round(reference_seconds, 6),
            "speedup": round(speedup, 3),
        },
    )
    print(
        f"\nengine benchmark (n={BENCH_N}, trials={BENCH_TRIALS}, "
        f"algorithms={sorted(FACTORIES)}): reference {reference_seconds:.3f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.2f}x below the required "
        f"{MIN_SPEEDUP:.0f}x (reference {reference_seconds:.3f}s, "
        f"fast {fast_seconds:.3f}s)"
    )


def measure_vectorized_engine():
    """One full vectorized-gate measurement (shared with perf_gate.py).

    Returns ``(reference_seconds, fast_seconds, vectorized_seconds)`` for
    the three-algorithm n=120 sweep, after asserting that the vectorized
    batch reproduces the reference sweep trial for trial.
    """
    reference, reference_seconds = _timed_sweep(
        "reference", factories=VECTOR_FACTORIES
    )
    fast, fast_seconds = _timed_sweep("fast", factories=VECTOR_FACTORIES)
    vectorized, vectorized_seconds = _timed_vectorized_sweep()
    _assert_sweeps_identical(vectorized, reference, VECTOR_FACTORIES)
    _assert_sweeps_identical(fast, reference, VECTOR_FACTORIES)
    return reference_seconds, fast_seconds, vectorized_seconds


def test_vectorized_engine_speedup_and_equality(benchmark):
    """The trial-vectorized engine reproduces the paper sweep, much faster."""
    (reference_seconds, fast_seconds, vectorized_seconds) = benchmark.pedantic(
        measure_vectorized_engine, rounds=1, iterations=1, warmup_rounds=0
    )
    vs_reference = reference_seconds / vectorized_seconds
    vs_fast = fast_seconds / vectorized_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["vectorized_seconds"] = vectorized_seconds
    benchmark.extra_info["speedup_vs_reference"] = vs_reference
    benchmark.extra_info["speedup_vs_fast"] = vs_fast
    for baseline, baseline_seconds, speedup in (
        ("reference", reference_seconds, vs_reference),
        ("fast", fast_seconds, vs_fast),
    ):
        record_bench_trajectory(
            "engine",
            {
                "engine": "vectorized",
                "baseline": baseline,
                "adversary": "uniform",
                "algorithms": sorted(VECTOR_FACTORIES),
                "n": BENCH_N,
                "trials": BENCH_TRIALS,
                "seconds": round(vectorized_seconds, 6),
                "baseline_seconds": round(baseline_seconds, 6),
                "speedup": round(speedup, 3),
            },
        )
    print(
        f"\nvectorized benchmark (n={BENCH_N}, trials={BENCH_TRIALS}, "
        f"algorithms={sorted(VECTOR_FACTORIES)}): reference "
        f"{reference_seconds:.3f}s, fast {fast_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s -> {vs_reference:.1f}x vs reference, "
        f"{vs_fast:.1f}x vs fast"
    )
    assert vs_reference >= MIN_VECTORIZED_VS_REFERENCE, (
        f"vectorized speedup {vs_reference:.2f}x vs reference below the CI "
        f"floor {MIN_VECTORIZED_VS_REFERENCE:.0f}x"
    )
    assert vs_fast >= MIN_VECTORIZED_VS_FAST, (
        f"vectorized speedup {vs_fast:.2f}x vs fast below the CI floor "
        f"{MIN_VECTORIZED_VS_FAST:.1f}x"
    )


def measure_knowledge_engines():
    """One full knowledge-kernel-gate measurement (shared with perf_gate.py).

    Returns ``(reference_seconds, fast_seconds, vectorized_seconds)`` for
    the three knowledge-heavy algorithms on the n=120 sweep.  The
    vectorized leg runs with ``EngineFallbackWarning`` promoted to an
    error — the gate's premise is that these algorithms now run through
    their own decision kernels, so a single fallback trial fails the
    measurement — and both optimised legs are asserted trial-identical to
    the reference sweep.
    """
    reference, reference_seconds = _timed_sweep(
        "reference", factories=KNOWLEDGE_FACTORIES
    )
    fast, fast_seconds = _timed_sweep("fast", factories=KNOWLEDGE_FACTORIES)
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineFallbackWarning)
        vectorized, vectorized_seconds = _timed_vectorized_sweep(
            factories=KNOWLEDGE_FACTORIES
        )
    _assert_sweeps_identical(vectorized, reference, KNOWLEDGE_FACTORIES)
    _assert_sweeps_identical(fast, reference, KNOWLEDGE_FACTORIES)
    return reference_seconds, fast_seconds, vectorized_seconds


def test_knowledge_kernel_speedup_and_equality(benchmark):
    """The newly kernelized algorithms beat the fast engine, zero fallbacks."""
    (reference_seconds, fast_seconds, vectorized_seconds) = benchmark.pedantic(
        measure_knowledge_engines, rounds=1, iterations=1, warmup_rounds=0
    )
    vs_reference = reference_seconds / vectorized_seconds
    vs_fast = fast_seconds / vectorized_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["reference_seconds"] = reference_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["vectorized_seconds"] = vectorized_seconds
    benchmark.extra_info["speedup_vs_reference"] = vs_reference
    benchmark.extra_info["speedup_vs_fast"] = vs_fast
    for baseline, baseline_seconds, speedup in (
        ("reference", reference_seconds, vs_reference),
        ("fast", fast_seconds, vs_fast),
    ):
        record_bench_trajectory(
            "engine",
            {
                "engine": "vectorized_knowledge",
                "baseline": baseline,
                "adversary": "uniform",
                "algorithms": sorted(KNOWLEDGE_FACTORIES),
                "n": BENCH_N,
                "trials": BENCH_TRIALS,
                "seconds": round(vectorized_seconds, 6),
                "baseline_seconds": round(baseline_seconds, 6),
                "speedup": round(speedup, 3),
            },
        )
    print(
        f"\nknowledge-kernel benchmark (n={BENCH_N}, trials={BENCH_TRIALS}, "
        f"algorithms={sorted(KNOWLEDGE_FACTORIES)}): reference "
        f"{reference_seconds:.3f}s, fast {fast_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s -> {vs_reference:.1f}x vs reference, "
        f"{vs_fast:.1f}x vs fast"
    )
    assert vs_fast >= MIN_KNOWLEDGE_VS_FAST, (
        f"knowledge-kernel speedup {vs_fast:.2f}x vs fast below the CI "
        f"floor {MIN_KNOWLEDGE_VS_FAST:.1f}x"
    )


def test_parallel_sweep_matches_serial(benchmark):
    """workers > 1 reproduces the serial sweep bit for bit."""
    factory = FACTORIES["gathering"]
    serial = sweep_random_adversary(
        factory,
        ns=[BENCH_N],
        trials=BENCH_TRIALS,
        master_seed=7,
        experiment="bench_engine",
        engine="fast",
    )
    parallel = benchmark.pedantic(
        lambda: parallel_sweep(
            factory,
            ns=[BENCH_N],
            trials=BENCH_TRIALS,
            master_seed=7,
            experiment="bench_engine",
            engine="fast",
            workers=4,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert parallel.points[0].trials == serial.points[0].trials
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["identical_to_serial"] = True


def test_parallel_vectorized_cells_match_serial(benchmark):
    """workers x vectorized cells reproduces the serial sweep bit for bit."""
    factory = VECTOR_FACTORIES["waiting"]
    serial = sweep_random_adversary(
        factory,
        ns=[60, 90, BENCH_N],
        trials=BENCH_TRIALS,
        master_seed=7,
        experiment="bench_engine",
        engine="reference",
    )
    parallel = benchmark.pedantic(
        lambda: parallel_sweep(
            factory,
            ns=[60, 90, BENCH_N],
            trials=BENCH_TRIALS,
            master_seed=7,
            experiment="bench_engine",
            engine="vectorized",
            workers=3,
            batched=True,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for serial_point, parallel_point in zip(serial.points, parallel.points):
        assert parallel_point.trials == serial_point.trials
    benchmark.extra_info["workers"] = 3
    benchmark.extra_info["identical_to_serial"] = True

"""Benchmarks E4–E6: possibility results with topology/future knowledge."""

from repro.experiments.knowledge import run_theorem4, run_theorem5, run_theorem6

from bench_utils import run_experiment_benchmark


def test_theorem4_unbounded_but_finite_cost(benchmark):
    """E4: recurrent interactions give finite cost that grows with the delay."""
    report = run_experiment_benchmark(
        benchmark, run_theorem4, n=10, delay_rounds=(5, 10, 20, 40, 80)
    )
    assert report.verdict
    costs = report.details["costs"]
    assert costs[-1] >= 4 * costs[0]


def test_theorem5_tree_footprint_optimal(benchmark):
    """E5: on tree footprints the spanning-tree algorithm has cost exactly 1."""
    report = run_experiment_benchmark(
        benchmark, run_theorem5, ns=(8, 12, 20, 32), trees_per_n=5, rounds=15
    )
    assert report.verdict


def test_theorem6_future_knowledge_cost_at_most_n(benchmark):
    """E6: knowing one's own future bounds the cost by n."""
    report = run_experiment_benchmark(
        benchmark, run_theorem6, ns=(8, 12, 20), trials_per_n=4
    )
    assert report.verdict

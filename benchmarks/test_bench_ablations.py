"""Benchmarks E17–E20: ablations and extensions beyond the paper's results.

* E17 validates the fast offline optimum against exhaustive search
  (DESIGN.md decision 1).
* E18 answers the paper's concluding-remark question 3 empirically
  (non-uniform randomized adversaries shift the bounds).
* E19 regenerates the trade-off inside Theorem 10 (the choice of f(n)).
* E20 checks Theorem 5's insensitivity to the edge order within a round.
"""

from repro.experiments.extensions import (
    run_nonuniform_adversary,
    run_offline_crosscheck,
    run_tau_tradeoff,
    run_tree_order_ablation,
)

from bench_utils import run_experiment_benchmark


def test_offline_optimum_crosscheck(benchmark):
    """E17: journey-based opt equals exhaustive search on every instance."""
    report = run_experiment_benchmark(
        benchmark, run_offline_crosscheck, ns=(3, 4, 5, 6, 7), sequences_per_n=25, length=60
    )
    assert report.verdict


def test_nonuniform_adversary_extension(benchmark):
    """E18: hub/Zipf-skewed adversaries shift the Section 4 constants."""
    report = run_experiment_benchmark(
        benchmark, run_nonuniform_adversary, n=48, trials=12
    )
    assert report.verdict


def test_waiting_greedy_tau_tradeoff(benchmark):
    """E19: the termination time is minimised at f(n) = sqrt(n log n)."""
    report = run_experiment_benchmark(
        benchmark, run_tau_tradeoff, n=80, trials=10
    )
    assert report.verdict


def test_spanning_tree_order_ablation(benchmark):
    """E20: tree-footprint optimality holds for every per-round edge order."""
    report = run_experiment_benchmark(
        benchmark, run_tree_order_ablation, n=16, trees=5, rounds=12
    )
    assert report.verdict

"""Benchmark: vectorized offline-optimum kernel vs per-sequence Python.

The competitive-ratio subsystem only pays for itself if attaching the
offline baseline to every Monte-Carlo trial is cheap.  This gate measures
the paper's standard cell shape — ``n = 120`` nodes, ``B = 256`` committed
uniform-adversary futures — and times

* the **baseline**: the pre-subsystem per-sequence path — read each
  committed future back as an :class:`~repro.core.interaction.
  InteractionSequence` (``committed_prefix``, the representation the
  pure-Python oracle consumes) and run
  :func:`repro.offline.convergecast.opt` on it, once per trial; this is
  exactly what the reference engine's ``capture_opt`` does;
* the **kernel**: the vectorized path — assemble the cell's dense index
  matrices (``committed_index_matrix``) and evaluate
  :func:`repro.ratio.kernels.opt_end_matrix` over the whole ``(B, L)``
  cell in one call; this is exactly what the vectorized engine's
  ``capture_opt`` does.

Both timings start from the same committed numpy buffers and end at the
same per-trial ``opt(0)`` values, so the ratio is the real cost ratio of
attaching the baseline to a sweep cell.  The two paths are asserted equal
value for value before timing counts.  The measured speedup is
appended to ``benchmarks/BENCH_engine.json`` on the normalized record
schema (engine ``ratio_kernel`` vs baseline ``offline_python``) and the CI
perf gate (``perf_gate.py --require-record``) requires the record and its
floor.  The hard floor asserted here (:data:`MIN_OPT_KERNEL_SPEEDUP`,
10x — the acceptance criterion) is deliberately below locally measured
figures so a loaded CI runner cannot flake the suite.
"""

import time

import numpy as np

from repro.adversaries.committed import CommittedBlockAdversary
from repro.adversaries.randomized import RandomizedAdversary
from repro.offline.convergecast import opt as offline_opt
from repro.ratio.kernels import opt_end_matrix

from bench_utils import record_bench_trajectory

#: The acceptance shape: an n = 120 cell of B = 256 committed futures.
BENCH_N = 120
BENCH_TRIALS = 256
#: Committed window per future — enough for several optimal convergecasts
#: at n = 120 (opt completes in O(n log n) interactions w.h.p.).
BENCH_WINDOW = 4096
#: CI-safe hard floor (the acceptance criterion); local measurements are
#: recorded in the trajectory and ratcheted by perf_gate.py.
MIN_OPT_KERNEL_SPEEDUP = 10.0
#: Kernel timing keeps the best of this many rounds (the Python baseline
#: is timed once — at hundreds of ms per round it dwarfs scheduler noise).
TIMING_ROUNDS = 3


def build_cell():
    """B committed uniform futures of BENCH_WINDOW interactions each."""
    nodes = list(range(BENCH_N))
    adversaries = [
        RandomizedAdversary(nodes, seed=seed) for seed in range(BENCH_TRIALS)
    ]
    for adversary in adversaries:
        adversary.ensure_committed(BENCH_WINDOW)
    return nodes, adversaries


def measure_opt_kernel():
    """Returns ``(python_seconds, kernel_seconds, kernel_ends)``.

    Each path is timed end to end from the already-committed buffers to
    the per-trial ``opt(0)`` values, including its own representation
    cost: the baseline materialises one ``InteractionSequence`` per trial
    (that *is* how the pure-Python oracle consumes a committed future),
    the kernel assembles the ``(B, L)`` dense index matrices.  Also
    asserts the two paths agree on every row (the differential gate riding
    along with the timing).
    """
    nodes, adversaries = build_cell()

    started = time.perf_counter()
    python_values = [
        offline_opt(adversary.committed_prefix(BENCH_WINDOW), nodes, 0)
        for adversary in adversaries
    ]
    python_seconds = time.perf_counter() - started

    kernel_seconds = None
    for _ in range(TIMING_ROUNDS):
        started = time.perf_counter()
        matrix_i, matrix_j, lengths = (
            CommittedBlockAdversary.committed_index_matrix(
                adversaries, 0, BENCH_WINDOW, pad=0
            )
        )
        ends = opt_end_matrix(matrix_i, matrix_j, lengths, BENCH_N, 0)
        elapsed = time.perf_counter() - started
        kernel_seconds = (
            elapsed if kernel_seconds is None else min(kernel_seconds, elapsed)
        )

    assert np.array_equal(
        ends, np.asarray([float(value) for value in python_values])
    ), "vectorized opt kernel disagrees with offline/convergecast.opt"
    return python_seconds, kernel_seconds, ends


def test_opt_kernel_speedup_and_equality(benchmark):
    """The (B, L) opt kernel beats per-sequence Python by >= 10x."""
    python_seconds, kernel_seconds, ends = benchmark.pedantic(
        measure_opt_kernel, rounds=1, iterations=1, warmup_rounds=0
    )
    speedup = python_seconds / kernel_seconds
    benchmark.extra_info["n"] = BENCH_N
    benchmark.extra_info["trials"] = BENCH_TRIALS
    benchmark.extra_info["window"] = BENCH_WINDOW
    benchmark.extra_info["python_seconds"] = python_seconds
    benchmark.extra_info["kernel_seconds"] = kernel_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["finite_rows"] = int(np.isfinite(ends).sum())
    record_bench_trajectory(
        "engine",
        {
            "engine": "ratio_kernel",
            "baseline": "offline_python",
            "adversary": "uniform",
            "algorithms": ["offline_opt"],
            "n": BENCH_N,
            "trials": BENCH_TRIALS,
            "seconds": round(kernel_seconds, 6),
            "baseline_seconds": round(python_seconds, 6),
            "speedup": round(speedup, 3),
        },
    )
    print(
        f"\nopt kernel benchmark (n={BENCH_N}, B={BENCH_TRIALS}, "
        f"L={BENCH_WINDOW}): python {python_seconds:.3f}s, kernel "
        f"{kernel_seconds:.3f}s -> {speedup:.1f}x"
    )
    assert np.isfinite(ends).all(), (
        "every committed future should admit an offline convergecast at "
        f"this window length; got {int((~np.isfinite(ends)).sum())} "
        "unreachable rows"
    )
    assert speedup >= MIN_OPT_KERNEL_SPEEDUP, (
        f"opt kernel speedup {speedup:.2f}x below the required "
        f"{MIN_OPT_KERNEL_SPEEDUP:.0f}x (python {python_seconds:.3f}s, "
        f"kernel {kernel_seconds:.3f}s)"
    )

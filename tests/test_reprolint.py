"""Tests for the reprolint static analyzer (``repro.lint``).

Coverage contract (mirrors the acceptance criteria of the linter PR):

* every shipped rule has a fixture pair under ``tests/lint_fixtures/`` —
  the bad fixture is caught with the right code at the right line, the
  good fixture is clean for that code;
* ``# reprolint: disable=RPLxxx`` line and file scopes silence exactly
  the listed codes;
* ``[tool.reprolint]`` config handling: allowlists, excludes, rule
  disabling, unknown-key rejection;
* the CLI exits 0 on the repository's own ``src tools`` tree and
  non-zero (with correct codes) on the bad fixtures.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_ALLOW,
    Finding,
    LintConfig,
    LintConfigError,
    PARSE_ERROR_CODE,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    load_config,
    parse_suppressions,
    rule_table,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: No allowlists, no excludes: fixtures must stand on their own.
BARE = LintConfig(root=REPO_ROOT, allow={})

#: rule code -> (bad fixture, expected finding lines in it)
RULE_FIXTURES = {
    "RPL001": ("rpl001", [3, 4]),
    "RPL002": ("rpl002", [8, 9, 10]),
    "RPL003": ("rpl003", [7]),
    "RPL004": ("rpl004", [8, 9]),
    "RPL005": ("rpl005", [5, 6, 10]),
    "RPL006": ("rpl006", [5, 11]),
    "RPL007": ("rpl007", [7, 8, 9]),
}


def codes_of(findings: list) -> set:
    return {finding.code for finding in findings}


class TestRegistry:
    def test_all_issue_rules_are_registered(self):
        codes = {rule.code for rule in all_rules()}
        assert codes == set(RULE_FIXTURES)

    def test_rule_table_is_sorted_and_described(self):
        table = rule_table()
        assert [row[0] for row in table] == sorted(row[0] for row in table)
        for code, name, summary in table:
            assert code.startswith("RPL")
            assert name and summary

    def test_every_rule_has_fixture_pair_on_disk(self):
        for stem, _ in RULE_FIXTURES.values():
            assert (FIXTURES / f"{stem}_bad.py").is_file()
            assert (FIXTURES / f"{stem}_good.py").is_file()


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
class TestFixturePairs:
    def test_bad_fixture_caught_at_expected_lines(self, code):
        stem, lines = RULE_FIXTURES[code]
        findings = lint_file(FIXTURES / f"{stem}_bad.py", config=BARE)
        matching = [f for f in findings if f.code == code]
        assert [f.line for f in matching] == lines
        for finding in matching:
            assert finding.path.endswith(f"{stem}_bad.py")
            assert finding.col >= 1

    def test_good_fixture_clean_for_code(self, code):
        stem, _ = RULE_FIXTURES[code]
        findings = lint_file(FIXTURES / f"{stem}_good.py", config=BARE)
        assert code not in codes_of(findings)


class TestSuppression:
    def test_line_disable_silences_only_listed_codes(self):
        findings = lint_file(FIXTURES / "disable_line.py", config=BARE)
        assert [f.line for f in findings if f.code == "RPL007"] == [8, 9]

    def test_file_disable_is_code_scoped(self):
        findings = lint_file(FIXTURES / "disable_file.py", config=BARE)
        assert "RPL001" not in codes_of(findings)
        assert "RPL007" in codes_of(findings)

    def test_bare_disable_silences_everything_on_the_line(self):
        findings = lint_source(
            "import random  # reprolint: disable\n", config=BARE
        )
        assert findings == []

    def test_parser_scopes(self):
        suppressions = parse_suppressions(
            "x = 1  # reprolint: disable=RPL001, RPL007\n"
            "# reprolint: disable-file=RPL004\n"
        )
        assert suppressions.by_line[1] == frozenset({"RPL001", "RPL007"})
        assert suppressions.file_wide == frozenset({"RPL004"})
        suppressed = Finding("m.py", 1, 1, "RPL007", "msg")
        not_suppressed = Finding("m.py", 2, 1, "RPL007", "msg")
        assert suppressions.is_suppressed(suppressed)
        assert not suppressions.is_suppressed(not_suppressed)
        assert suppressions.is_suppressed(Finding("m.py", 9, 1, "RPL004", "m"))


class TestConfig:
    def test_allowlist_silences_rule_for_matching_path(self, tmp_path):
        module = tmp_path / "frozen_stream.py"
        module.write_text("import random\n", encoding="utf-8")
        allowing = LintConfig(root=tmp_path, allow={"RPL001": ("frozen_*.py",)})
        assert lint_file(module, config=allowing) == []
        bare = LintConfig(root=tmp_path, allow={})
        assert codes_of(lint_file(module, config=bare)) == {"RPL001"}

    def test_exclude_skips_file_entirely(self, tmp_path):
        module = tmp_path / "generated.py"
        module.write_text("import random\nx = 1.0 == 2.0\n", encoding="utf-8")
        config = LintConfig(root=tmp_path, exclude=("generated.py",), allow={})
        assert lint_file(module, config=config) == []

    def test_disable_turns_rule_off_globally(self):
        config = LintConfig(root=REPO_ROOT, disable=("RPL001",), allow={})
        assert lint_source("import random\n", config=config) == []

    def test_load_repo_pyproject(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert config.root == REPO_ROOT
        assert "tests/lint_fixtures/*" in config.exclude
        assert config.is_allowed("RPL004", REPO_ROOT / "src/repro/campaign/store.py")
        assert not config.is_allowed(
            "RPL001", REPO_ROOT / "src/repro/adversaries/nonuniform.py"
        )

    def test_default_allow_matches_repo_pyproject(self):
        # The built-in defaults exist for configless checkouts; they must
        # not drift from the audited pyproject allowlists.
        config = load_config(REPO_ROOT / "pyproject.toml")
        assert {code: tuple(paths) for code, paths in config.allow.items()} == {
            code: tuple(paths) for code, paths in DEFAULT_ALLOW.items()
        }

    def test_unknown_config_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.reprolint]\nallowlist = []\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError, match="unknown"):
            load_config(pyproject)

    def test_malformed_allow_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.reprolint.allow]\nRPL001 = 'not-a-list'\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError, match="list of strings"):
            load_config(pyproject)


class TestApi:
    def test_parse_error_is_a_finding_not_an_exception(self):
        findings = lint_source("def broken(:\n", config=BARE)
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_findings_are_sorted_and_deterministic(self, tmp_path):
        module_b = tmp_path / "b.py"
        module_a = tmp_path / "a.py"
        module_b.write_text("import random\n", encoding="utf-8")
        module_a.write_text("x = 1.0 == 2.0\nimport random\n", encoding="utf-8")
        config = LintConfig(root=tmp_path, allow={})
        first = lint_paths([tmp_path], config=config)
        second = lint_paths([module_b, module_a, tmp_path], config=config)
        assert first == second  # dedup + canonical sort
        assert [ (f.path, f.line) for f in first ] == [
            ("a.py", 1), ("a.py", 2), ("b.py", 1),
        ]

    def test_repo_tree_is_lint_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools"], config=config
        )
        assert findings == [], "\n".join(f.format() for f in findings)


class TestCli:
    def _run(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_cli_clean_on_repo_src_tools(self):
        result = self._run("src", "tools")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_cli_flags_bad_fixture_with_code_and_location(self):
        result = self._run("--no-config", "tests/lint_fixtures/rpl001_bad.py")
        assert result.returncode == 1
        assert "tests/lint_fixtures/rpl001_bad.py:3:1: RPL001" in result.stdout

    def test_cli_json_format(self):
        import json

        result = self._run(
            "--no-config", "--format", "json", "tests/lint_fixtures/rpl003_bad.py"
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload[0]["code"] == "RPL003"
        assert payload[0]["line"] == 7

    def test_cli_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for code in RULE_FIXTURES:
            assert code in result.stdout

    def test_cli_missing_path_is_usage_error(self):
        result = self._run("no/such/dir")
        assert result.returncode == 2
        assert "error" in result.stderr

    def test_tools_wrapper_equivalent(self):
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "reprolint.py"),
                "src",
                "tools",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

"""Unit tests for time-respecting journeys."""

import math

import pytest

from repro.core.interaction import Interaction, InteractionSequence
from repro.graph.journeys import (
    Journey,
    earliest_arrivals_from,
    foremost_journey,
    is_temporally_connected_to,
    journey_exists,
    temporal_reachability_matrix,
)


@pytest.fixture
def chain_sequence():
    """0-1 at t0, 1-2 at t1, 2-3 at t2: journeys only flow 0 -> 3."""
    return InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])


class TestJourneyObject:
    def test_empty_journey_valid(self):
        journey = Journey(source=1, target=1, hops=())
        assert journey.is_valid()
        assert journey.departure is None
        assert journey.arrival is None

    def test_valid_multi_hop_journey(self, chain_sequence):
        journey = Journey(source=0, target=2, hops=(chain_sequence[0], chain_sequence[1]))
        assert journey.is_valid()
        assert journey.departure == 0
        assert journey.arrival == 1
        assert len(journey) == 2

    def test_wrong_chaining_detected(self, chain_sequence):
        journey = Journey(source=0, target=3, hops=(chain_sequence[0], chain_sequence[2]))
        assert not journey.is_valid()

    def test_non_increasing_times_detected(self):
        hops = (Interaction(5, 0, 1), Interaction(5, 1, 2))
        journey = Journey(source=0, target=2, hops=hops)
        assert not journey.is_valid()


class TestReachability:
    def test_earliest_arrivals_chain(self, chain_sequence):
        arrivals = earliest_arrivals_from(chain_sequence, 0, [0, 1, 2, 3])
        assert arrivals[1] == 0
        assert arrivals[2] == 1
        assert arrivals[3] == 2

    def test_reverse_direction_unreachable(self, chain_sequence):
        arrivals = earliest_arrivals_from(chain_sequence, 3, [0, 1, 2, 3])
        assert math.isinf(arrivals[0])
        assert arrivals[2] == 2

    def test_journey_exists(self, chain_sequence):
        assert journey_exists(chain_sequence, 0, 3)
        assert not journey_exists(chain_sequence, 3, 0)
        assert journey_exists(chain_sequence, 2, 2)

    def test_journey_exists_with_window(self, chain_sequence):
        assert not journey_exists(chain_sequence, 0, 3, start=1)
        assert journey_exists(chain_sequence, 1, 3, start=1)
        assert not journey_exists(chain_sequence, 0, 2, end=0)

    def test_foremost_journey_reconstruction(self, chain_sequence):
        journey = foremost_journey(chain_sequence, 0, 3)
        assert journey is not None
        assert journey.is_valid()
        assert journey.arrival == 2
        assert [hop.time for hop in journey.hops] == [0, 1, 2]

    def test_foremost_journey_none_when_unreachable(self, chain_sequence):
        assert foremost_journey(chain_sequence, 3, 0) is None

    def test_foremost_journey_same_node(self, chain_sequence):
        journey = foremost_journey(chain_sequence, 1, 1)
        assert journey is not None
        assert len(journey) == 0

    def test_temporal_reachability_matrix(self, chain_sequence):
        matrix = temporal_reachability_matrix(chain_sequence, [0, 1, 2, 3])
        assert matrix[0] == {0, 1, 2, 3}
        # Node 3 can still reach 2 through the last interaction, but nothing
        # earlier on the chain.
        assert matrix[3] == {2, 3}
        assert matrix[2] == {1, 2, 3}
        assert matrix[1] == {0, 1, 2, 3}

    def test_temporally_connected_to_sink(self):
        towards_zero = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        assert is_temporally_connected_to(towards_zero, [0, 1, 2, 3], target=0)
        away_from_zero = InteractionSequence.from_pairs([(1, 0), (2, 1), (3, 2)])
        assert not is_temporally_connected_to(away_from_zero, [0, 1, 2, 3], target=0)

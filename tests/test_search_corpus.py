"""Worst-case corpus tests: golden replays, byte-determinism, corruption.

Two families of guarantees:

* **Golden corpus** (``tests/data/worst_cases/``): every checked-in
  instance replays its stored competitive ratio *exactly* on the
  reference engine (and, in the search-marked suite, on all three
  engines), and re-running the search with the recorded seed and budget
  re-finds a ratio at least as hard as the stored one.
* **Store determinism**: the same search persisted twice produces
  byte-identical stores (manifest and instance files); different seeds
  produce different lineages.  Instance files are content-addressed, so
  any corruption is detected on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.search import (
    SearchConfig,
    WorstCaseCorpus,
    WorstCaseCorpusError,
    instance_from_candidate,
    replay_instance,
    run_search,
)

pytestmark = pytest.mark.search

GOLDEN_DIR = Path(__file__).parent / "data" / "worst_cases"

_SMOKE = dict(
    algorithm="gathering",
    family="uniform",
    n=12,
    budget=24,
    generation_size=6,
    pool_size=3,
    initial_samples=8,
)


def golden_digests():
    return WorstCaseCorpus(GOLDEN_DIR).digests()


class TestGoldenCorpus:
    def test_corpus_is_present_and_verifies(self):
        corpus = WorstCaseCorpus(GOLDEN_DIR)
        assert len(corpus.digests()) >= 3
        assert corpus.verify() == []

    @pytest.mark.parametrize("digest", golden_digests())
    def test_reference_replay_is_exact(self, digest):
        instance = WorstCaseCorpus(GOLDEN_DIR).load(digest)
        metrics = replay_instance(instance, engine="reference")
        assert metrics.competitive_ratio == instance.competitive_ratio
        assert int(metrics.duration) == int(instance.metrics["duration"])
        assert metrics.opt_cost == instance.metrics["opt_cost"]
        assert metrics.transmissions == int(instance.metrics["transmissions"])

    @pytest.mark.parametrize("digest", golden_digests())
    @pytest.mark.parametrize("engine", ["fast", "vectorized"])
    def test_batched_engines_replay_identically(self, digest, engine):
        instance = WorstCaseCorpus(GOLDEN_DIR).load(digest)
        metrics = replay_instance(instance, engine=engine)
        assert metrics.competitive_ratio == instance.competitive_ratio
        assert int(metrics.duration) == int(instance.metrics["duration"])
        assert metrics.transmissions == int(instance.metrics["transmissions"])

    @pytest.mark.parametrize("digest", golden_digests())
    def test_search_refinds_at_least_the_stored_ratio(self, digest):
        instance = WorstCaseCorpus(GOLDEN_DIR).load(digest)
        outcome = run_search(instance.to_config())
        assert outcome.best_ratio >= instance.competitive_ratio


class TestStoreDeterminism:
    def test_same_seed_and_budget_byte_identical_stores(self, tmp_path):
        stores = []
        for name in ("a", "b"):
            outcome = run_search(SearchConfig(seed=4, **_SMOKE))
            corpus = WorstCaseCorpus(tmp_path / name)
            corpus.add_outcome(outcome, top=2)
            stores.append(corpus)
        first, second = stores
        assert first.manifest_bytes() == second.manifest_bytes()
        assert first.digests() == second.digests()
        for digest in first.digests():
            assert first.instance_path(digest).read_bytes() == (
                second.instance_path(digest).read_bytes()
            )

    def test_different_seeds_different_lineages(self, tmp_path):
        instances = []
        for seed in (1, 2):
            outcome = run_search(SearchConfig(seed=seed, **_SMOKE))
            corpus = WorstCaseCorpus(tmp_path / str(seed))
            (digest,) = corpus.add_outcome(outcome, top=1)
            instances.append(corpus.load(digest))
        first, second = instances
        assert first.digest() != second.digest()
        assert (
            first.lineage != second.lineage
            or first.base_seed != second.base_seed
        )


class TestStoreIntegrity:
    def _store_one(self, tmp_path):
        outcome = run_search(SearchConfig(seed=0, **_SMOKE))
        corpus = WorstCaseCorpus(tmp_path)
        (digest,) = corpus.add_outcome(outcome, top=1)
        return corpus, digest, outcome

    def test_add_is_idempotent(self, tmp_path):
        corpus, digest, outcome = self._store_one(tmp_path)
        before = corpus.manifest_bytes()
        again = corpus.add(
            instance_from_candidate(outcome.config, outcome.best)
        )
        assert again == digest
        assert corpus.manifest_bytes() == before

    def test_corruption_is_detected(self, tmp_path):
        corpus, digest, _ = self._store_one(tmp_path)
        path = corpus.instance_path(digest)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(WorstCaseCorpusError, match="corrupt"):
            corpus.load(digest)
        assert corpus.verify() == [digest]

    def test_best_for_picks_the_hardest(self, tmp_path):
        corpus, digest, outcome = self._store_one(tmp_path)
        best = corpus.best_for(_SMOKE["algorithm"], _SMOKE["family"])
        assert best is not None
        assert best.competitive_ratio == outcome.best_ratio
        assert corpus.best_for("gathering", "zipf") is None

    def test_payload_roundtrip_preserves_digest(self, tmp_path):
        corpus, digest, _ = self._store_one(tmp_path)
        instance = corpus.load(digest)
        raw = json.loads(instance.canonical_bytes().decode("utf-8"))
        rebuilt = type(instance).from_payload(raw)
        assert rebuilt.digest() == digest

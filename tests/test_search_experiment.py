"""E26 and the ``repro search`` CLI.

The tier-1 smoke runs E26 at a reduced scale (n=16, budget 48) — the
experiment is deterministic per seed, so the thin margins are stable.  The
full-budget run at the paper scale (n=60, budget 192) carries the ``slow``
marker and runs in CI's slow lane.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.search import run_adversarial_search

pytestmark = pytest.mark.search


class TestExperimentE26:
    def test_e26_registered(self):
        assert "E26" in EXPERIMENTS
        assert EXPERIMENTS["E26"].runner is run_adversarial_search

    def test_e26_smoke_scale(self):
        report = run_adversarial_search(n=16, budget=48, seed=0)
        assert report.verdict
        assert report.details["beating_pairs"] == 2
        table = report.tables[0]
        assert set(table.column("replay_identical")) == {True}
        assert set(table.column("beats_p99")) == {True}
        for search_best, random_p99 in zip(
            table.column("search_best"), table.column("random_p99")
        ):
            assert search_best > random_p99
        assert "bit-identical" in report.to_markdown()

    def test_e26_smoke_is_deterministic(self):
        first = run_adversarial_search(n=16, budget=48, seed=0)
        second = run_adversarial_search(n=16, budget=48, seed=0)
        assert first.details == second.details

    @pytest.mark.slow
    def test_e26_full_budget(self):
        report = run_adversarial_search()
        assert report.verdict
        assert report.details["n"] == 60
        assert report.details["budget"] == 192
        assert report.details["beating_pairs"] == 2


class TestSearchCLI:
    def test_search_command_runs_and_persists(self, tmp_path, capsys):
        store = tmp_path / "corpus"
        code = main(
            [
                "search", "gathering",
                "--family", "uniform",
                "--n", "12",
                "--budget", "24",
                "--generation-size", "6",
                "--pool-size", "3",
                "--initial", "8",
                "--store", str(store),
                "--top", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "competitive_ratio" in out
        assert "best-so-far per generation" in out
        manifest = json.loads((store / "manifest.json").read_text())
        assert len(manifest["instances"]) >= 1
        for summary in manifest["instances"].values():
            assert summary["algorithm"] == "gathering"
            assert summary["family"] == "uniform"
            assert summary["competitive_ratio"] >= 1.0

    def test_search_command_rejects_bad_config(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "gathering", "--n", "1"])

    def test_search_help_mentions_docs(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--help"])
        out = capsys.readouterr().out
        assert "docs/search.md" in out

"""Tests for the CLI and the public package surface."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_algorithms_exposed(self):
        assert repro.Gathering().name == "gathering"
        assert repro.Waiting().name == "waiting"
        assert repro.WaitingGreedy(tau=10).name == "waiting_greedy"

    def test_quickstart_snippet_from_docstring(self):
        nodes = list(range(20))
        adversary = repro.RandomizedAdversary(nodes, seed=1)
        result = repro.Executor(nodes, sink=0, algorithm=repro.Gathering()).run(
            adversary, max_interactions=20_000
        )
        assert result.terminated


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E11" in output
        assert "gathering" in output

    def test_trial_command(self, capsys):
        assert main(["trial", "gathering", "--n", "12", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "terminated=True" in output

    def test_trial_command_waiting_greedy_defaults_tau(self, capsys):
        assert main(["trial", "waiting_greedy", "--n", "12", "--seed", "1"]) == 0

    def test_run_command_writes_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["run", "E5", "--output", str(target)])
        assert code == 0
        assert "Theorem 5" in target.read_text()

    def test_run_command_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCLI:
    """Smoke tests for the sweep subcommand and its engine/worker knobs."""

    def test_sweep_default(self, capsys):
        assert main(["sweep", "gathering", "--ns", "8,10", "--trials", "2"]) == 0
        output = capsys.readouterr().out
        assert "gathering: interactions to termination" in output
        assert "| 8 |" in output and "| 10 |" in output

    def test_sweep_fast_engine_matches_reference(self, capsys):
        assert main(["sweep", "gathering", "--ns", "9", "--trials", "3"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(["sweep", "gathering", "--ns", "9", "--trials", "3",
                  "--engine", "fast"]) == 0
        )
        assert capsys.readouterr().out == reference

    def test_sweep_workers(self, capsys):
        assert main(["sweep", "gathering", "--ns", "8", "--trials", "2"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["sweep", "gathering", "--ns", "8", "--trials", "2",
                  "--engine", "fast", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == serial

    def test_sweep_batched(self, capsys):
        assert main(["sweep", "gathering", "--ns", "8", "--trials", "2"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["sweep", "gathering", "--ns", "8", "--trials", "2",
                  "--engine", "fast", "--batched"]) == 0
        )
        assert capsys.readouterr().out == serial

    def test_sweep_mobility_adversary(self, capsys):
        assert (
            main(["sweep", "waiting", "--ns", "8", "--trials", "2",
                  "--adversary", "community", "--engine", "fast"]) == 0
        )
        assert "waiting" in capsys.readouterr().out

    def test_sweep_writes_output_file(self, tmp_path):
        target = tmp_path / "sweep.md"
        assert (
            main(["sweep", "gathering", "--ns", "8", "--trials", "2",
                  "--output", str(target)]) == 0
        )
        assert "interactions to termination" in target.read_text()

    def test_sweep_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            main(["sweep", "gathering", "--ns", "not-numbers"])
        with pytest.raises(SystemExit):
            main(["sweep", "gathering", "--ns", ""])
        with pytest.raises(SystemExit):
            main(["sweep", "gathering", "--ns", "8", "--trials", "0"])
        with pytest.raises(SystemExit):
            main(["sweep", "gathering", "--ns", "8", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["sweep", "no_such_algorithm", "--ns", "8"])
        with pytest.raises(SystemExit):
            main(["sweep", "gathering", "--ns", "8",
                  "--adversary", "rush_hour"])

    def test_trial_engine_flag(self, capsys):
        assert main(["trial", "gathering", "--n", "10", "--seed", "2",
                     "--engine", "fast"]) == 0
        fast = capsys.readouterr().out
        assert main(["trial", "gathering", "--n", "10", "--seed", "2"]) == 0
        assert capsys.readouterr().out == fast

    def test_trial_adversary_flag(self, capsys):
        assert main(["trial", "gathering", "--n", "12", "--seed", "1",
                     "--adversary", "waypoint"]) == 0
        assert "adversary=waypoint" in capsys.readouterr().out


class TestVectorizedEngineCLI:
    """Smoke tests for --engine vectorized across the CLI surface."""

    def test_trial_vectorized_matches_reference(self, capsys):
        assert main(["trial", "waiting_greedy", "--n", "14", "--seed", "3"]) == 0
        reference = capsys.readouterr().out
        assert main(["trial", "waiting_greedy", "--n", "14", "--seed", "3",
                     "--engine", "vectorized"]) == 0
        assert capsys.readouterr().out == reference

    def test_sweep_vectorized_matches_reference(self, capsys):
        assert main(["sweep", "waiting", "--ns", "9,11", "--trials", "3"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(["sweep", "waiting", "--ns", "9,11", "--trials", "3",
                  "--engine", "vectorized"]) == 0
        )
        assert capsys.readouterr().out == reference

    def test_sweep_vectorized_batched(self, capsys):
        assert main(["sweep", "gathering", "--ns", "8,10", "--trials", "3"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(["sweep", "gathering", "--ns", "8,10", "--trials", "3",
                  "--engine", "vectorized", "--batched"]) == 0
        )
        assert capsys.readouterr().out == reference

    def test_sweep_vectorized_batched_workers_compose(self, capsys):
        assert main(["sweep", "gathering", "--ns", "8,10", "--trials", "2"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(["sweep", "gathering", "--ns", "8,10", "--trials", "2",
                  "--engine", "vectorized", "--batched", "--workers", "2"]) == 0
        )
        assert capsys.readouterr().out == reference

    def test_sweep_vectorized_block_size(self, capsys):
        assert main(["sweep", "waiting", "--ns", "9", "--trials", "2"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(["sweep", "waiting", "--ns", "9", "--trials", "2",
                  "--engine", "vectorized", "--batched",
                  "--block-size", "64"]) == 0
        )
        assert capsys.readouterr().out == reference

    @pytest.mark.parametrize(
        "algorithm", ("spanning_tree", "full_knowledge", "future_broadcast")
    )
    def test_sweep_vectorized_knowledge_algorithms(self, algorithm, capsys):
        """The knowledge-heavy algorithms run kernelized — no fallback."""
        import warnings

        from repro.core.vector_execution import EngineFallbackWarning

        assert main(["sweep", algorithm, "--ns", "8", "--trials", "2"]) == 0
        reference = capsys.readouterr().out
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineFallbackWarning)
            assert (
                main(["sweep", algorithm, "--ns", "8", "--trials", "2",
                      "--engine", "vectorized", "--batched"]) == 0
            )
        assert capsys.readouterr().out == reference

    @pytest.mark.parametrize(
        "algorithm", ("spanning_tree", "full_knowledge", "future_broadcast")
    )
    def test_trial_vectorized_knowledge_algorithms(self, algorithm, capsys):
        assert main(["trial", algorithm, "--n", "12", "--seed", "1"]) == 0
        reference = capsys.readouterr().out
        assert main(["trial", algorithm, "--n", "12", "--seed", "1",
                     "--engine", "vectorized"]) == 0
        assert capsys.readouterr().out == reference

    def test_sweep_vectorized_unknown_kernel_warns(self, monkeypatch, capsys):
        """Removing a kernel surfaces the strict lookup error, CLI-visible.

        ``get_kernel`` now raises a ``KeyError`` naming the algorithm and
        listing the registered kernels; the vectorized engine turns that
        into a per-cell ``EngineFallbackWarning`` carrying the same
        message, and the sweep still completes with the reference numbers
        plus a ``fallbacks`` column surfacing the downgrade per row
        (docs/observability.md).
        """
        from repro.algorithms import kernels as kernels_module
        from repro.core.vector_execution import EngineFallbackWarning

        assert main(["sweep", "gathering", "--ns", "8", "--trials", "2"]) == 0
        reference = capsys.readouterr().out
        monkeypatch.delitem(kernels_module.KERNELS, "gathering")
        with pytest.warns(EngineFallbackWarning) as caught:
            assert (
                main(["sweep", "gathering", "--ns", "8", "--trials", "2",
                      "--engine", "vectorized", "--batched"]) == 0
            )
        fallback_out = capsys.readouterr().out

        def drop_last_column(table: str) -> str:
            lines = []
            for line in table.splitlines():
                if line.startswith("|") and line.endswith("|"):
                    cells = line[1:-1].split("|")
                    lines.append("|" + "|".join(cells[:-1]) + "|")
                else:
                    lines.append(line)
            return "\n".join(lines) + "\n"

        assert "fallbacks" in fallback_out
        # Both trials of the one cell downgraded; the numbers themselves
        # stay reference-identical, only the new column differs.
        assert "| 2 |" in fallback_out.splitlines()[-1]
        assert drop_last_column(fallback_out) == reference
        message = str(caught[0].message)
        assert "no decision kernel is registered for algorithm" in message
        assert "'gathering'" in message
        assert "registered kernels:" in message

    def test_sweep_vectorized_mobility_adversary(self, capsys):
        assert (
            main(["sweep", "waiting", "--ns", "10", "--trials", "2",
                  "--adversary", "community", "--engine", "vectorized",
                  "--batched"]) == 0
        )
        assert "waiting" in capsys.readouterr().out

    def test_run_e23_vectorized_equivalence_experiment(self, capsys):
        assert main(["run", "E23"]) == 0
        assert "reproduced" in capsys.readouterr().out

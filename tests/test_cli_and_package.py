"""Tests for the CLI and the public package surface."""

import pytest

import repro
from repro.cli import build_parser, main


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_algorithms_exposed(self):
        assert repro.Gathering().name == "gathering"
        assert repro.Waiting().name == "waiting"
        assert repro.WaitingGreedy(tau=10).name == "waiting_greedy"

    def test_quickstart_snippet_from_docstring(self):
        nodes = list(range(20))
        adversary = repro.RandomizedAdversary(nodes, seed=1)
        result = repro.Executor(nodes, sink=0, algorithm=repro.Gathering()).run(
            adversary, max_interactions=20_000
        )
        assert result.terminated


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "E11" in output
        assert "gathering" in output

    def test_trial_command(self, capsys):
        assert main(["trial", "gathering", "--n", "12", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "terminated=True" in output

    def test_trial_command_waiting_greedy_defaults_tau(self, capsys):
        assert main(["trial", "waiting_greedy", "--n", "12", "--seed", "1"]) == 0

    def test_run_command_writes_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["run", "E5", "--output", str(target)])
        assert code == 0
        assert "Theorem 5" in target.read_text()

    def test_run_command_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

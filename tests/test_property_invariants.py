"""Property-based tests (hypothesis) for the core invariants.

The invariants exercised here are the ones every other result builds on:

* executor invariants — no node transmits twice, live tokens partition the
  origin set, and termination means the sink holds exactly everything;
* offline optimum invariants — the constructed convergecast schedule is
  always valid and its completion time equals ``opt``; ``opt`` is monotone
  in the start time; the broadcast/convergecast reversal duality holds;
* cost invariants — cost is at least 1, and equals 1 exactly when the
  duration is within the first convergecast;
* competitive-ratio invariants — a captured ratio is ``>= 1`` exactly
  whenever finite, for every engine × adversary family combination, and
  the vectorized ratio kernels agree with the pure-Python oracle;
* data-token algebra — aggregation never loses or duplicates origins.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st
from strategies import common_settings, interaction_sequences

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.core.cost import cost_of_result
from repro.core.data import DataToken
from repro.core.execution import run_algorithm
from repro.core.interaction import InteractionSequence
from repro.offline.broadcast import broadcast_completion_time
from repro.offline.convergecast import (
    build_convergecast_schedule,
    foremost_arrival_times,
    opt,
)
from repro.offline.schedule import validate_schedule

# Strategies are shared suite-wide — see tests/strategies.py.


# ---------------------------------------------------------------------- #
# Executor invariants
# ---------------------------------------------------------------------- #


@common_settings
@given(data=interaction_sequences())
def test_executor_single_transmission_per_node(data):
    n, sequence = data
    result = run_algorithm(Gathering(), sequence, list(range(n)), sink=0)
    senders = [t.sender for t in result.transmissions]
    assert len(senders) == len(set(senders))
    assert 0 not in senders


@common_settings
@given(data=interaction_sequences())
def test_executor_termination_means_full_coverage(data):
    n, sequence = data
    result = run_algorithm(Gathering(), sequence, list(range(n)), sink=0)
    if result.terminated:
        assert result.sink_coverage == n
        assert result.transmission_count == n - 1
        assert result.duration == result.transmissions[-1].time + 1
    else:
        assert result.sink_coverage < n


@common_settings
@given(data=interaction_sequences())
def test_executor_waiting_transmissions_only_to_sink(data):
    n, sequence = data
    result = run_algorithm(Waiting(), sequence, list(range(n)), sink=0)
    assert all(t.receiver == 0 for t in result.transmissions)


@common_settings
@given(data=interaction_sequences())
def test_no_online_algorithm_beats_the_offline_optimum(data):
    # Whenever an online run terminates, its last transmission cannot happen
    # before the offline optimum's completion time (opt is a true optimum).
    n, sequence = data
    nodes = list(range(n))
    result = run_algorithm(Gathering(), sequence, nodes, sink=0)
    optimum = opt(sequence, nodes, 0)
    if result.terminated:
        assert not math.isinf(optimum)
        assert result.duration - 1 >= optimum


# ---------------------------------------------------------------------- #
# Offline optimum invariants
# ---------------------------------------------------------------------- #


@common_settings
@given(data=interaction_sequences())
def test_convergecast_schedule_valid_and_tight(data):
    n, sequence = data
    nodes = list(range(n))
    optimum = opt(sequence, nodes, 0)
    if math.isinf(optimum):
        return
    schedule = build_convergecast_schedule(sequence, nodes, 0)
    completion = validate_schedule(schedule, sequence, nodes, 0)
    assert completion == optimum


@common_settings
@given(data=interaction_sequences())
def test_opt_monotone_in_start(data):
    n, sequence = data
    nodes = list(range(n))
    previous = opt(sequence, nodes, 0, start=0)
    for start in range(1, min(len(sequence), 10)):
        current = opt(sequence, nodes, 0, start=start)
        assert current >= previous or math.isinf(current)
        previous = current


@common_settings
@given(data=interaction_sequences())
def test_foremost_arrivals_lower_bound_opt(data):
    n, sequence = data
    nodes = list(range(n))
    arrivals = foremost_arrival_times(sequence, nodes, 0)
    optimum = opt(sequence, nodes, 0)
    finite = [a for node, a in arrivals.items() if node != 0]
    if any(math.isinf(a) for a in finite):
        assert math.isinf(optimum)
    else:
        assert optimum == max(finite)


@common_settings
@given(data=interaction_sequences())
def test_convergecast_broadcast_duality(data):
    n, sequence = data
    nodes = list(range(n))
    optimum = opt(sequence, nodes, 0)
    reversed_full = sequence.reversed()
    flood = broadcast_completion_time(reversed_full, 0, nodes)
    # A convergecast exists in the whole sequence iff a flood from the sink
    # covers everything in the reversed sequence.
    assert math.isinf(optimum) == math.isinf(flood)


@common_settings
@given(data=interaction_sequences())
def test_full_knowledge_algorithm_achieves_opt(data):
    from repro.algorithms.full_knowledge import FullKnowledge
    from repro.core.execution import Executor
    from repro.knowledge import FullKnowledge as FullKnowledgeOracle
    from repro.knowledge import KnowledgeBundle

    n, sequence = data
    nodes = list(range(n))
    optimum = opt(sequence, nodes, 0)
    knowledge = KnowledgeBundle(FullKnowledgeOracle(sequence))
    executor = Executor(nodes, 0, FullKnowledge(), knowledge=knowledge)
    result = executor.run(sequence)
    if math.isinf(optimum):
        assert not result.terminated
    else:
        assert result.terminated
        assert result.duration == optimum + 1


# ---------------------------------------------------------------------- #
# Cost invariants
# ---------------------------------------------------------------------- #


@common_settings
@given(data=interaction_sequences())
def test_cost_at_least_one_and_one_iff_optimal(data):
    n, sequence = data
    nodes = list(range(n))
    result = run_algorithm(Gathering(), sequence, nodes, sink=0)
    if not result.terminated:
        return
    breakdown = cost_of_result(result, sequence, nodes, 0)
    assert breakdown.cost >= 1.0
    optimum = opt(sequence, nodes, 0)
    if breakdown.cost == 1.0:
        assert result.duration - 1 <= optimum
    else:
        assert result.duration - 1 > optimum


# ---------------------------------------------------------------------- #
# Competitive-ratio invariants
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("engine", ["reference", "fast", "vectorized"])
@pytest.mark.parametrize(
    "adversary", ["uniform", "zipf", "hub", "waypoint", "community"]
)
def test_competitive_ratio_at_least_one(engine, adversary):
    """A captured ratio is >= 1 *exactly* whenever the trial terminated.

    The offline optimum is a true optimum on the consumed window, so the
    online duration can never undercut opt_cost — across every engine and
    every committed adversary family.
    """
    from repro.algorithms.gathering import Gathering
    from repro.sim.runner import run_random_trial

    for seed in range(4):
        metrics = run_random_trial(
            Gathering(), 12, seed, engine=engine, adversary=adversary,
            capture_opt=True,
        )
        assert metrics.opt_cost is not None
        if metrics.terminated:
            assert math.isfinite(metrics.opt_cost)
            assert metrics.competitive_ratio is not None
            assert metrics.competitive_ratio >= 1.0
            assert metrics.competitive_ratio == (
                metrics.duration / metrics.opt_cost
            )
        elif metrics.competitive_ratio is not None:
            assert metrics.competitive_ratio == math.inf


@pytest.mark.parametrize("engine", ["reference", "fast", "vectorized"])
@pytest.mark.parametrize(
    "name", ["spanning_tree", "full_knowledge", "future_broadcast"]
)
def test_competitive_ratio_knowledge_algorithms(engine, name):
    """Ratio >= 1 holds for the knowledge-heavy algorithms on every engine.

    These three run trial-vectorized through their own decision kernels
    now, so the invariant guards the kernel path as well as the object
    form: whenever a trial terminates the captured ratio is finite and
    at least 1, and exactly ``duration / opt_cost``.
    """
    from repro.core.algorithm import registry
    from repro.sim.runner import run_random_trial

    for seed in range(3):
        metrics = run_random_trial(
            registry.create(name), 12, seed, engine=engine,
            adversary="uniform", capture_opt=True,
        )
        assert metrics.opt_cost is not None
        if metrics.terminated:
            assert math.isfinite(metrics.opt_cost)
            assert metrics.competitive_ratio is not None
            assert metrics.competitive_ratio >= 1.0
            assert metrics.competitive_ratio == (
                metrics.duration / metrics.opt_cost
            )
        elif metrics.competitive_ratio is not None:
            assert metrics.competitive_ratio == math.inf


@common_settings
@given(data=interaction_sequences())
def test_ratio_kernel_opt_matches_oracle(data):
    import numpy as np

    from repro.ratio.kernels import opt_end_matrix, sequence_index_blocks
    from repro.ratio.semantics import opt_cost_from_end

    n, sequence = data
    index_of = {node: node for node in range(n)}
    i, j = sequence_index_blocks(sequence, index_of)
    ends = opt_end_matrix(
        i[None, :], j[None, :], np.array([len(sequence)]), n, 0
    )
    oracle = opt(sequence, list(range(n)), 0)
    assert ends[0] == float(oracle)
    assert opt_cost_from_end(float(ends[0])) == opt_cost_from_end(oracle)


@common_settings
@given(data=interaction_sequences())
def test_terminated_run_ratio_bounded_below_by_one(data):
    from repro.core.fast_execution import FastExecutor
    from repro.ratio.semantics import competitive_ratio

    n, sequence = data
    nodes = list(range(n))
    executor = FastExecutor(nodes, 0, Gathering(), capture_opt=True)
    result = executor.run(sequence)
    assert result.opt_cost is not None
    if result.terminated:
        ratio = competitive_ratio(float(result.duration), result.opt_cost)
        assert ratio >= 1.0


# ---------------------------------------------------------------------- #
# Data-token algebra
# ---------------------------------------------------------------------- #


@common_settings
@given(
    groups=st.lists(
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, unique=True),
        min_size=2,
        max_size=6,
    )
)
def test_token_aggregation_preserves_origins(groups):
    # Make the groups disjoint by offsetting each group's elements.
    disjoint = []
    offset = 0
    for group in groups:
        disjoint.append([offset + i for i in range(len(group))])
        offset += len(group)
    tokens = [
        DataToken(origins=frozenset(group), payload=float(len(group)))
        for group in disjoint
    ]
    combined = tokens[0]
    for token in tokens[1:]:
        combined = combined.aggregate(token)
    assert combined.origins == frozenset().union(*map(frozenset, disjoint))
    assert combined.payload == sum(len(group) for group in disjoint)

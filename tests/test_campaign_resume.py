"""Resume semantics of the campaign runner and store.

The contracts under test (see ``docs/campaigns.md``):

* an interrupted campaign resumes by skipping exactly the cells the store
  can prove, and the final store is byte-identical to a fresh run;
* a store rejects a spec whose hash differs (no silent grid mixing);
* corruption — tampered shards, truncated writes, edited manifests — is
  detected and self-healed on the next run;
* the stored results are engine-invariant: fresh/resumed legs under any
  mix of reference/fast/vectorized engines write the same bytes.
"""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    CampaignStoreMismatch,
    build_campaign_report,
    campaign_status,
    run_campaign,
)


def spec(**overrides):
    kwargs = dict(
        name="resume",
        algorithms=("gathering", "waiting"),
        adversaries=("uniform",),
        ns=(8, 10),
        trials=2,
        engine="fast",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def shard_bytes(store_dir, campaign_spec):
    store = CampaignStore(store_dir)
    return {
        cell.key: store.shard_path(cell.key).read_bytes()
        for cell in campaign_spec.cells()
    }


class TestKillAndResume:
    def test_interrupt_then_resume_matches_fresh(self, tmp_path):
        s = spec()
        fresh = tmp_path / "fresh"
        resumed = tmp_path / "resumed"
        assert run_campaign(s, fresh).complete

        first = run_campaign(s, resumed, max_cells=1)
        assert first.executed == 1 and first.remaining == 3
        assert not first.complete
        second = run_campaign(s, resumed, max_cells=2)
        assert second.skipped == 1 and second.executed == 2
        third = run_campaign(s, resumed)
        assert third.skipped == 3 and third.executed == 1 and third.complete

        assert shard_bytes(fresh, s) == shard_bytes(resumed, s)
        assert (
            build_campaign_report(fresh).to_markdown()
            == build_campaign_report(resumed).to_markdown()
        )

    def test_resumed_run_executes_nothing_when_complete(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        again = run_campaign(s, store_dir)
        assert again.executed == 0 and again.skipped == 4 and again.complete

    def test_max_cells_zero_only_verifies(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        summary = run_campaign(s, store_dir, max_cells=0)
        assert summary.executed == 0 and summary.remaining == 4

    def test_invalid_workers_rejected_even_when_nothing_pending(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        with pytest.raises(ValueError, match="workers"):
            run_campaign(s, store_dir, workers=0)

    def test_manifest_elapsed_is_per_cell_not_per_batch(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir, workers=3)
        entries = CampaignStore(store_dir).read_manifest()["cells"].values()
        # Timing is measured around each cell's own execution inside the
        # worker, so every concurrent cell records a real positive value.
        assert all(entry["elapsed_seconds"] > 0 for entry in entries)

    def test_workers_do_not_change_the_store(self, tmp_path):
        s = spec()
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        run_campaign(s, serial, workers=1)
        run_campaign(s, parallel, workers=3)
        assert shard_bytes(serial, s) == shard_bytes(parallel, s)


class TestSpecMismatch:
    def test_resume_with_edited_grid_is_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(spec(), store_dir, max_cells=1)
        with pytest.raises(CampaignStoreMismatch, match="differs"):
            run_campaign(spec(ns=(8, 10, 12)), store_dir)
        with pytest.raises(CampaignStoreMismatch):
            run_campaign(spec(master_seed=7), store_dir)

    def test_result_neutral_edits_resume_fine(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(spec(), store_dir, max_cells=1)
        summary = run_campaign(
            spec(engine="reference", description="renamed knobs"), store_dir
        )
        assert summary.complete and summary.skipped == 1


class TestCorruptionDetection:
    def corrupt_one_shard(self, store_dir, s):
        store = CampaignStore(store_dir)
        cell = s.cells()[0]
        shard = store.shard_path(cell.key)
        shard.write_bytes(shard.read_bytes()[:-10])
        return cell

    def test_status_reports_corrupt_cells(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        self.corrupt_one_shard(store_dir, s)
        status = campaign_status(store_dir)
        assert "corrupt=1" in status and "digest mismatch" in status

    def test_corrupt_cells_rerun_and_self_heal(self, tmp_path):
        s = spec()
        fresh = tmp_path / "fresh"
        store_dir = tmp_path / "store"
        run_campaign(s, fresh)
        run_campaign(s, store_dir)
        self.corrupt_one_shard(store_dir, s)
        summary = run_campaign(s, store_dir)
        assert summary.executed == 1 and summary.repaired == 1
        assert summary.complete
        assert shard_bytes(fresh, s) == shard_bytes(store_dir, s)
        assert "corrupt=0" in campaign_status(store_dir)

    def test_missing_shard_detected_and_refilled(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        cell = s.cells()[1]
        CampaignStore(store_dir).shard_path(cell.key).unlink()
        assert "without shard file" in campaign_status(store_dir)
        summary = run_campaign(s, store_dir)
        assert summary.repaired == 1 and summary.complete

    def test_tampered_manifest_count_detected(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        store = CampaignStore(store_dir)
        manifest = store.read_manifest()
        key = s.cells()[0].key
        manifest["cells"][key]["records"] = 99
        store._write_manifest(manifest)
        assert "record count mismatch" in campaign_status(store_dir)

    def test_report_excludes_corrupt_cells(self, tmp_path):
        s = spec()
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir)
        self.corrupt_one_shard(store_dir, s)
        report = build_campaign_report(store_dir)
        assert report.complete_cells == 3
        assert any("corrupt" in note for note in report.notes)


class TestEngineInvariance:
    @pytest.mark.parametrize("fresh_engine", ["reference", "fast", "vectorized"])
    def test_fresh_equals_resumed_across_engines(self, tmp_path, fresh_engine):
        s = spec(ns=(8,), trials=2)
        fresh = tmp_path / "fresh"
        resumed = tmp_path / "resumed"
        run_campaign(s, fresh, engine=fresh_engine)
        run_campaign(s, resumed, engine="fast", max_cells=1)
        run_campaign(s, resumed, engine="vectorized")
        assert shard_bytes(fresh, s) == shard_bytes(resumed, s)

    def test_manifest_tracks_per_cell_engine(self, tmp_path):
        s = spec(ns=(8,), trials=2)
        store_dir = tmp_path / "store"
        run_campaign(s, store_dir, engine="fast", max_cells=1)
        run_campaign(s, store_dir, engine="vectorized")
        engines = {
            entry["engine"]
            for entry in CampaignStore(store_dir).read_manifest()["cells"].values()
        }
        assert engines == {"fast", "vectorized"}


class TestExperimentE24:
    def test_e24_registered_and_reproduces(self):
        from repro.experiments.registry import EXPERIMENTS, run_experiment

        assert "E24" in EXPERIMENTS
        report = run_experiment("E24")
        assert report.verdict
        assert report.details["shards_byte_identical"]
        assert report.details["reports_equal"]

"""Unit tests for the evolving-graph conversions."""

import networkx as nx
import pytest

from repro.core.interaction import InteractionSequence
from repro.graph.evolving_graph import (
    aggregate_window,
    from_evolving_graph,
    snapshot_at,
    to_evolving_graph,
)


class TestToEvolvingGraph:
    def test_one_snapshot_per_interaction(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        snapshots = to_evolving_graph(sequence, [0, 1, 2])
        assert len(snapshots) == 2
        assert snapshots[0].number_of_edges() == 1
        assert snapshots[0].has_edge(0, 1)
        assert snapshots[1].has_edge(1, 2)

    def test_snapshots_contain_all_nodes(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        snapshots = to_evolving_graph(sequence, [0, 1, 2, 3])
        assert snapshots[0].number_of_nodes() == 4


class TestFromEvolvingGraph:
    def test_flatten_multi_edge_snapshots(self):
        g1 = nx.Graph([(0, 1), (2, 3)])
        g2 = nx.Graph([(1, 2)])
        sequence = from_evolving_graph([g1, g2])
        assert len(sequence) == 3
        assert sequence[2].pair == frozenset({1, 2})

    def test_sorted_edge_order_is_deterministic(self):
        g = nx.Graph([(3, 2), (0, 1)])
        sequence = from_evolving_graph([g])
        assert sequence.pairs == [(0, 1), (2, 3)]

    def test_unknown_edge_order_rejected(self):
        with pytest.raises(ValueError):
            from_evolving_graph([nx.Graph([(0, 1)])], edge_order="random")

    def test_round_trip_single_edge_snapshots(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 2)])
        snapshots = to_evolving_graph(sequence, [0, 1, 2])
        back = from_evolving_graph(snapshots)
        assert back == sequence


class TestWindows:
    def test_snapshot_at(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        snap = snapshot_at(sequence, [0, 1, 2], 1)
        assert snap.has_edge(1, 2)
        assert snapshot_at(sequence, [0, 1, 2], 10).number_of_edges() == 0

    def test_aggregate_window(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 2)])
        window = aggregate_window(sequence, [0, 1, 2], 0, 2)
        assert window.number_of_edges() == 2
        full = aggregate_window(sequence, [0, 1, 2], 0, 99)
        assert full.number_of_edges() == 3

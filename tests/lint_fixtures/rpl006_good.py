"""RPL006 clean fixture: set consumption is sorted or commutative."""


def missing_keys(data: dict, known: set) -> list:
    return sorted(set(data) - known)


def collect(nodes: list) -> list:
    reached = {node for node in nodes if node > 0}
    total = sum(reached)  # commutative reduction: not iteration order
    return sorted(reached) + [total]

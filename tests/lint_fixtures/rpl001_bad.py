"""RPL001 violation fixture: stdlib random import and from-import."""

import random  # line 3: flagged
from random import shuffle  # line 4: flagged


def draw() -> float:
    rng = random.Random(7)
    values = [1, 2, 3]
    shuffle(values)
    return rng.random()

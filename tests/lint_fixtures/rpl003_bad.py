"""RPL003 violation fixture: Generator construction outside the allowlist."""

import numpy as np


def fresh_entropy() -> float:
    rng = np.random.default_rng()  # line 7: flagged (unseeded entropy source)
    return float(rng.random())

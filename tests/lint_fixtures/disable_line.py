"""Suppression fixture: per-line disables silence exactly the listed codes."""

import math

suppressed = 1.5 == math.inf  # reprolint: disable=RPL007  (justified: test)
multi = 2.5 != math.nan  # reprolint: disable=RPL006,RPL007
everything = 3.5 == math.inf  # reprolint: disable
still_flagged = 4.5 == math.inf  # line 8: RPL007 must survive
wrong_code = 5.5 == math.inf  # reprolint: disable=RPL001  (doesn't match)

"""RPL005 clean fixture: sentinels imported from their owner modules."""

from repro.offline.convergecast import INFINITY
from repro.ratio.semantics import RATIO_UNDEFINED, UNREACHABLE

__all__ = ["INFINITY", "RATIO_UNDEFINED", "UNREACHABLE"]

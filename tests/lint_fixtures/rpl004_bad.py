"""RPL004 violation fixture: wall-clock reads in result-determining code."""

import time
from datetime import datetime


def stamp_result(record: dict) -> dict:
    record["created_at"] = time.time()  # line 8: flagged
    record["pretty"] = datetime.now().isoformat()  # line 9: flagged
    return record

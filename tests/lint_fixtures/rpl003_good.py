"""RPL003 clean fixture: consume an injected Generator, construct nowhere."""

import numpy as np


def sample(rng: np.random.Generator, k: int) -> np.ndarray:
    return rng.random(k)

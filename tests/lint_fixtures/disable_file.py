"""Suppression fixture: file-wide disable of one code."""

# reprolint: disable-file=RPL001

import random  # silenced by the file-wide directive

__all__ = ["random"]

VALUE = 1.0 == 2.0  # RPL007 still fires: only RPL001 is disabled file-wide

"""RPL007 clean fixture: isinf/isnan/isclose instead of float equality."""

import math


def checks(ratio: float, opt_cost: float) -> bool:
    exact = math.isclose(ratio, 1.0)
    unreachable = math.isinf(opt_cost)
    undefined = math.isnan(ratio)
    return exact or unreachable or undefined

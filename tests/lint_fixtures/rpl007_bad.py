"""RPL007 violation fixture: exact float equality comparisons."""

import math


def checks(ratio: float, opt_cost: float) -> bool:
    exact = ratio == 1.0  # line 7: flagged (float literal)
    unreachable = opt_cost == math.inf  # line 8: flagged (inf comparison)
    undefined = ratio != math.nan  # line 9: flagged (always True - NaN bug)
    return exact or unreachable or undefined

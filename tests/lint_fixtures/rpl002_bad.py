"""RPL002 violation fixture: legacy global numpy RNG calls."""

import numpy as np
from numpy.random import randint  # bound legacy name


def draws() -> None:
    np.random.seed(0)  # line 8: flagged (global reseed)
    _ = np.random.rand(3)  # line 9: flagged
    _ = randint(10)  # line 10: flagged (from-import reference)

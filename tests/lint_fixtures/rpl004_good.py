"""RPL004 clean fixture: timing flows through repro.obs, never raw clocks."""

from repro.obs import now


def measure(work) -> float:
    started = now()  # the sanctioned timing helper (docs/observability.md)
    work()
    return now() - started

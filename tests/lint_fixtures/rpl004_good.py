"""RPL004 clean fixture: only elapsed-time telemetry, no wall-clock reads."""

import time


def measure(work) -> float:
    started = time.perf_counter()  # telemetry-only clocks are allowed
    work()
    return time.perf_counter() - started

"""RPL005 violation fixture: re-defined determinism sentinels."""

import math

INFINITY = float("inf")  # line 5: flagged (drifts from the owner definition)
RATIO_UNDEFINED = math.nan  # line 6: flagged


def classify(value: float) -> bool:
    UNREACHABLE = 1e308  # line 10: flagged (function-local redefinition)
    return value >= UNREACHABLE

"""RPL006 violation fixture: unordered set iteration reaching results."""


def missing_keys(data: dict, known: set) -> list:
    return [key for key in set(data) - known]  # line 5: flagged (comprehension)


def collect(nodes: list) -> list:
    reached = {node for node in nodes if node > 0}
    ordered = []
    for node in reached:  # line 11: flagged (local set variable)
        ordered.append(node)
    return ordered

"""RPL002 clean fixture: explicit Generator, no global numpy RNG state."""

import numpy as np


def draws(rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, 10, size=3)

"""RPL001 clean fixture: seeded numpy Generator, no stdlib random."""

import numpy as np


def draw(seed: int) -> float:
    rng = np.random.Generator(np.random.PCG64(seed))  # RPL003 territory, not 001
    return float(rng.random())

"""Tests for the adversarial search loop: determinism, budget, elitism.

The contract under test (see :mod:`repro.search.loop`): a search outcome
is a pure function of its :class:`~repro.search.loop.SearchConfig` — same
seed and budget reproduce the same best candidate, lineage for lineage;
different seeds explore different lineages; the elitist pool makes the
best-so-far history non-decreasing; and the evaluation budget is consumed
exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.search import (
    SearchConfig,
    SearchError,
    run_random_baseline,
    run_search,
    score_schedules,
)
from repro.search.mutations import materialize_base
from repro.sim.seeding import derive_seed

pytestmark = pytest.mark.search

_SMOKE = dict(
    algorithm="gathering",
    family="uniform",
    n=12,
    budget=24,
    generation_size=6,
    pool_size=3,
    initial_samples=8,
)


class TestDeterminism:
    def test_same_config_reproduces_everything(self):
        first = run_search(SearchConfig(seed=7, **_SMOKE))
        second = run_search(SearchConfig(seed=7, **_SMOKE))
        assert first.best_ratio == second.best_ratio
        assert first.history == second.history
        assert first.best.lineage == second.best.lineage
        assert first.best.base_seed == second.best.base_seed
        np.testing.assert_array_equal(first.best.schedule.i, second.best.schedule.i)
        np.testing.assert_array_equal(first.best.schedule.j, second.best.schedule.j)

    def test_different_seeds_explore_different_lineages(self):
        first = run_search(SearchConfig(seed=1, **_SMOKE))
        second = run_search(SearchConfig(seed=2, **_SMOKE))
        assert (
            first.best.schedule.digest_key() != second.best.schedule.digest_key()
            or first.best.lineage != second.best.lineage
        )

    def test_larger_budget_never_loses_the_best(self):
        small = run_search(SearchConfig(seed=3, **_SMOKE))
        big_params = dict(_SMOKE)
        big_params["budget"] = _SMOKE["budget"] + 2 * _SMOKE["generation_size"]
        big = run_search(SearchConfig(seed=3, **big_params))
        assert big.best_ratio >= small.best_ratio


class TestLoopShape:
    def test_budget_is_consumed_exactly(self):
        outcome = run_search(SearchConfig(seed=0, **_SMOKE))
        assert outcome.evaluations == _SMOKE["budget"]

    def test_history_is_non_decreasing(self):
        outcome = run_search(SearchConfig(seed=0, **_SMOKE))
        assert all(b >= a for a, b in zip(outcome.history, outcome.history[1:]))

    def test_pool_is_sorted_and_bounded(self):
        outcome = run_search(SearchConfig(seed=0, **_SMOKE))
        assert len(outcome.pool) <= _SMOKE["pool_size"]
        scores = [candidate.score for candidate in outcome.pool]
        assert scores == sorted(scores, reverse=True)
        assert outcome.best is outcome.pool[0]

    def test_best_ratio_is_finite_and_at_least_one(self):
        outcome = run_search(SearchConfig(seed=0, **_SMOKE))
        assert math.isfinite(outcome.best_ratio)
        assert outcome.best_ratio >= 1.0


class TestBaseline:
    def test_baseline_is_deterministic_and_budget_sized(self):
        config = SearchConfig(seed=5, **_SMOKE)
        first = run_random_baseline(config)
        second = run_random_baseline(config)
        assert len(first) == config.budget
        assert [m.competitive_ratio for m in first] == [
            m.competitive_ratio for m in second
        ]

    def test_baseline_seeds_are_disjoint_from_search_bases(self):
        config = SearchConfig(seed=5, **_SMOKE)
        base = {
            derive_seed(
                config.seed, "search-base", config.algorithm, config.family,
                config.n, k,
            )
            for k in range(config.initial_samples)
        }
        baseline = {m.seed for m in run_random_baseline(config)}
        assert base.isdisjoint(baseline)


class TestScoring:
    def test_engines_agree_on_scores(self):
        config = SearchConfig(seed=0, **_SMOKE)
        horizon = config.resolved_horizon()
        seeds = [11, 22, 33]
        schedules = [
            materialize_base("uniform", config.n, seed, horizon)
            for seed in seeds
        ]
        per_engine = {}
        for engine in ("reference", "fast", "vectorized"):
            metrics = score_schedules(
                SearchConfig(seed=0, engine=engine, **_SMOKE), schedules, seeds
            )
            per_engine[engine] = [
                (m.competitive_ratio, m.duration, m.transmissions)
                for m in metrics
            ]
        assert per_engine["fast"] == per_engine["reference"]
        assert per_engine["vectorized"] == per_engine["reference"]

    def test_misaligned_seeds_are_rejected(self):
        config = SearchConfig(seed=0, **_SMOKE)
        with pytest.raises(SearchError, match="align"):
            score_schedules(config, [], [1])


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 1},
            {"budget": 0},
            {"pool_size": 0},
            {"generation_size": 0},
            {"initial_samples": 0},
            {"horizon": 2},
            {"engine": "warp"},
            {"sink": 99},
        ],
    )
    def test_bad_configs_are_rejected(self, overrides):
        params = dict(_SMOKE)
        params.update(overrides)
        config = SearchConfig(seed=0, **params)
        with pytest.raises((SearchError, ValueError)):
            run_search(config)

"""Unit tests for the non-uniform randomized adversary."""

import pytest

from repro.adversaries.nonuniform import (
    NonUniformRandomizedAdversary,
    hub_weights,
    zipf_weights,
)
from repro.algorithms.gathering import Gathering
from repro.core.exceptions import ConfigurationError
from repro.core.execution import Executor
from repro.core.node import NetworkState


@pytest.fixture
def state():
    return NetworkState(list(range(5)), sink=0)


class TestWeightHelpers:
    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(list(range(5)), exponent=1.0)
        values = [weights[i] for i in range(5)]
        assert values == sorted(values, reverse=True)
        assert values[0] == 1.0

    def test_hub_weights(self):
        weights = hub_weights(list(range(4)), hub=2, hub_factor=5.0)
        assert weights[2] == 5.0
        assert weights[0] == 1.0

    def test_hub_must_be_node(self):
        with pytest.raises(ConfigurationError):
            hub_weights([0, 1], hub=9)


class TestNonUniformAdversary:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NonUniformRandomizedAdversary([0])
        with pytest.raises(ConfigurationError):
            NonUniformRandomizedAdversary([0, 1], weights={0: 1.0})
        with pytest.raises(ConfigurationError):
            NonUniformRandomizedAdversary([0, 1], weights={0: 1.0, 1: 0.0})

    def test_uniform_weights_give_uniform_pairs(self, state):
        adversary = NonUniformRandomizedAdversary(list(range(5)), seed=1)
        assert adversary.pair_probability(0, 1) == pytest.approx(0.1)

    def test_pair_probabilities_sum_to_one(self):
        adversary = NonUniformRandomizedAdversary(
            list(range(5)), weights=zipf_weights(list(range(5))), seed=1
        )
        total = sum(
            adversary.pair_probability(u, v)
            for u in range(5)
            for v in range(u + 1, 5)
        )
        assert total == pytest.approx(1.0)

    def test_hub_pairs_drawn_more_often(self, state):
        adversary = NonUniformRandomizedAdversary(
            list(range(5)),
            weights=hub_weights(list(range(5)), hub=0, hub_factor=10.0),
            seed=3,
        )
        counts = {True: 0, False: 0}
        for t in range(4000):
            interaction = adversary.interaction_at(t, state)
            counts[interaction.involves(0)] += 1
        assert counts[True] > 2.5 * counts[False]

    def test_committed_prefix_matches_replay(self, state):
        adversary = NonUniformRandomizedAdversary(list(range(5)), seed=7)
        played = [adversary.interaction_at(t, state).pair for t in range(40)]
        committed = adversary.committed_prefix(40)
        assert [i.pair for i in committed] == played

    def test_next_meeting_consistency(self):
        adversary = NonUniformRandomizedAdversary(
            list(range(6)), weights=zipf_weights(list(range(6))), seed=4
        )
        t = adversary.next_meeting(3, 0, after=0)
        assert t is not None
        sequence = adversary.committed_prefix(t + 1)
        assert sequence[t].pair == frozenset({3, 0})

    def test_seed_reproducibility(self, state):
        a = NonUniformRandomizedAdversary(list(range(5)), seed=9)
        b = NonUniformRandomizedAdversary(list(range(5)), seed=9)
        assert [a.interaction_at(t, state).pair for t in range(30)] == [
            b.interaction_at(t, state).pair for t in range(30)
        ]

    def test_gathering_terminates_under_skew(self):
        nodes = list(range(12))
        adversary = NonUniformRandomizedAdversary(
            nodes, weights=zipf_weights(nodes), seed=2
        )
        executor = Executor(nodes, 0, Gathering())
        result = executor.run(adversary, max_interactions=40_000)
        assert result.terminated

    def test_max_horizon_respected(self, state):
        adversary = NonUniformRandomizedAdversary(
            list(range(5)), seed=1, max_horizon=10
        )
        assert adversary.interaction_at(10, state) is None
        assert adversary.next_meeting(4, 3, after=9) is None

"""End-to-end competitive-ratio integration: engines, paths, store, CLI.

Extends the differential suites to the ratio vertical:

* per-trial ``opt_cost`` / ``competitive_ratio`` are byte-identical across
  the reference/fast/vectorized engines and the serial / ``--workers`` /
  ``--batched`` execution paths (acceptance criterion of the subsystem);
* ratio campaigns persist the capture into shards, round-trip it through
  :func:`~repro.campaign.store.record_to_metrics`, keep pre-ratio spec
  hashes unchanged, and render ratio columns in reports;
* the CLI exposes ``--ratio`` on ``trial``/``sweep`` and the campaign
  subcommands fail with exit 2 and one clear message — never a traceback —
  on missing/empty/corrupt stores (satellite, mirroring the perf-gate
  hardening).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.campaign.report import build_campaign_report
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, spec_from_dict
from repro.campaign.store import (
    CampaignStore,
    metrics_to_record,
    record_to_metrics,
)
from repro.cli import main
from repro.sim.batch import run_sweep_cell, sweep_adversary_batched
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import run_random_trial, sweep_random_adversary


ENGINES = ("reference", "fast", "vectorized")


class TestEngineAndPathIdentity:
    @pytest.mark.parametrize(
        "adversary", ["uniform", "zipf", "hub", "waypoint", "community"]
    )
    def test_per_trial_ratio_identical_across_engines(self, adversary):
        for algorithm_factory in (Gathering, Waiting):
            per_engine = [
                run_random_trial(
                    algorithm_factory(), 14, 5, engine=engine,
                    adversary=adversary, capture_opt=True,
                )
                for engine in ENGINES
            ]
            first = per_engine[0]
            assert first.opt_cost is not None
            for other in per_engine[1:]:
                assert other == first  # includes opt_cost and ratio

    def test_sweep_paths_identical(self):
        kwargs = dict(
            ns=[8, 12], trials=4, master_seed=11, experiment="ratio-paths",
            adversary="uniform", capture_opt=True,
        )
        factory = lambda n: Gathering()
        serial = sweep_random_adversary(factory, engine="reference", **kwargs)
        variants = [
            sweep_random_adversary(factory, engine="fast", **kwargs),
            parallel_sweep(factory, engine="fast", workers=2, **kwargs),
            sweep_adversary_batched(factory, engine="fast", **kwargs),
            sweep_adversary_batched(factory, engine="vectorized", **kwargs),
            parallel_sweep(
                factory, engine="vectorized", workers=2, batched=True, **kwargs
            ),
        ]
        for variant in variants:
            for serial_point, variant_point in zip(serial.points, variant.points):
                assert variant_point.trials == serial_point.trials

    def test_vectorized_fallback_algorithm_captures_too(self):
        # spanning_tree has no decision kernel: the vectorized engine falls
        # back to the fast engine, which must still capture the baseline.
        from repro.algorithms.spanning_tree import SpanningTreeAggregation

        per_engine = [
            run_random_trial(
                SpanningTreeAggregation(), 10, 2, engine=engine,
                capture_opt=True,
            )
            for engine in ENGINES
        ]
        assert per_engine[0].opt_cost is not None
        assert per_engine[1] == per_engine[0]
        assert per_engine[2] == per_engine[0]

    def test_capture_off_leaves_metrics_unchanged(self):
        plain = run_random_trial(Gathering(), 10, 3, engine="fast")
        assert plain.opt_cost is None and plain.competitive_ratio is None
        captured = run_random_trial(
            Gathering(), 10, 3, engine="fast", capture_opt=True
        )
        assert captured.duration == plain.duration
        assert captured.transmissions == plain.transmissions

    def test_ratio_columns_only_when_captured(self):
        factory = lambda n: Gathering()
        plain = sweep_random_adversary(factory, ns=[8], trials=2)
        assert "mean_ratio" not in plain.to_table().columns
        captured = sweep_random_adversary(
            factory, ns=[8], trials=2, capture_opt=True
        )
        table = captured.to_table()
        assert "mean_ratio" in table.columns
        assert all(row["mean_ratio"] >= 1.0 for row in table.rows)


def ratio_spec(**overrides) -> CampaignSpec:
    base = dict(
        name="ratio-test",
        algorithms=("gathering",),
        adversaries=("uniform",),
        ns=(8, 12),
        trials=3,
        engine="vectorized",
        ratio=True,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestRatioCampaigns:
    def test_records_round_trip_and_recompute_ratio(self, tmp_path):
        run_campaign(ratio_spec(), tmp_path / "store")
        store = CampaignStore(tmp_path / "store")
        manifest = store.read_manifest()
        assert manifest["spec"]["ratio"] is True
        for key in manifest["cells"]:
            for record in store.load_cell(key):
                assert "opt_cost" in record and "competitive_ratio" in record
                metrics = record_to_metrics(record)
                assert metrics.opt_cost is not None
                if metrics.terminated:
                    assert metrics.competitive_ratio >= 1.0
                # Round trip: record -> metrics -> record is the identity.
                assert metrics_to_record(
                    metrics, record["trial"], record["adversary"]
                ) == record

    def test_ratio_flag_joins_spec_hash_only_when_enabled(self):
        plain = ratio_spec(ratio=False)
        with_ratio = ratio_spec()
        assert plain.spec_hash() != with_ratio.spec_hash()
        # Pre-ratio hash stability: a ratio=False spec's canonical fields
        # must not mention the field at all.
        assert "ratio" not in plain.result_fields()
        canonical = json.dumps(plain.result_fields(), sort_keys=True)
        assert "ratio" not in canonical

    def test_spec_round_trips_through_dict(self):
        spec = ratio_spec()
        assert spec_from_dict(spec.to_dict()) == spec
        with pytest.raises(Exception, match="boolean"):
            spec_from_dict({**spec.to_dict(), "ratio": "yes"})

    def test_report_has_ratio_tables(self, tmp_path):
        run_campaign(ratio_spec(), tmp_path / "store")
        markdown = build_campaign_report(tmp_path / "store").to_markdown()
        assert "mean_ratio" in markdown
        assert "competitive ratio vs n" in markdown

    def test_plain_campaign_report_unchanged(self, tmp_path):
        run_campaign(ratio_spec(ratio=False), tmp_path / "store")
        markdown = build_campaign_report(tmp_path / "store").to_markdown()
        assert "mean_ratio" not in markdown

    def test_resume_reproduces_ratio_shards(self, tmp_path):
        spec = ratio_spec()
        run_campaign(spec, tmp_path / "fresh")
        run_campaign(spec, tmp_path / "resumed", max_cells=1)
        run_campaign(spec, tmp_path / "resumed", engine="fast")
        fresh = CampaignStore(tmp_path / "fresh")
        resumed = CampaignStore(tmp_path / "resumed")
        for cell in spec.cells():
            assert (
                fresh.shard_path(cell.key).read_bytes()
                == resumed.shard_path(cell.key).read_bytes()
            )


class TestExperimentE25:
    def test_e25_registered_and_reproduces(self):
        from repro.experiments.registry import EXPERIMENTS
        from repro.experiments.ratio import run_ratio_vs_n

        assert "E25" in EXPERIMENTS
        report = run_ratio_vs_n(
            ns=(8, 12), trials=3, algorithms=("gathering",),
            adversaries=("uniform", "zipf"),
        )
        assert report.verdict
        assert report.details["reference_engine_identical"] is True
        # One ratio-vs-n table per adversary family, from the store.
        ratio_tables = [
            table for table in report.tables
            if "competitive ratio vs n" in table.title
        ]
        assert len(ratio_tables) == 2
        for table in ratio_tables:
            assert {"algorithm", "n", "mean_ratio"} <= set(table.columns)
            assert table.rows
        markdown = report.to_markdown()
        assert "mean_ratio" in markdown


class TestCLIRatio:
    def test_trial_ratio_output(self, capsys):
        code = main(
            ["trial", "gathering", "--n", "10", "--seed", "1", "--ratio"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "opt_cost=" in out and "competitive_ratio=" in out

    def test_sweep_ratio_columns(self, capsys):
        code = main(
            [
                "sweep", "gathering", "--ns", "8", "--trials", "2",
                "--engine", "vectorized", "--batched", "--ratio",
            ]
        )
        assert code == 0
        assert "mean_ratio" in capsys.readouterr().out


class TestCampaignCLIErrors:
    """Satellite: report/status on a bad store exit 2 with a clear message."""

    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_report_missing_store(self, capsys, tmp_path):
        code, _, err = self.run_cli(
            capsys, "campaign", "report", str(tmp_path / "nope")
        )
        assert code == 2
        assert "campaign error" in err and "manifest" in err
        assert "Traceback" not in err

    def test_status_empty_directory(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _, err = self.run_cli(capsys, "campaign", "status", str(empty))
        assert code == 2
        assert "campaign error" in err

    def test_report_corrupt_manifest_json(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "manifest.json").write_text("{not json")
        code, _, err = self.run_cli(capsys, "campaign", "report", str(store))
        assert code == 2
        assert "unreadable campaign manifest" in err
        assert "Traceback" not in err

    def test_status_manifest_with_wrong_cells_shape(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "manifest.json").write_text(json.dumps({"cells": []}))
        code, _, err = self.run_cli(capsys, "campaign", "status", str(store))
        assert code == 2
        assert "'cells' must be a table" in err

    def test_status_manifest_with_wrong_spec_shape(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "manifest.json").write_text(
            json.dumps({"cells": {}, "spec": "broken"})
        )
        code, _, err = self.run_cli(capsys, "campaign", "status", str(store))
        assert code == 2
        assert "'spec' must be a table" in err

    def test_run_on_mismatched_store_exits_2(self, capsys, tmp_path):
        spec_file = tmp_path / "spec.toml"
        spec_file.write_text(
            'name = "a"\nalgorithms = ["gathering"]\nns = [8]\ntrials = 1\n'
        )
        store = tmp_path / "store"
        code = main(["campaign", "run", str(spec_file), "--store", str(store)])
        assert code == 0
        spec_file.write_text(
            'name = "a"\nalgorithms = ["gathering"]\nns = [8]\ntrials = 2\n'
        )
        capsys.readouterr()
        code, _, err = self.run_cli(
            capsys, "campaign", "run", str(spec_file), "--store", str(store)
        )
        assert code == 2
        assert "campaign error" in err and "differs" in err

    def test_status_reports_corrupt_shard_without_crashing(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        spec = ratio_spec(ratio=False, ns=(8,), trials=2)
        run_campaign(spec, store_dir)
        cell = spec.cells()[0]
        shard = CampaignStore(store_dir).shard_path(cell.key)
        shard.write_bytes(b"tampered\n")
        code, out, _ = self.run_cli(capsys, "campaign", "status", str(store_dir))
        assert code == 0
        assert "corrupt" in out

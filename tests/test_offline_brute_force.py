"""Unit and cross-check tests for the brute-force offline optimum."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.interaction import InteractionSequence
from repro.graph.generators import uniform_random_sequence
from repro.offline.brute_force import brute_force_opt, brute_force_schedule_exists
from repro.offline.convergecast import opt as fast_opt


class TestBruteForceBasics:
    def test_line_towards_sink(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        assert brute_force_opt(sequence, [0, 1, 2, 3], 0) == 2

    def test_impossible_is_infinite(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        assert math.isinf(brute_force_opt(sequence, [0, 1, 2], 0))

    def test_two_node_instance(self):
        sequence = InteractionSequence.from_pairs([(1, 2), (0, 1)])
        assert brute_force_opt(sequence, [0, 1], 0) == 1

    def test_single_node_trivial(self):
        sequence = InteractionSequence.empty()
        assert brute_force_opt(sequence, [0], 0) == 0

    def test_start_offset(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 0), (1, 0)])
        assert brute_force_opt(sequence, [0, 1, 2], 0, start=0) == 1
        assert brute_force_opt(sequence, [0, 1, 2], 0, start=1) == 2

    def test_schedule_exists_deadline(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (2, 0)])
        assert not brute_force_schedule_exists(sequence, [0, 1, 2], 0, deadline=0)
        assert brute_force_schedule_exists(sequence, [0, 1, 2], 0, deadline=1)

    def test_state_explosion_guard(self):
        sequence = uniform_random_sequence(list(range(12)), 400, seed=0)
        with pytest.raises(MemoryError):
            brute_force_opt(sequence, list(range(12)), 0, max_states=50)


class TestCrossCheckAgainstFastOpt:
    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_on_random_instances(self, seed):
        nodes = list(range(5))
        sequence = uniform_random_sequence(nodes, 35, seed=seed)
        fast = fast_opt(sequence, nodes, 0)
        brute = brute_force_opt(sequence, nodes, 0)
        assert fast == brute or (math.isinf(fast) and math.isinf(brute))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(min_value=3, max_value=5),
        length=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_agrees_property(self, n, length, seed):
        nodes = list(range(n))
        sequence = uniform_random_sequence(nodes, length, seed=seed)
        fast = fast_opt(sequence, nodes, 0)
        brute = brute_force_opt(sequence, nodes, 0)
        if math.isinf(fast) or math.isinf(brute):
            assert math.isinf(fast) and math.isinf(brute)
        else:
            assert fast == brute

"""Differential tests: the fast engine must equal the reference executor.

The reference :class:`~repro.core.execution.Executor` is the semantics
oracle.  For every registered algorithm, several seeds, and every supported
interaction-source shape (committed finite sequence, lazy randomized
adversary, generic oblivious provider), :class:`~repro.core.fast_execution.
FastExecutor` must produce an identical :class:`ExecutionResult` — including
the transmission log, transmission for transmission.  The parallel sweep
runner must likewise reproduce the serial sweep bit for bit.
"""

import math

import pytest

from repro.adversaries.base import EventuallyPeriodicAdversary
from repro.adversaries.randomized import RandomizedAdversary
from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.algorithm import registry
from repro.core.data import MAX, MIN
from repro.core.exceptions import ModelViolationError
from repro.core.execution import Executor
from repro.core.fast_execution import FastExecutor
from repro.core.interaction import InteractionSequence
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import (
    execute_random_trial,
    resolve_engine,
    run_random_trial,
    sweep_random_adversary,
)

SEEDS = (0, 1, 2, 3, 4)
N = 14


def make_algorithm(name: str, n: int):
    """Instantiate a registered algorithm with deterministic parameters."""
    kwargs = {}
    if name == "waiting_greedy":
        kwargs["tau"] = optimal_tau(n)
    elif name in ("coin_flip_gathering", "random_receiver"):
        kwargs["seed"] = 20_16
    return registry.create(name, **kwargs)


class TestEngineResolution:
    def test_known_engines(self):
        assert resolve_engine("reference") is Executor
        assert resolve_engine("fast") is FastExecutor

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("warp")
        with pytest.raises(ValueError):
            run_random_trial(Gathering(), 8, seed=0, engine="warp")


class TestDifferentialRandomTrials:
    """Fast vs reference on the full randomized-adversary trial pipeline.

    ``execute_random_trial`` routes committed-knowledge algorithms through a
    finite sequence and the others through the lazy adversary, so iterating
    over the whole registry covers both source shapes.
    """

    @pytest.mark.parametrize("name", sorted(registry.names()))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_engines_agree(self, name, seed):
        reference, _ = execute_random_trial(
            make_algorithm(name, N), N, seed, engine="reference"
        )
        fast, _ = execute_random_trial(
            make_algorithm(name, N), N, seed, engine="fast"
        )
        assert fast == reference

    def test_engines_agree_on_metrics(self):
        for seed in SEEDS:
            reference = run_random_trial(Gathering(), N, seed, engine="reference")
            fast = run_random_trial(Gathering(), N, seed, engine="fast")
            assert fast == reference


class TestDifferentialSources:
    def test_committed_sequence_source(self):
        for seed in SEEDS:
            adversary = RandomizedAdversary(list(range(10)), seed=seed)
            sequence = adversary.committed_prefix(600)
            reference = Executor(list(range(10)), 0, Gathering()).run(sequence)
            fast = FastExecutor(list(range(10)), 0, Gathering()).run(sequence)
            assert fast == reference

    def test_lazy_adversary_source(self):
        for seed in SEEDS:
            nodes = list(range(10))
            reference = Executor(nodes, 0, Waiting()).run(
                RandomizedAdversary(nodes, seed=seed), max_interactions=4000
            )
            fast = FastExecutor(nodes, 0, Waiting()).run(
                RandomizedAdversary(nodes, seed=seed), max_interactions=4000
            )
            assert fast == reference

    def test_generic_provider_source(self):
        adversary = lambda: EventuallyPeriodicAdversary(
            prefix=[(1, 2), (3, 4)], cycle=[(2, 3), (1, 0), (2, 0), (4, 0), (3, 0)]
        )
        nodes = list(range(5))
        reference = Executor(nodes, 0, Gathering()).run(
            adversary(), max_interactions=50
        )
        fast = FastExecutor(nodes, 0, Gathering()).run(
            adversary(), max_interactions=50
        )
        assert fast == reference

    def test_exhausted_finite_provider(self):
        # A provider that runs dry before the horizon: interactions_used and
        # remaining_owners must match the reference exactly.
        sequence = InteractionSequence.from_pairs([(1, 2), (3, 4)])
        nodes = list(range(5))
        reference = Executor(nodes, 0, Waiting()).run(sequence, max_interactions=100)
        fast = FastExecutor(nodes, 0, Waiting()).run(sequence, max_interactions=100)
        assert fast == reference
        assert not fast.terminated
        assert fast.remaining_owners == reference.remaining_owners

    def test_non_default_aggregation_and_payloads(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (3, 0)])
        nodes = [0, 1, 2, 3]
        payloads = {0: 5.0, 1: -2.0, 2: 7.5, 3: 0.25}
        for aggregation in (MIN, MAX):
            reference = Executor(nodes, 0, Gathering(), aggregation=aggregation).run(
                sequence, initial_payloads=payloads
            )
            fast = FastExecutor(nodes, 0, Gathering(), aggregation=aggregation).run(
                sequence, initial_payloads=payloads
            )
            assert fast == reference
            assert fast.sink_payload == reference.sink_payload


class TestFastEngineModelEnforcement:
    def test_sink_sender_rejected(self):
        class SinkSender(Gathering):
            name = "gathering"

            def decide(self, first, second, time):
                # Receiver is whichever node is NOT the sink: sink must send.
                return second.id if first.is_sink else first.id

        sequence = InteractionSequence.from_pairs([(0, 1)])
        with pytest.raises(ModelViolationError):
            FastExecutor([0, 1], 0, SinkSender()).run(sequence)

    def test_foreign_receiver_rejected(self):
        class Outsider(Gathering):
            name = "gathering"

            def decide(self, first, second, time):
                return 99

        sequence = InteractionSequence.from_pairs([(1, 2)])
        with pytest.raises(ModelViolationError):
            FastExecutor([0, 1, 2], 0, Outsider()).run(sequence)

    def test_constructor_validations_match_reference(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        with pytest.raises(ModelViolationError):
            FastExecutor([0, 1], 9, Gathering()).run(sequence)
        with pytest.raises(ModelViolationError):
            FastExecutor([0], 0, Gathering()).run(sequence)


class TestParallelSweepDeterminism:
    def test_parallel_reproduces_serial_sweep(self):
        factory = lambda n: Gathering()
        serial = sweep_random_adversary(
            factory, ns=[8, 12], trials=4, master_seed=11, engine="reference"
        )
        for engine in ("reference", "fast"):
            for workers in (1, 3):
                sweep = parallel_sweep(
                    factory,
                    ns=[8, 12],
                    trials=4,
                    master_seed=11,
                    engine=engine,
                    workers=workers,
                )
                assert sweep.algorithm == serial.algorithm
                assert sweep.ns == serial.ns
                for point, expected in zip(sweep.points, serial.points):
                    assert point.trials == expected.trials

    def test_parallel_sweep_with_knowledge_algorithm(self):
        factory = lambda n: WaitingGreedy(tau=optimal_tau(n))
        serial = sweep_random_adversary(
            factory, ns=[10], trials=3, master_seed=2, engine="fast"
        )
        parallel = parallel_sweep(
            factory, ns=[10], trials=3, master_seed=2, engine="fast", workers=2
        )
        assert parallel.points[0].trials == serial.points[0].trials

    def test_empty_ns_rejected(self):
        with pytest.raises(ValueError):
            sweep_random_adversary(lambda n: Gathering(), ns=[], trials=3)
        with pytest.raises(ValueError):
            parallel_sweep(lambda n: Gathering(), ns=[], trials=3, workers=2)

    def test_invalid_trials_and_workers_rejected(self):
        with pytest.raises(ValueError):
            sweep_random_adversary(lambda n: Gathering(), ns=[8], trials=0)
        with pytest.raises(ValueError):
            parallel_sweep(lambda n: Gathering(), ns=[8], trials=3, workers=0)

    def test_too_small_n_rejected_before_running(self):
        # n < 2 used to crash mid-sweep inside the adversary constructor.
        with pytest.raises(ValueError):
            sweep_random_adversary(lambda n: Gathering(), ns=[1, 8], trials=2)
        with pytest.raises(ValueError):
            parallel_sweep(lambda n: Gathering(), ns=[0], trials=2, workers=2)


class TestAdversaryBatching:
    def test_draw_block_matches_committed_stream(self):
        a = RandomizedAdversary(list(range(6)), seed=42)
        b = RandomizedAdversary(list(range(6)), seed=42)
        prefix = a.committed_prefix(100)
        # Query pattern must not matter: b is grown by oracle queries.
        b.next_meeting(1, 2, after=0)
        assert b.committed_prefix(100) == prefix

    def test_committed_index_block_truncates_at_horizon(self):
        adversary = RandomizedAdversary([0, 1, 2], seed=1, max_horizon=10)
        i, j = adversary.committed_index_block(0, 50)
        assert len(i) == len(j) == 10
        i, j = adversary.committed_index_block(10, 50)
        assert len(i) == 0

    def test_duration_independent_of_commit_pattern(self):
        # Growing the committed future through meetTime oracle queries must
        # not change what the executor replays.
        n, seed = 12, 9
        metrics_lazy = run_random_trial(
            WaitingGreedy(tau=optimal_tau(n)), n, seed, engine="fast"
        )
        metrics_reference = run_random_trial(
            WaitingGreedy(tau=optimal_tau(n)), n, seed, engine="reference"
        )
        assert metrics_lazy == metrics_reference
        assert metrics_lazy.terminated
        assert not math.isinf(metrics_lazy.duration)

    def test_draw_block_commits_its_draws(self):
        # A direct draw_block call must never desynchronise the RNG stream
        # from the committed future: what it returns is what gets replayed.
        adversary = RandomizedAdversary(list(range(5)), seed=3)
        i, j = adversary.draw_block(7)
        assert adversary.committed_length == 7
        replay = adversary.committed_prefix(7)
        for t in range(7):
            assert replay[t].pair == frozenset(
                (adversary.nodes()[int(i[t])], adversary.nodes()[int(j[t])])
            )
        # Oracle answers stay consistent with the committed prefix.
        t = adversary.next_meeting(0, 1, after=-1)
        if t is not None and t < 7:
            assert replay[t].pair == frozenset((0, 1))

"""Unit tests for interaction-sequence generators."""

import random

import networkx as nx
import pytest

from repro.core.exceptions import ConfigurationError
from repro.graph.generators import (
    all_pairs,
    default_nodes,
    edge_markov_sequence,
    line_sequence,
    periodic_sequence,
    random_tree,
    ring_sequence,
    round_robin_sequence,
    sequence_with_footprint,
    star_with_sink_sequence,
    tree_recurrent_sequence,
    uniform_random_sequence,
)


class TestBasics:
    def test_default_nodes(self):
        assert default_nodes(4) == [0, 1, 2, 3]

    def test_default_nodes_too_small(self):
        with pytest.raises(ConfigurationError):
            default_nodes(1)

    def test_all_pairs_count(self):
        assert len(all_pairs(range(6))) == 15


class TestUniformRandom:
    def test_length_and_node_coverage(self):
        sequence = uniform_random_sequence(list(range(5)), 200, seed=0)
        assert len(sequence) == 200
        assert sequence.nodes() <= set(range(5))

    def test_seed_reproducibility(self):
        a = uniform_random_sequence(list(range(6)), 50, seed=7)
        b = uniform_random_sequence(list(range(6)), 50, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = uniform_random_sequence(list(range(6)), 50, seed=7)
        b = uniform_random_sequence(list(range(6)), 50, seed=8)
        assert a != b

    def test_explicit_rng_used(self):
        rng = random.Random(3)
        a = uniform_random_sequence(list(range(6)), 20, rng=rng)
        rng = random.Random(3)
        b = uniform_random_sequence(list(range(6)), 20, rng=rng)
        assert a == b

    def test_roughly_uniform_pair_distribution(self):
        nodes = list(range(5))
        sequence = uniform_random_sequence(nodes, 5000, seed=1)
        counts = {}
        for interaction in sequence:
            counts[interaction.pair] = counts.get(interaction.pair, 0) + 1
        expected = 5000 / 10
        assert all(0.6 * expected < count < 1.4 * expected for count in counts.values())

    def test_single_node_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_random_sequence([0], 10, seed=0)


class TestDeterministicPatterns:
    def test_round_robin_footprint_complete(self):
        sequence = round_robin_sequence(list(range(5)), rounds=2)
        assert len(sequence) == 20
        assert len(sequence.footprint_edges()) == 10

    def test_periodic_sequence(self):
        sequence = periodic_sequence([(0, 1), (1, 2)], repetitions=3)
        assert len(sequence) == 6
        assert sequence[4].pair == frozenset({0, 1})

    def test_star_with_sink(self):
        sequence = star_with_sink_sequence(list(range(4)), sink=0, rounds=2)
        assert len(sequence) == 6
        assert all(interaction.involves(0) for interaction in sequence)

    def test_line_sequence_forward(self):
        sequence = line_sequence([0, 1, 2, 3], rounds=1)
        assert sequence.pairs == [(0, 1), (1, 2), (2, 3)]

    def test_line_sequence_reverse(self):
        sequence = line_sequence([0, 1, 2, 3], rounds=1, reverse=True)
        assert sequence.pairs == [(2, 3), (1, 2), (0, 1)]

    def test_ring_sequence(self):
        sequence = ring_sequence([0, 1, 2, 3], rounds=1)
        assert len(sequence) == 4
        assert frozenset({3, 0}) in sequence.footprint_edges()


class TestTreeGenerators:
    def test_random_tree_is_tree(self):
        tree = random_tree(12, seed=3)
        assert nx.is_tree(tree)
        assert tree.number_of_nodes() == 12

    def test_random_tree_two_nodes(self):
        tree = random_tree(2, seed=0)
        assert list(tree.edges()) == [(0, 1)]

    def test_random_tree_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            random_tree(1)

    def test_tree_recurrent_sequence_bottom_up_single_round_convergecast(self):
        tree = nx.balanced_tree(2, 2)
        sequence = tree_recurrent_sequence(tree, rounds=1, order="bottom_up", root=0)
        # Bottom-up order lets data flow to the root within a single round,
        # so the offline optimum is finite on just one round.
        from repro.offline.convergecast import opt

        assert opt(sequence, list(tree.nodes()), 0) < len(sequence)

    def test_tree_recurrent_sequence_requires_tree(self):
        graph = nx.cycle_graph(4)
        with pytest.raises(ConfigurationError):
            tree_recurrent_sequence(graph, rounds=1, order="sorted")

    def test_tree_recurrent_sequence_bottom_up_requires_root(self):
        tree = nx.path_graph(4)
        with pytest.raises(ConfigurationError):
            tree_recurrent_sequence(tree, rounds=1, order="bottom_up")

    def test_sequence_with_footprint(self):
        graph = nx.cycle_graph(6)
        sequence = sequence_with_footprint(graph, rounds=3, seed=0)
        assert len(sequence) == 18
        assert sequence.footprint_edges() == {
            frozenset(edge) for edge in graph.edges()
        }

    def test_sequence_with_footprint_requires_edges(self):
        with pytest.raises(ConfigurationError):
            sequence_with_footprint(nx.empty_graph(4), rounds=1)


class TestEdgeMarkov:
    def test_length_and_persistence_validation(self):
        sequence = edge_markov_sequence(list(range(6)), 100, persistence=0.5, seed=0)
        assert len(sequence) == 100
        with pytest.raises(ConfigurationError):
            edge_markov_sequence(list(range(6)), 10, persistence=1.5)

    def test_high_persistence_shares_endpoints(self):
        sequence = edge_markov_sequence(list(range(10)), 500, persistence=1.0, seed=1)
        shared = 0
        for previous, current in zip(sequence, list(sequence)[1:]):
            if previous.pair & current.pair:
                shared += 1
        assert shared == len(sequence) - 1

    def test_zero_persistence_matches_uniform_independence(self):
        sequence = edge_markov_sequence(list(range(10)), 500, persistence=0.0, seed=1)
        shared = sum(
            1
            for previous, current in zip(sequence, list(sequence)[1:])
            if previous.pair & current.pair
        )
        # Under uniformity, consecutive interactions share an endpoint with
        # probability well below 1/2 for 10 nodes.
        assert shared < 0.55 * len(sequence)

"""Unit tests for the spanning-tree aggregation algorithm (Theorems 4 and 5)."""

import networkx as nx
import pytest

from repro.algorithms.spanning_tree import SpanningTreeAggregation, build_bfs_tree
from repro.core.cost import cost_of_result
from repro.core.execution import Executor
from repro.core.interaction import InteractionSequence
from repro.graph.generators import random_tree, sequence_with_footprint, tree_recurrent_sequence
from repro.knowledge import KnowledgeBundle, UnderlyingGraphKnowledge


def run_on_tree(tree, sequence, sink=0):
    nodes = list(tree.nodes())
    knowledge = KnowledgeBundle(
        UnderlyingGraphKnowledge(nodes, edges=list(tree.edges()))
    )
    executor = Executor(nodes, sink, SpanningTreeAggregation(), knowledge=knowledge)
    result = executor.run(sequence)
    return nodes, result


class TestBFSTree:
    def test_path_graph_tree(self):
        graph = nx.path_graph(4)
        parent, children = build_bfs_tree(graph, root=0)
        assert parent[1] == 0
        assert parent[2] == 1
        assert parent[3] == 2
        assert children[0] == {1}
        assert children[3] == set()

    def test_star_graph_tree(self):
        graph = nx.star_graph(4)  # center 0
        parent, children = build_bfs_tree(graph, root=0)
        assert all(parent[i] == 0 for i in range(1, 5))
        assert children[0] == {1, 2, 3, 4}

    def test_deterministic_neighbour_order(self):
        graph = nx.cycle_graph(4)
        parent_a, _ = build_bfs_tree(graph, root=0)
        parent_b, _ = build_bfs_tree(graph, root=0)
        assert parent_a == parent_b

    def test_unreachable_nodes_excluded(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(5)
        parent, children = build_bfs_tree(graph, root=0)
        assert 5 not in parent


class TestOnTreeFootprints:
    def test_terminates_and_is_optimal_on_path(self):
        tree = nx.path_graph(5)
        sequence = tree_recurrent_sequence(tree, rounds=6, order="sorted")
        nodes, result = run_on_tree(tree, sequence)
        assert result.terminated
        breakdown = cost_of_result(result, sequence, nodes, 0)
        assert breakdown.cost == 1.0

    def test_terminates_and_is_optimal_on_random_trees(self):
        for seed in range(4):
            tree = random_tree(9, seed=seed)
            sequence = sequence_with_footprint(tree, rounds=10, seed=seed)
            nodes, result = run_on_tree(tree, sequence)
            assert result.terminated
            breakdown = cost_of_result(result, sequence, nodes, 0)
            assert breakdown.cost == 1.0

    def test_single_round_bottom_up_suffices(self):
        tree = nx.balanced_tree(2, 3)
        sequence = tree_recurrent_sequence(tree, rounds=1, order="bottom_up", root=0)
        nodes, result = run_on_tree(tree, sequence)
        assert result.terminated
        assert result.duration == len(sequence)

    def test_waits_for_children_before_transmitting(self):
        # Path 0-1-2: if (1, 0) appears before (2, 1), node 1 must not send
        # yet; it sends at its second opportunity.
        tree = nx.path_graph(3)
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 1), (1, 0)])
        nodes, result = run_on_tree(tree, sequence)
        assert result.terminated
        senders = [t.sender for t in result.transmissions]
        times = [t.time for t in result.transmissions]
        assert senders == [2, 1]
        assert times == [1, 2]


class TestOnNonTreeFootprints:
    def test_terminates_on_recurrent_cycle(self):
        cycle = nx.cycle_graph(6)
        sequence = sequence_with_footprint(cycle, rounds=12, seed=0)
        nodes, result = run_on_tree(cycle, sequence)
        assert result.terminated

    def test_cost_can_exceed_one_on_non_tree(self):
        from repro.adversaries.constructions import theorem4_delaying_sequence

        nodes, sequence = theorem4_delaying_sequence(6, delay_rounds=10)
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(nodes, sequence=sequence)
        )
        executor = Executor(nodes, 0, SpanningTreeAggregation(), knowledge=knowledge)
        result = executor.run(sequence)
        assert result.terminated
        breakdown = cost_of_result(result, sequence, nodes, 0)
        assert breakdown.cost > 1.0

    def test_state_resets_between_runs(self):
        tree = nx.path_graph(4)
        sequence = tree_recurrent_sequence(tree, rounds=5, order="sorted")
        algorithm = SpanningTreeAggregation()
        nodes = list(tree.nodes())
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(nodes, edges=list(tree.edges()))
        )
        executor = Executor(nodes, 0, algorithm, knowledge=knowledge)
        first = executor.run(sequence)
        second = executor.run(sequence)
        assert first.terminated and second.terminated
        assert first.duration == second.duration

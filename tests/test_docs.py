"""Documentation health: links, code blocks, docstrings, help strings.

Keeps the ``docs/`` tree honest from inside the tier-1 suite (the same
checks run standalone via ``tools/check_docs.py`` in the CI docs job):
broken intra-repo links and unparseable example code fail tests, every
public module states its role in a module docstring, and the CLI help
mentions the knob-composition rules the docs promise it does.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


class TestDocsTree:
    def test_expected_docs_exist(self):
        for name in ("architecture.md", "engines.md", "scenarios.md",
                     "campaigns.md", "observability.md"):
            assert (REPO_ROOT / "docs" / name).is_file(), name
        assert (REPO_ROOT / "README.md").is_file()

    @pytest.mark.parametrize(
        "path", check_docs.doc_files(), ids=lambda p: p.name
    )
    def test_links_resolve(self, path):
        assert check_docs.check_links(path) == []

    @pytest.mark.parametrize(
        "path", check_docs.doc_files(), ids=lambda p: p.name
    )
    def test_code_blocks_parse(self, path):
        assert check_docs.check_code_blocks(path) == []

    def test_checker_cli_passes_on_this_repo(self, capsys):
        assert check_docs.main() == 0
        assert "docs OK" in capsys.readouterr().out

    def test_checker_flags_broken_link_and_bad_block(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text(
            "[gone](missing.md)\n\n```python\ndef broken(:\n```\n"
            "\n```bash\nif then fi\n```\n"
        )
        # check_links reports relative to the repo root, so the fixture
        # file must live under it for the relative_to call to work.
        bad_in_repo = REPO_ROOT / "docs" / "_pytest_tmp_bad.md"
        bad_in_repo.write_text(bad.read_text())
        try:
            links = check_docs.check_links(bad_in_repo)
            blocks = check_docs.check_code_blocks(bad_in_repo)
        finally:
            bad_in_repo.unlink()
        assert len(links) == 1 and "broken link" in links[0]
        assert len(blocks) == 2


class TestModuleDocstrings:
    """Docstring audit: every public module states its role (satellite)."""

    PACKAGES = (
        "adversaries", "core", "sim", "campaign", "ratio", "search", "obs"
    )

    def modules(self):
        for package in self.PACKAGES:
            for path in sorted(
                (REPO_ROOT / "src" / "repro" / package).glob("*.py")
            ):
                yield path

    def test_every_module_has_a_meaningful_docstring(self):
        missing = []
        for path in self.modules():
            tree = ast.parse(path.read_text(encoding="utf-8"))
            docstring = ast.get_docstring(tree)
            if not docstring or len(docstring.strip()) < 30:
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert missing == [], f"modules without a real docstring: {missing}"

    def test_package_docstrings_state_invariants(self):
        for package in (
            "adversaries", "sim", "campaign", "ratio", "search", "obs"
        ):
            source = (
                REPO_ROOT / "src" / "repro" / package / "__init__.py"
            ).read_text(encoding="utf-8")
            docstring = ast.get_docstring(ast.parse(source)) or ""
            assert "nvariant" in docstring, (
                f"repro.{package} docstring should state its invariants"
            )


class TestCLIHelp:
    """The --help audit: knob composition rules are spelled out."""

    def test_campaign_subcommand_registered(self):
        from repro.cli import build_parser

        help_text = build_parser().format_help()
        assert "campaign" in help_text

    def test_sweep_help_mentions_composition(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        help_text = capsys.readouterr().out
        assert "--batched" in help_text
        assert "--block-size" in help_text
        assert "--workers" in help_text
        assert "whole cells" in help_text  # composition rule wording

    def test_campaign_run_help_mentions_resume_and_engine(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["campaign", "run", "--help"])
        help_text = capsys.readouterr().out
        assert "resume" in help_text or "resumed" in help_text
        assert "engine-invariant" in help_text

    def test_cli_module_docstring_documents_composition(self):
        import repro.cli

        assert "Knob composition" in repro.cli.__doc__
        assert "campaign" in repro.cli.__doc__

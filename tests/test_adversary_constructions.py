"""Unit tests for the impossibility-proof adversary constructions."""

import math

import pytest

from repro.adversaries.constructions import (
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    theorem4_delaying_sequence,
)
from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.algorithms.random_baseline import CoinFlipGathering
from repro.algorithms.spanning_tree import SpanningTreeAggregation
from repro.core.cost import convergecast_milestones
from repro.core.execution import Executor, RecordingProvider
from repro.core.exceptions import ConfigurationError
from repro.knowledge import KnowledgeBundle, UnderlyingGraphKnowledge


HORIZON = 600


def run_against(adversary, algorithm, nodes, sink, knowledge=None, horizon=HORIZON):
    recording = RecordingProvider(adversary)
    executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
    result = executor.run(recording, max_interactions=horizon)
    return result, recording.recorded_sequence()


class TestTheorem1:
    @pytest.mark.parametrize("algorithm_factory", [Gathering, Waiting])
    def test_starves_deterministic_algorithms(self, algorithm_factory):
        adversary = Theorem1Adversary()
        result, sequence = run_against(
            adversary, algorithm_factory(), adversary.nodes(), adversary.sink
        )
        assert not result.terminated

    def test_offline_convergecasts_keep_fitting(self):
        adversary = Theorem1Adversary()
        result, sequence = run_against(
            adversary, Gathering(), adversary.nodes(), adversary.sink
        )
        milestones = convergecast_milestones(
            sequence, adversary.nodes(), adversary.sink, max_milestones=50
        )
        finite = [m for m in milestones if not math.isinf(m)]
        assert len(finite) >= 10

    def test_starves_randomized_oblivious_algorithm(self):
        adversary = Theorem1Adversary()
        result, _ = run_against(
            adversary,
            CoinFlipGathering(p=0.7, seed=3),
            adversary.nodes(),
            adversary.sink,
        )
        assert not result.terminated

    def test_reset_clears_state(self):
        adversary = Theorem1Adversary()
        run_against(adversary, Gathering(), adversary.nodes(), adversary.sink)
        adversary.reset()
        result, _ = run_against(
            adversary, Waiting(), adversary.nodes(), adversary.sink
        )
        assert not result.terminated


class TestTheorem3:
    def test_starves_spanning_tree_with_gbar_knowledge(self):
        adversary = Theorem3Adversary()
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(
                adversary.nodes(), edges=adversary.underlying_graph_edges()
            )
        )
        result, sequence = run_against(
            adversary,
            SpanningTreeAggregation(),
            adversary.nodes(),
            adversary.sink,
            knowledge=knowledge,
        )
        assert not result.terminated
        milestones = convergecast_milestones(
            sequence, adversary.nodes(), adversary.sink, max_milestones=50
        )
        assert sum(1 for m in milestones if not math.isinf(m)) >= 5

    def test_starves_gathering(self):
        adversary = Theorem3Adversary()
        result, _ = run_against(
            adversary, Gathering(), adversary.nodes(), adversary.sink
        )
        assert not result.terminated

    def test_underlying_graph_is_the_four_cycle(self):
        adversary = Theorem3Adversary()
        edges = {frozenset(e) for e in adversary.underlying_graph_edges()}
        assert len(edges) == 4
        assert frozenset({"u1", "u3"}) not in edges
        assert frozenset({"u2", "s"}) not in edges


class TestTheorem2:
    def test_construction_requires_enough_nodes(self):
        with pytest.raises(ConfigurationError):
            Theorem2Construction(n=3).build(Gathering)

    def test_blocks_gathering(self):
        construction = Theorem2Construction(n=8, estimation_trials=30, seed=1)
        adversary = construction.build(Gathering)
        executor = Executor(construction.node_names(), "s", Gathering())
        result = executor.run(adversary, max_interactions=80 * 8)
        assert not result.terminated

    def test_blocks_coin_flip_most_of_the_time(self):
        construction = Theorem2Construction(n=10, estimation_trials=60, seed=2)
        adversary = construction.build(lambda: CoinFlipGathering(p=0.5, seed=5))
        failures = 0
        trials = 10
        for trial in range(trials):
            algorithm = CoinFlipGathering(p=0.5, seed=100 + trial)
            executor = Executor(construction.node_names(), "s", algorithm)
            result = executor.run(adversary, max_interactions=100 * 10)
            if not result.terminated:
                failures += 1
        assert failures >= 8

    def test_offline_still_possible_on_construction(self):
        construction = Theorem2Construction(n=8, estimation_trials=30, seed=1)
        adversary = construction.build(Gathering)
        sequence = adversary.committed_prefix(60 * 8)
        milestones = convergecast_milestones(
            sequence, construction.node_names(), "s", max_milestones=20
        )
        assert sum(1 for m in milestones if not math.isinf(m)) >= 3

    def test_blocking_cycle_structure(self):
        construction = Theorem2Construction(n=6)
        cycle = construction.blocking_cycle(d=2)
        assert ("u1", "s") in cycle or ("s", "u1") in [
            tuple(reversed(pair)) for pair in cycle
        ]
        assert len(cycle) == 5


class TestTheorem4Sequence:
    def test_footprint_is_cycle(self):
        nodes, sequence = theorem4_delaying_sequence(6, delay_rounds=4)
        assert len(sequence.footprint_edges()) == 6

    def test_needs_four_nodes(self):
        with pytest.raises(ConfigurationError):
            theorem4_delaying_sequence(3, delay_rounds=2)

    def test_withheld_edge_appears_once(self):
        n = 6
        nodes, sequence = theorem4_delaying_sequence(n, delay_rounds=5)
        assert sequence.count_pair(n - 1, 0) == 1

    def test_offline_convergecast_per_round(self):
        n = 6
        nodes, sequence = theorem4_delaying_sequence(n, delay_rounds=5)
        milestones = convergecast_milestones(sequence, nodes, 0, max_milestones=10)
        finite = [m for m in milestones if not math.isinf(m)]
        assert len(finite) >= 5

"""Unit tests for the offline optimum (convergecast) computations."""

import math

import pytest

from repro.core.exceptions import InvalidScheduleError
from repro.core.interaction import InteractionSequence
from repro.graph.generators import uniform_random_sequence
from repro.offline.broadcast import (
    broadcast_completion_time,
    broadcast_informed_sets,
    informed_count_after,
)
from repro.offline.convergecast import (
    INFINITY,
    build_convergecast_schedule,
    convergecast_possible,
    foremost_arrival_times,
    opt,
    successive_convergecasts,
)
from repro.offline.schedule import validate_schedule


class TestForemostArrivals:
    def test_line_towards_sink(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        arrivals = foremost_arrival_times(sequence, [0, 1, 2, 3], 0)
        assert arrivals[3] == 2
        assert arrivals[2] == 2
        assert arrivals[1] == 2

    def test_line_away_from_sink_unreachable(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 1), (3, 2)])
        arrivals = foremost_arrival_times(sequence, [0, 1, 2, 3], 0)
        assert arrivals[1] == 0
        assert math.isinf(arrivals[2])
        assert math.isinf(arrivals[3])

    def test_start_offset(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (1, 0), (2, 1)])
        arrivals = foremost_arrival_times(sequence, [0, 1, 2], 0, start=1)
        assert arrivals[1] == 1
        assert math.isinf(arrivals[2])

    def test_direct_meeting(self):
        sequence = InteractionSequence.from_pairs([(2, 0), (1, 0)])
        arrivals = foremost_arrival_times(sequence, [0, 1, 2], 0)
        assert arrivals[2] == 0
        assert arrivals[1] == 1


class TestOpt:
    def test_opt_on_line(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        assert opt(sequence, [0, 1, 2, 3], 0) == 2

    def test_opt_infinite_when_impossible(self):
        sequence = InteractionSequence.from_pairs([(1, 0)])
        assert math.isinf(opt(sequence, [0, 1, 2], 0))

    def test_opt_beyond_sequence_is_infinite(self):
        sequence = InteractionSequence.from_pairs([(1, 0)])
        assert math.isinf(opt(sequence, [0, 1], 0, start=5))

    def test_opt_two_nodes(self):
        sequence = InteractionSequence.from_pairs([(1, 2), (1, 0)])
        assert opt(sequence, [0, 1], 0) == 1

    def test_opt_uses_only_window_from_start(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (2, 1), (1, 0)])
        assert opt(sequence, [0, 1, 2], 0) == 1
        assert opt(sequence, [0, 1, 2], 0, start=1) == 3
        assert opt(sequence, [0, 1, 2], 0, start=2) == 3

    def test_convergecast_possible_window(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (2, 0)])
        assert convergecast_possible(sequence, [0, 1, 2], 0, start=0, end=1)
        assert not convergecast_possible(sequence, [0, 1, 2], 0, start=1, end=1)
        assert convergecast_possible(sequence, [0, 1, 2], 0, start=1)


class TestScheduleConstruction:
    def test_schedule_matches_opt_on_line(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        schedule = build_convergecast_schedule(sequence, [0, 1, 2, 3], 0)
        assert schedule.completion_time == opt(sequence, [0, 1, 2, 3], 0)
        assert validate_schedule(schedule, sequence, [0, 1, 2, 3], 0) == 2

    def test_schedule_every_node_transmits_once(self):
        sequence = uniform_random_sequence(list(range(7)), 300, seed=5)
        schedule = build_convergecast_schedule(sequence, list(range(7)), 0)
        assert schedule.senders() == set(range(1, 7))
        validate_schedule(schedule, sequence, list(range(7)), 0)

    def test_schedule_completion_equals_opt_on_random_sequences(self):
        for seed in range(5):
            sequence = uniform_random_sequence(list(range(6)), 200, seed=seed)
            optimum = opt(sequence, list(range(6)), 0)
            schedule = build_convergecast_schedule(sequence, list(range(6)), 0)
            assert schedule.completion_time == optimum

    def test_schedule_raises_when_impossible(self):
        sequence = InteractionSequence.from_pairs([(1, 0)])
        with pytest.raises(InvalidScheduleError):
            build_convergecast_schedule(sequence, [0, 1, 2], 0)

    def test_schedule_with_start_offset(self):
        sequence = InteractionSequence.from_pairs(
            [(2, 1), (1, 0), (2, 1), (1, 0), (2, 0)]
        )
        schedule = build_convergecast_schedule(sequence, [0, 1, 2], 0, start=2)
        assert schedule.start == 2
        assert all(t.time >= 2 for t in schedule.transmissions)
        validate_schedule(schedule, sequence, [0, 1, 2], 0)


class TestSuccessiveConvergecasts:
    def test_two_convergecasts(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (2, 1), (1, 0)])
        values = successive_convergecasts(sequence, [0, 1, 2], 0, count=3)
        assert values[0] == 1
        assert values[1] == 3
        assert math.isinf(values[2])

    def test_unbounded_count_terminates(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0)] * 5)
        values = successive_convergecasts(sequence, [0, 1, 2], 0)
        finite = [v for v in values if not math.isinf(v)]
        assert len(finite) == 5


class TestBroadcast:
    def test_flooding_on_line(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert broadcast_completion_time(sequence, 0, [0, 1, 2, 3]) == 2

    def test_flooding_incomplete(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        assert math.isinf(broadcast_completion_time(sequence, 0, [0, 1, 2]))

    def test_informed_sets_growth(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (2, 3), (1, 2)])
        history = broadcast_informed_sets(sequence, 0)
        assert history[0] == {0}
        assert history[1] == {0, 1}
        assert history[2] == {0, 1}
        assert history[3] == {0, 1, 2}

    def test_informed_count_after(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert informed_count_after(sequence, 0, horizon=2) == 3

    def test_duality_convergecast_window_iff_reversed_flood_covers(self):
        # The duality used by Theorem 8: a convergecast fits in the window
        # [0, T] iff flooding from the sink over the reversed window reaches
        # every node.  Check it at T = opt(0) (must cover) and T = opt(0)-1
        # (must not cover).
        nodes = list(range(6))
        for seed in range(5):
            sequence = uniform_random_sequence(nodes, 150, seed=seed)
            forward_opt = opt(sequence, nodes, 0)
            assert not math.isinf(forward_opt)
            tight_window = sequence.slice(0, int(forward_opt) + 1).reversed()
            assert not math.isinf(
                broadcast_completion_time(tight_window, 0, nodes)
            )
            short_window = sequence.slice(0, int(forward_opt)).reversed()
            assert math.isinf(
                broadcast_completion_time(short_window, 0, nodes)
            )

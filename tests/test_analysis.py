"""Unit tests for the analysis helpers (bounds, fitting, statistics)."""

import math

import pytest

from repro.analysis.bounds import (
    BOUNDS,
    broadcast_expected_exact,
    compare_to_bound,
    gathering_expected_exact,
    harmonic,
    last_transmission_expected,
    n_log_n,
    n_squared,
    n_squared_log_n,
    n_three_halves_sqrt_log_n,
    waiting_expected_exact,
)
from repro.analysis.fitting import (
    crossover_point,
    fit_exponent_against_bound,
    fit_power_law,
    ratio_drift,
)
from repro.analysis.statistics import (
    chebyshev_deviation_bound,
    fraction_within,
    geometric_sweep,
    high_probability_threshold,
    summarize_sample,
)


class TestBounds:
    def test_harmonic(self):
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_bound_functions_monotone(self):
        for bound in BOUNDS.values():
            assert bound(100) > bound(10) > 0

    def test_exact_expectations(self):
        n = 20
        assert gathering_expected_exact(n) == pytest.approx((n - 1) ** 2, rel=1e-9)
        assert waiting_expected_exact(n) == pytest.approx(
            n * (n - 1) / 2 * harmonic(n - 1)
        )
        assert broadcast_expected_exact(n) == pytest.approx((n - 1) * harmonic(n - 1))
        assert last_transmission_expected(n) == n * (n - 1) / 2

    def test_ordering_of_bounds(self):
        n = 500
        assert n_log_n(n) < n_three_halves_sqrt_log_n(n) < n_squared(n) < n_squared_log_n(n)

    def test_compare_to_bound(self):
        comparison = compare_to_bound([10, 20, 40], [200, 800, 3200], n_squared, "n^2")
        assert comparison.ratios == (2.0, 2.0, 2.0)
        assert comparison.ratio_spread == 1.0

    def test_compare_length_mismatch(self):
        with pytest.raises(ValueError):
            compare_to_bound([10], [1, 2], n_squared)


class TestFitting:
    def test_fit_exact_power_law(self):
        ns = [10, 20, 40, 80]
        values = [3 * n ** 2 for n in ns]
        fit = fit_power_law(ns, values)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([10, 100], [100, 10000])
        assert fit.predict(50) == pytest.approx(2500, rel=1e-6)

    def test_fit_requires_positive_data(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])

    def test_ratio_drift_zero_when_bound_matches(self):
        ns = [16, 32, 64, 128]
        values = [5 * n * math.log(n) for n in ns]
        assert abs(ratio_drift(ns, values, n_log_n)) < 1e-9

    def test_ratio_drift_positive_when_growing_faster(self):
        ns = [16, 32, 64, 128]
        values = [n ** 2 for n in ns]
        assert ratio_drift(ns, values, n_log_n) > 0.5

    def test_fit_exponent_against_bound(self):
        ns = [16, 32, 64]
        values = [n ** 2 for n in ns]
        fit = fit_exponent_against_bound(ns, values, n_squared)
        assert fit.exponent == pytest.approx(0.0, abs=1e-9)

    def test_crossover_point(self):
        ns = [10, 20, 30, 40]
        a = [100, 90, 50, 10]
        b = [60, 60, 60, 60]
        crossover = crossover_point(ns, a, b)
        assert 20 < crossover <= 30

    def test_crossover_none(self):
        assert crossover_point([1, 2], [5, 5], [1, 1]) is None

    def test_crossover_immediate(self):
        assert crossover_point([1, 2], [0, 0], [1, 1]) == 1.0

    def test_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_point([1], [1, 2], [1, 2])


class TestStatistics:
    def test_summarize_sample(self):
        summary = summarize_sample([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_summary_confidence_interval(self):
        summary = summarize_sample([2.0, 2.0, 2.0])
        low, high = summary.confidence_interval()
        assert low == high == 2.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_sample([])

    def test_fraction_within(self):
        assert fraction_within([1, 2, 3, 4], 2.5) == 0.5
        with pytest.raises(ValueError):
            fraction_within([], 1)

    def test_chebyshev(self):
        assert chebyshev_deviation_bound(1.0, 2.0) == 0.25
        assert chebyshev_deviation_bound(10.0, 2.0) == 1.0
        with pytest.raises(ValueError):
            chebyshev_deviation_bound(1.0, 0.0)

    def test_high_probability_threshold(self):
        assert high_probability_threshold(100) == pytest.approx(1 / math.log(100))
        with pytest.raises(ValueError):
            high_probability_threshold(2)

    def test_geometric_sweep(self):
        sweep = geometric_sweep(10, 80, 4)
        assert sweep[0] == 10
        assert sweep[-1] == 80
        assert sweep == sorted(sweep)
        assert len(sweep) == 4

    def test_geometric_sweep_single_point(self):
        assert geometric_sweep(5, 100, 1) == [5]

    def test_geometric_sweep_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(10, 5, 3)


class TestGeometricSweepRegressions:
    def test_degenerate_start_equals_stop(self):
        # Rounding collapse must never produce a duplicate/non-increasing
        # tail: the degenerate range yields a single point.
        assert geometric_sweep(7, 7, 5) == [7]

    def test_tail_is_strictly_increasing(self):
        for start, stop, points in [(1, 2, 8), (10, 11, 10), (2, 100, 40), (3, 7, 3)]:
            sweep = geometric_sweep(start, stop, points)
            assert sweep[0] == start
            assert sweep[-1] == stop
            assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_validation_messages(self):
        with pytest.raises(ValueError):
            geometric_sweep(0, 5, 3)
        with pytest.raises(ValueError):
            geometric_sweep(5, 10, 0)

"""Tests for the experiment modules (reduced parameters for speed).

Each experiment's verdict encodes the paper claim it reproduces; these tests
run them at reduced scale so the full matrix stays fast, while the benchmark
suite runs them at the default (larger) scale.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_comparison,
    run_corollary1,
    run_cost_conversion,
    run_lemma1,
    run_theorem1,
    run_theorem10,
    run_theorem11,
    run_theorem2,
    run_theorem3,
    run_theorem4,
    run_theorem5,
    run_theorem6,
    run_theorem7,
    run_theorem8,
    run_theorem9_gathering,
    run_theorem9_waiting,
    run_experiment,
)

SMALL_NS = (12, 18, 27, 40)
TRIALS = 8


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 26
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 27)}

    def test_run_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_specs_have_claims(self):
        assert all(spec.claim for spec in EXPERIMENTS.values())


class TestImpossibilityExperiments:
    def test_theorem1(self):
        report = run_theorem1(horizon=1500)
        assert report.verdict
        assert report.tables[0].rows

    def test_theorem2(self):
        report = run_theorem2(n=10, horizon_cycles=30, trials=10, estimation_trials=60)
        assert report.verdict

    def test_theorem3(self):
        report = run_theorem3(horizon=1500)
        assert report.verdict


class TestKnowledgeExperiments:
    def test_theorem4(self):
        report = run_theorem4(n=8, delay_rounds=(4, 8, 16))
        assert report.verdict
        costs = report.details["costs"]
        assert costs[-1] > costs[0]

    def test_theorem5(self):
        report = run_theorem5(ns=(6, 10), trees_per_n=3, rounds=10)
        assert report.verdict

    def test_theorem6(self):
        report = run_theorem6(ns=(6, 10), trials_per_n=2)
        assert report.verdict


class TestRandomizedExperiments:
    def test_theorem7(self):
        report = run_theorem7(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict
        assert 1.6 <= report.details["fitted_exponent"] <= 2.4

    def test_theorem8(self):
        report = run_theorem8(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_corollary1(self):
        report = run_corollary1(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_theorem9_waiting(self):
        report = run_theorem9_waiting(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_theorem9_gathering(self):
        report = run_theorem9_gathering(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_lemma1(self):
        report = run_lemma1(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_theorem10(self):
        report = run_theorem10(ns=SMALL_NS, trials=TRIALS)
        assert report.verdict

    def test_theorem11(self):
        report = run_theorem11(ns=(16, 32, 48), trials=6)
        assert report.verdict

    def test_cost_conversion(self):
        report = run_cost_conversion(ns=(12, 18, 27), trials=5)
        assert report.verdict


class TestComparison:
    def test_comparison_ordering(self):
        report = run_comparison(ns=(16, 28), trials=5)
        assert report.verdict
        last = report.details["means_at_largest_n"]
        assert last["full_knowledge"] < last["gathering"]

    def test_reports_render_to_markdown(self):
        report = run_comparison(ns=(12,), trials=3)
        text = report.to_markdown()
        assert "E16" in text
        assert "| n |" in text

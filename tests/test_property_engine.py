"""Seeded property-based invariants of the execution engines.

Each case derives a random ``(adversary family, algorithm, n, sink, seed)``
combination from a case seed, runs it through the engine under test (the
whole class is parametrized over the fast AND the trial-vectorized
engines), and asserts the invariants every result in the repository builds
on:

* **data conservation** — replaying the transmission log as a coverage
  algebra never loses or duplicates an origin: the surviving owners'
  coverages always partition the node set;
* **sink monotonicity** — the sink never transmits, and its coverage is
  non-decreasing along the run;
* **no transmission after data loss** — once a node has sent its data it
  appears in no later transmission, as sender or receiver;
* **committed-prefix consistency** — every transmission happens at a time
  whose committed interaction is exactly the transmitting pair, and
  re-running the engine on ``committed_prefix`` reproduces the live run;
* **oracle/schedule consistency** — ``next_meeting`` answers agree with
  the committed interactions the executor replays.

The reference executor is additionally run on every case, so each case is
also one more differential data point.
"""

import random

import pytest

from repro.adversaries.factory import ADVERSARY_FAMILIES, make_adversary
from repro.core.algorithm import registry
from repro.core.execution import Executor
from repro.core.fast_execution import FastExecutor
from repro.core.vector_execution import VectorizedExecutor
from repro.sim.runner import build_knowledge_for_random_run, default_horizon

CASE_COUNT = 24


def derive_case(case_seed: int):
    """One random engine-invariant case, fully determined by ``case_seed``."""
    rng = random.Random(10_000 + case_seed)
    family = rng.choice(sorted(ADVERSARY_FAMILIES))
    name = rng.choice(sorted(registry.names()))
    n = rng.randint(5, 16)
    sink = rng.randrange(n)
    seed = rng.randrange(2**31)
    return family, name, n, sink, seed


def make_algorithm(name: str, n: int):
    kwargs = {}
    if name == "waiting_greedy":
        from repro.algorithms.waiting_greedy import optimal_tau

        kwargs["tau"] = optimal_tau(n)
    elif name in ("coin_flip_gathering", "random_receiver"):
        kwargs["seed"] = 77
    return registry.create(name, **kwargs)


def run_case(case_seed: int, engine_cls=FastExecutor):
    family, name, n, sink, seed = derive_case(case_seed)
    nodes = list(range(n))
    algorithm = make_algorithm(name, n)
    horizon = default_horizon(algorithm, n)
    adversary = make_adversary(
        family, nodes, seed=seed,
        max_horizon=max(horizon * 2, horizon + 1024), sink=sink,
    )
    knowledge, committed = build_knowledge_for_random_run(
        algorithm, adversary, nodes, sink, horizon
    )
    source = committed if committed is not None else adversary
    result = engine_cls(nodes, sink, algorithm, knowledge=knowledge).run(
        source, max_interactions=horizon
    )
    return family, name, n, sink, seed, adversary, result, horizon


@pytest.mark.slow
@pytest.mark.parametrize(
    "engine_cls", (FastExecutor, VectorizedExecutor),
    ids=("fast", "vectorized"),
)
@pytest.mark.parametrize("case_seed", range(CASE_COUNT))
class TestEngineInvariants:
    def test_data_conservation(self, case_seed, engine_cls):
        _, _, n, sink, _, _, result, _ = run_case(case_seed, engine_cls)
        coverage = {node: 1 for node in range(n)}
        owners = set(range(n))
        for transmission in result.transmissions:
            assert transmission.sender in owners
            assert transmission.receiver in owners
            coverage[transmission.receiver] += coverage[transmission.sender]
            owners.remove(transmission.sender)
        # Live coverages partition the origin set at every point reached.
        assert sum(coverage[node] for node in owners) == n
        assert coverage[sink] == result.sink_coverage
        assert set(result.remaining_owners) == owners - {sink}
        if result.terminated:
            assert owners == {sink}
            assert result.sink_coverage == n
            assert len(result.transmissions) == n - 1

    def test_sink_monotone_and_never_sends(self, case_seed, engine_cls):
        _, _, _, sink, _, _, result, _ = run_case(case_seed, engine_cls)
        assert all(t.sender != sink for t in result.transmissions)
        times = [t.time for t in result.transmissions]
        assert times == sorted(times)

    def test_no_transmission_after_data_loss(self, case_seed, engine_cls):
        _, _, _, _, _, _, result, _ = run_case(case_seed, engine_cls)
        lost_at = {}
        for transmission in result.transmissions:
            assert transmission.sender not in lost_at
            assert transmission.receiver not in lost_at
            lost_at[transmission.sender] = transmission.time

    def test_transmissions_ride_committed_interactions(self, case_seed, engine_cls):
        _, _, _, _, _, adversary, result, _ = run_case(case_seed, engine_cls)
        prefix = adversary.committed_prefix(result.interactions_used)
        for transmission in result.transmissions:
            assert prefix[transmission.time].pair == frozenset(
                (transmission.sender, transmission.receiver)
            )

    def test_committed_prefix_replay_reproduces_run(self, case_seed, engine_cls):
        family, name, n, sink, seed, adversary, result, horizon = run_case(
            case_seed, engine_cls
        )
        replay_source = adversary.committed_prefix(
            min(horizon, max(result.interactions_used, 1))
        )
        replayed = engine_cls(
            list(range(n)), sink, make_algorithm(name, n),
            knowledge=build_knowledge_for_random_run(
                make_algorithm(name, n), adversary, list(range(n)), sink,
                horizon,
            )[0],
        ).run(replay_source, max_interactions=result.interactions_used)
        assert replayed.transmissions == result.transmissions
        assert replayed.terminated == result.terminated
        assert replayed.duration == result.duration

    def test_oracle_answers_match_realized_schedule(self, case_seed, engine_cls):
        _, _, n, sink, _, adversary, result, _ = run_case(case_seed, engine_cls)
        window = max(result.interactions_used, 64)
        prefix = adversary.committed_prefix(window)
        probe = random.Random(case_seed)
        for _ in range(5):
            node = probe.randrange(n)
            if node == sink:
                continue
            after = probe.randrange(max(1, len(prefix)))
            answer = adversary.next_meeting(node, sink, after)
            expected = next(
                (
                    t
                    for t in range(after + 1, len(prefix))
                    if prefix[t].pair == frozenset((node, sink))
                ),
                None,
            )
            if expected is not None:
                assert answer == expected
            elif answer is not None:
                # The oracle may look beyond our window; the meeting it
                # reports must then lie past the window and be real.
                assert answer >= len(prefix)
                extended = adversary.committed_prefix(answer + 1)
                assert extended[answer].pair == frozenset((node, sink))

    def test_reference_engine_agrees(self, case_seed, engine_cls):
        family, name, n, sink, seed, _, result, horizon = run_case(
            case_seed, engine_cls
        )
        nodes = list(range(n))
        algorithm = make_algorithm(name, n)
        adversary = make_adversary(
            family, nodes, seed=seed,
            max_horizon=max(horizon * 2, horizon + 1024), sink=sink,
        )
        knowledge, committed = build_knowledge_for_random_run(
            algorithm, adversary, nodes, sink, horizon
        )
        source = committed if committed is not None else adversary
        reference = Executor(nodes, sink, algorithm, knowledge=knowledge).run(
            source, max_interactions=horizon
        )
        assert reference == result

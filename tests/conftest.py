"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.interaction import InteractionSequence
from repro.graph.generators import uniform_random_sequence


@pytest.fixture
def line_nodes():
    """Four nodes on a line with node 0 as the sink."""
    return [0, 1, 2, 3]


@pytest.fixture
def line_sequence_to_sink(line_nodes):
    """A sequence along the line 3-2-1-0 allowing a single-pass convergecast."""
    return InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])


@pytest.fixture
def star_sequence():
    """Each of nodes 1..4 meets the sink 0 once."""
    return InteractionSequence.from_pairs([(1, 0), (2, 0), (3, 0), (4, 0)])


@pytest.fixture
def small_random_sequence():
    """A deterministic uniform-random sequence on 8 nodes, long enough to aggregate."""
    return uniform_random_sequence(list(range(8)), length=400, seed=42)


@pytest.fixture
def rng():
    """A seeded random.Random instance."""
    return random.Random(1234)

"""Executed smoke tests for the example scripts.

Every ``examples/*.py`` is run as a real subprocess (small-``n`` fast mode)
so the examples cannot silently rot when the package surface changes: an
import error, a renamed symbol, or a crashed scenario fails the suite, not
the first user who copies the example.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (small/fast CLI arguments, required output fragments).
EXAMPLES = {
    "quickstart.py": (
        ["--n", "14", "--seed", "2"],
        ["cost"],
    ),
    "adversary_showdown.py": (
        ["--horizon", "300"],
        ["Theorem 1", "Theorem 2", "Theorem 3", "terminated="],
    ),
    "vehicular_dtn.py": (
        ["--vehicles", "8", "--grid", "4", "--steps", "250", "--seed", "9"],
        ["Vehicular contact trace", "algorithm"],
    ),
    "body_area_network.py": (
        ["--sensors", "5", "--cycles", "12", "--seed", "3"],
        ["Body-area network trace", "feasible"],
    ),
}


def run_example(name: str, arguments):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *arguments],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def test_every_example_is_smoke_tested():
    """A new example must be added to the EXAMPLES table above."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name):
    arguments, fragments = EXAMPLES[name]
    completed = run_example(name, arguments)
    assert completed.returncode == 0, (
        f"{name} exited with {completed.returncode}:\n{completed.stderr}"
    )
    for fragment in fragments:
        assert fragment in completed.stdout, (
            f"{name} output is missing {fragment!r}:\n{completed.stdout}"
        )

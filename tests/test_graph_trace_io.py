"""Unit tests for contact-trace CSV loading and saving."""

import io

import pytest

from repro.core.exceptions import ConfigurationError
from repro.graph.trace_io import (
    load_contact_csv,
    save_contact_csv,
    sequence_from_contact_events,
)
from repro.graph.traces import BodyAreaNetworkTrace
from repro.algorithms.gathering import Gathering
from repro.core.execution import Executor


class TestSequenceFromEvents:
    def test_events_sorted_by_time(self):
        sequence = sequence_from_contact_events([(5.0, 1, 2), (1.0, 0, 1)])
        assert sequence.pairs == [(0, 1), (1, 2)]

    def test_simultaneous_events_deterministic(self):
        a = sequence_from_contact_events([(1.0, 3, 4), (1.0, 0, 1)])
        b = sequence_from_contact_events([(1.0, 0, 1), (1.0, 3, 4)])
        assert a == b

    def test_empty(self):
        assert len(sequence_from_contact_events([])) == 0


class TestLoadCsv:
    def test_load_with_header(self):
        text = "time,u,v\n0,1,2\n1,2,0\n2,1,0\n"
        graph = load_contact_csv(io.StringIO(text), sink=0)
        assert graph.size == 3
        assert graph.length == 3
        assert graph.sink == 0

    def test_load_without_header(self):
        text = "0,1,2\n1,2,0\n"
        graph = load_contact_csv(io.StringIO(text), sink=0)
        assert graph.length == 2

    def test_string_identifiers_preserved(self):
        text = "time,u,v\n0,hub,sensor-1\n1,sensor-1,sensor-2\n"
        graph = load_contact_csv(io.StringIO(text), sink="hub")
        assert "sensor-2" in graph.nodes

    def test_out_of_order_timestamps_sorted(self):
        text = "time,u,v\n9,1,2\n1,0,1\n"
        graph = load_contact_csv(io.StringIO(text), sink=0)
        assert graph.sequence.pairs == [(0, 1), (1, 2)]

    def test_sink_added_even_if_absent_from_trace(self):
        text = "0,1,2\n"
        graph = load_contact_csv(io.StringIO(text), sink=99)
        assert 99 in graph.nodes

    def test_explicit_node_set_checked(self):
        text = "0,1,2\n"
        with pytest.raises(ConfigurationError):
            load_contact_csv(io.StringIO(text), sink=0, nodes=[0, 1])

    def test_malformed_row_rejected(self):
        with pytest.raises(ConfigurationError):
            load_contact_csv(io.StringIO("0,1\n"), sink=0)

    def test_non_numeric_time_rejected(self):
        with pytest.raises(ConfigurationError):
            load_contact_csv(io.StringIO("0,1,2\nxx,1,2\n"), sink=0)

    def test_blank_lines_skipped(self):
        text = "time,u,v\n\n0,1,2\n\n1,1,0\n"
        graph = load_contact_csv(io.StringIO(text), sink=0)
        assert graph.length == 2

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,u,v\n0,1,0\n1,2,0\n")
        graph = load_contact_csv(path, sink=0)
        assert graph.length == 2


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path):
        original = BodyAreaNetworkTrace(sensor_count=5, cycles=6, seed=1).build()
        path = tmp_path / "body.csv"
        save_contact_csv(original, path)
        reloaded = load_contact_csv(path, sink="hub")
        assert reloaded.sequence.pairs == original.sequence.pairs
        assert set(reloaded.nodes) == set(original.nodes)

    def test_reloaded_trace_is_runnable(self, tmp_path):
        original = BodyAreaNetworkTrace(sensor_count=5, cycles=10, seed=1).build()
        path = tmp_path / "body.csv"
        save_contact_csv(original, path)
        reloaded = load_contact_csv(path, sink="hub")
        result = Executor(reloaded.nodes, reloaded.sink, Gathering()).run(
            reloaded.sequence
        )
        assert result.terminated

    def test_save_to_stringio(self):
        original = BodyAreaNetworkTrace(sensor_count=4, cycles=3, seed=0).build()
        buffer = io.StringIO()
        save_contact_csv(original, buffer)
        assert buffer.getvalue().startswith("time,u,v")

"""Unit tests for Waiting, Gathering and the randomized baselines."""

import pytest

from repro.algorithms.gathering import Gathering
from repro.algorithms.random_baseline import CoinFlipGathering, RandomReceiver
from repro.algorithms.waiting import Waiting
from repro.core.execution import run_algorithm
from repro.core.interaction import InteractionSequence
from repro.core.node import NodeView


def view(node, is_sink=False):
    return NodeView(id=node, is_sink=is_sink, owns_data=True)


class TestWaitingDecisions:
    def test_transmits_to_sink(self):
        assert Waiting().decide(view(0, is_sink=True), view(5), 0) == 0
        assert Waiting().decide(view(3), view(9, is_sink=True), 0) == 9

    def test_no_transmission_between_non_sink_nodes(self):
        assert Waiting().decide(view(3), view(5), 0) is None

    def test_is_oblivious_and_knowledge_free(self):
        assert Waiting.oblivious
        assert Waiting.requires == frozenset()


class TestGatheringDecisions:
    def test_sink_always_receives(self):
        assert Gathering().decide(view(0, is_sink=True), view(5), 0) == 0
        assert Gathering().decide(view(3), view(9, is_sink=True), 0) == 9

    def test_lower_id_receives_otherwise(self):
        assert Gathering().decide(view(3), view(5), 7) == 3

    def test_is_oblivious_and_knowledge_free(self):
        assert Gathering.oblivious
        assert Gathering.requires == frozenset()


class TestEndToEndOnDeterministicSequences:
    def test_gathering_aggregates_along_chain(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        result = run_algorithm(Gathering(), sequence, [0, 1, 2, 3], sink=0)
        assert result.terminated
        assert result.duration == 3

    def test_waiting_needs_direct_sink_meetings(self):
        sequence = InteractionSequence.from_pairs(
            [(3, 2), (2, 1), (1, 0), (2, 0), (3, 0)]
        )
        result = run_algorithm(Waiting(), sequence, [0, 1, 2, 3], sink=0)
        assert result.terminated
        assert result.duration == 5

    def test_gathering_beats_waiting_on_relay_sequences(self):
        sequence = InteractionSequence.from_pairs(
            [(3, 2), (2, 1), (1, 0), (2, 0), (3, 0)]
        )
        gathering = run_algorithm(Gathering(), sequence, [0, 1, 2, 3], sink=0)
        waiting = run_algorithm(Waiting(), sequence, [0, 1, 2, 3], sink=0)
        assert gathering.duration < waiting.duration

    def test_gathering_can_lose_to_optimal_on_adversarial_order(self):
        # Gathering merges 2 and 3 away from the sink and must then wait for
        # the merged owner to meet the sink; the offline optimum uses the
        # same interactions differently.  This is why Gathering is only
        # optimal among *no-knowledge* algorithms.
        sequence = InteractionSequence.from_pairs(
            [(3, 2), (3, 0), (2, 0), (2, 3), (2, 0)]
        )
        result = run_algorithm(Gathering(), sequence, [0, 1, 2, 3], sink=0)
        # Node 1 never interacts: the run cannot terminate, but the point is
        # the transmissions happened greedily.
        assert not result.terminated
        assert result.transmission_count >= 1


class TestCoinFlipGathering:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            CoinFlipGathering(p=1.5)

    def test_p_one_behaves_like_gathering(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])
        result = run_algorithm(
            CoinFlipGathering(p=1.0, seed=0), sequence, [0, 1, 2, 3], sink=0
        )
        assert result.terminated
        assert result.duration == 3

    def test_p_zero_never_transmits(self):
        sequence = InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)] * 5)
        result = run_algorithm(
            CoinFlipGathering(p=0.0, seed=0), sequence, [0, 1, 2, 3], sink=0
        )
        assert not result.terminated
        assert result.transmission_count == 0

    def test_seed_reproducibility(self):
        sequence = InteractionSequence.from_pairs([(1, 2), (2, 0), (1, 0)] * 10)
        a = run_algorithm(
            CoinFlipGathering(p=0.5, seed=3), sequence, [0, 1, 2], sink=0
        )
        b = run_algorithm(
            CoinFlipGathering(p=0.5, seed=3), sequence, [0, 1, 2], sink=0
        )
        assert a.duration == b.duration


class TestRandomReceiver:
    def test_never_makes_sink_transmit(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (0, 2), (1, 2)] * 20)
        result = run_algorithm(
            RandomReceiver(seed=1), sequence, [0, 1, 2], sink=0
        )
        # The run may or may not terminate, but the sink never transmits so
        # it always still owns data covering at least itself.
        assert result.sink_coverage >= 1

    def test_eventually_aggregates_on_rich_sequences(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (0, 2), (1, 2)] * 200)
        result = run_algorithm(
            RandomReceiver(seed=1), sequence, [0, 1, 2], sink=0
        )
        assert result.terminated

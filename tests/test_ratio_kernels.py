"""Differential tests: ratio kernels vs the pure-Python offline oracle.

The vectorized kernels in :mod:`repro.ratio.kernels` must reproduce
:mod:`repro.offline.convergecast` sequence for sequence — foremost arrival
times, ``opt(t)`` and successive-convergecast end times — on random
sequences, committed adversary cells and trace replays, including the
impossible-aggregation sentinel cases.  This file also pins the hardened
:func:`~repro.offline.convergecast.successive_convergecasts` semantics
(satellite: documented sentinel instead of looping/raising on traces that
never complete) and the scalar ratio vocabulary of
:mod:`repro.ratio.semantics`.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from strategies import random_sequence

from repro.adversaries.committed import CommittedBlockAdversary
from repro.adversaries.factory import make_adversary
from repro.adversaries.mobility import TraceReplayAdversary
from repro.core.interaction import InteractionSequence
from repro.offline.convergecast import (
    INFINITY,
    foremost_arrival_times,
    opt,
    successive_convergecasts,
)
from repro.ratio.kernels import (
    foremost_arrival_matrix,
    opt_end_matrix,
    sequence_index_blocks,
    successive_convergecast_end_matrix,
)
from repro.ratio.semantics import (
    RATIO_UNDEFINED,
    UNREACHABLE,
    competitive_ratio,
    opt_cost_from_end,
)


# random_sequence is shared suite-wide — see tests/strategies.py.


def single_row(sequence: InteractionSequence, n: int):
    index_of = {node: node for node in range(n)}
    i, j = sequence_index_blocks(sequence, index_of)
    return i[None, :], j[None, :], np.array([len(sequence)], dtype=np.int64)


class TestForemostArrivalMatrix:
    def test_matches_oracle_on_random_sequences(self):
        rng = random.Random(7)
        for _ in range(120):
            n = rng.randint(2, 9)
            sequence = random_sequence(rng, n, rng.randint(0, 90))
            start = rng.randint(0, max(len(sequence), 1))
            I, J, lengths = single_row(sequence, n)
            kernel = foremost_arrival_matrix(I, J, lengths, n, 0, starts=start)
            oracle = foremost_arrival_times(
                sequence, list(range(n)), 0, start=start
            )
            for node in range(n):
                assert kernel[0, node] == float(oracle[node])

    def test_disconnected_node_is_unreachable(self):
        # Node 3 never interacts: its arrival must be the inf sentinel.
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 0), (1, 2)])
        I, J, lengths = single_row(sequence, 4)
        kernel = foremost_arrival_matrix(I, J, lengths, 4, 0)
        assert kernel[0, 3] == UNREACHABLE

    def test_rows_with_different_lengths_and_padding(self):
        rng = random.Random(13)
        n = 6
        sequences = [random_sequence(rng, n, length) for length in (0, 5, 40, 17)]
        index_of = {node: node for node in range(n)}
        blocks = [sequence_index_blocks(s, index_of) for s in sequences]
        width = max(len(s) for s in sequences)
        I = np.zeros((len(sequences), width), dtype=np.int64)
        J = np.zeros((len(sequences), width), dtype=np.int64)
        for row, (i, j) in enumerate(blocks):
            I[row, : i.shape[0]] = i
            J[row, : j.shape[0]] = j
        lengths = np.array([len(s) for s in sequences], dtype=np.int64)
        kernel = foremost_arrival_matrix(I, J, lengths, n, 0)
        for row, sequence in enumerate(sequences):
            oracle = foremost_arrival_times(sequence, list(range(n)), 0)
            for node in range(n):
                assert kernel[row, node] == float(oracle[node])

    def test_empty_batch(self):
        I = np.empty((0, 0), dtype=np.int64)
        arrival = foremost_arrival_matrix(I, I, np.empty(0, dtype=np.int64), 4, 0)
        assert arrival.shape == (0, 4)


class TestOptEndMatrix:
    def test_matches_oracle_including_unreachable(self):
        rng = random.Random(21)
        for _ in range(120):
            n = rng.randint(2, 8)
            sequence = random_sequence(rng, n, rng.randint(0, 60))
            I, J, lengths = single_row(sequence, n)
            for start in (0, len(sequence) // 2, len(sequence)):
                kernel = opt_end_matrix(I, J, lengths, n, 0, starts=start)
                assert kernel[0] == float(
                    opt(sequence, list(range(n)), 0, start=start)
                )

    def test_per_row_starts(self):
        rng = random.Random(3)
        n = 5
        sequence = random_sequence(rng, n, 50)
        index_of = {node: node for node in range(n)}
        i, j = sequence_index_blocks(sequence, index_of)
        batch = 4
        I = np.tile(i, (batch, 1))
        J = np.tile(j, (batch, 1))
        lengths = np.full(batch, len(sequence), dtype=np.int64)
        starts = np.array([0, 7, 20, 49], dtype=np.int64)
        kernel = opt_end_matrix(I, J, lengths, n, 0, starts=starts)
        for row, start in enumerate(starts.tolist()):
            assert kernel[row] == float(
                opt(sequence, list(range(n)), 0, start=start)
            )

    def test_committed_adversary_cell(self):
        nodes = list(range(7))
        adversaries = [
            make_adversary(family, nodes, seed=seed, max_horizon=4000, sink=0)
            for family in ("uniform", "zipf", "hub", "waypoint", "community")
            for seed in (0, 1)
        ]
        stops = [150 + 17 * k for k in range(len(adversaries))]
        for adversary, stop in zip(adversaries, stops):
            adversary.ensure_committed(stop)
        I, J, lengths = CommittedBlockAdversary.committed_index_matrix(
            adversaries, 0, stops, pad=0
        )
        kernel = opt_end_matrix(I, J, lengths, len(nodes), 0)
        for row, (adversary, stop) in enumerate(zip(adversaries, stops)):
            sequence = adversary.committed_prefix(stop)
            assert kernel[row] == float(opt(sequence, nodes, 0))


class TestSuccessiveConvergecastMatrix:
    def test_matches_oracle_with_inf_tail_convention(self):
        rng = random.Random(5)
        count = 6
        for _ in range(80):
            n = rng.randint(2, 7)
            sequence = random_sequence(rng, n, rng.randint(0, 80))
            I, J, lengths = single_row(sequence, n)
            kernel = successive_convergecast_end_matrix(
                I, J, lengths, n, 0, count
            )
            oracle = successive_convergecasts(
                sequence, list(range(n)), 0, count=count
            )
            for position in range(count):
                expected = (
                    float(oracle[position])
                    if position < len(oracle)
                    else INFINITY
                )
                assert kernel[0, position] == expected

    def test_rejects_non_positive_count(self):
        I = np.zeros((1, 0), dtype=np.int64)
        with pytest.raises(ValueError, match="count"):
            successive_convergecast_end_matrix(
                I, I, np.array([0]), 3, 0, 0
            )


class TestHardenedSuccessiveConvergecasts:
    """Satellite: impossible aggregations return sentinels, never hang."""

    def test_trace_replay_that_never_completes(self):
        # A finite committed trace whose node 3 never meets anyone: the
        # trace replays fine, but no convergecast ever completes.  opt and
        # successive_convergecasts must answer with the documented INFINITY
        # sentinel instead of raising or looping.
        trace = InteractionSequence.from_pairs([(1, 0), (2, 0), (1, 2), (2, 1)])
        adversary = TraceReplayAdversary(trace, nodes=[0, 1, 2, 3])
        sequence = adversary.committed_prefix(50)
        assert adversary.future_exhausted
        nodes = adversary.nodes()
        assert opt(sequence, nodes, 0) == INFINITY
        values = successive_convergecasts(sequence, nodes, 0)
        assert values == [INFINITY]
        values = successive_convergecasts(sequence, nodes, 0, count=4)
        assert values == [INFINITY]

    def test_disconnected_tail(self):
        # Aggregation possible once, then the sequence ends: the second
        # convergecast is INFINITY and the enumeration stops.
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0)])
        values = successive_convergecasts(sequence, [0, 1, 2], 0)
        assert values[0] == 1
        assert values[-1] == INFINITY

    def test_degenerate_single_node_instance_terminates(self):
        # opt() on a <= 1-node instance cannot advance the start; the
        # enumeration must stop instead of looping forever (regression:
        # this used to hang with count=None on any sequence longer than 1).
        sequence = InteractionSequence.from_pairs([(1, 2), (2, 3), (1, 3)])
        values = successive_convergecasts(sequence, [0], 0)
        assert len(values) <= 2
        assert all(not math.isnan(value) for value in values)
        values = successive_convergecasts(sequence, [0], 0, count=5)
        assert len(values) <= 5

    def test_count_must_be_positive(self):
        sequence = InteractionSequence.from_pairs([(1, 0)])
        with pytest.raises(ValueError, match="count"):
            successive_convergecasts(sequence, [0, 1], 0, count=0)


class TestRatioSemantics:
    def test_opt_cost_from_end(self):
        assert opt_cost_from_end(4) == 5.0
        assert isinstance(opt_cost_from_end(4), float)
        assert opt_cost_from_end(UNREACHABLE) == UNREACHABLE

    def test_ratio_conventions(self):
        assert competitive_ratio(10.0, 5.0) == 2.0
        assert competitive_ratio(5.0, 5.0) == 1.0
        assert competitive_ratio(math.inf, 5.0) == math.inf
        assert math.isnan(competitive_ratio(10.0, UNREACHABLE))
        assert math.isnan(RATIO_UNDEFINED)

    def test_degenerate_zero_cost(self):
        assert competitive_ratio(0.0, 0.0) == 1.0

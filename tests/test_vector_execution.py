"""Differential and unit tests for the trial-vectorized engine.

The contract under test: :class:`~repro.core.vector_execution.
VectorizedExecutor` is **exactly** interchangeable with the reference
executor — same :class:`~repro.core.execution.ExecutionResult` including
the transmission log, seed for seed — for every kernelized algorithm under
every committed adversary family (uniform / zipf / hub / waypoint /
community / trace replay), and transparently falls back to the fast engine
everywhere else (kernel-less algorithms, adaptive providers,
``enforce_oblivious`` runs).
"""

import numpy as np
import pytest

from repro.adversaries import TraceReplayAdversary, make_adversary
from repro.adversaries.committed import CommittedBlockAdversary
from repro.algorithms.gathering import Gathering
from repro.algorithms.kernels import KERNELS, get_kernel
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.algorithm import registry
from repro.core.data import MAX
from repro.core.execution import Executor
from repro.core.exceptions import ConfigurationError
from repro.core.fast_execution import FastExecutor
from repro.core.interaction import InteractionSequence
from repro.core.vector_execution import VectorizedExecutor
from repro.graph.traces import VehicularGridTrace
from repro.sim.batch import run_sweep_cell, sweep_adversary_batched
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import (
    build_knowledge_for_random_run,
    build_trial_adversary,
    default_horizon,
    execute_random_trial,
    sweep_random_adversary,
)

FAMILIES = ("uniform", "zipf", "hub", "waypoint", "community")
#: Algorithms with a registered decision kernel.
KERNELIZED = sorted(KERNELS)
#: Algorithms that must transparently fall back to the fast engine.
KERNEL_LESS = sorted(set(registry.names()) - set(KERNELS))


def make_algorithm(name: str, n: int):
    kwargs = {}
    if name == "waiting_greedy":
        kwargs["tau"] = optimal_tau(n)
    elif name in ("coin_flip_gathering", "random_receiver"):
        kwargs["seed"] = 20_16
    return registry.create(name, **kwargs)


def run_engine(engine_cls, name, n, seed, sink=0, family="uniform",
               block_size=None):
    """One committed-adversary trial through an explicit engine class."""
    algorithm = make_algorithm(name, n)
    nodes = list(range(n))
    horizon = default_horizon(algorithm, n)
    adversary = build_trial_adversary(family, nodes, seed, horizon, sink, None)
    knowledge, committed = build_knowledge_for_random_run(
        algorithm, adversary, nodes, sink, horizon
    )
    source = committed if committed is not None else adversary
    kwargs = {} if block_size is None else {"block_size": block_size}
    executor = engine_cls(nodes, sink, algorithm, knowledge=knowledge, **kwargs)
    return executor.run(source, max_interactions=horizon)


class TestKernelRegistry:
    def test_paper_algorithms_have_kernels(self):
        for name in ("gathering", "waiting", "waiting_greedy",
                     "coin_flip_gathering", "random_receiver"):
            assert get_kernel(name) is not None, name

    def test_knowledge_heavy_algorithms_have_no_kernels(self):
        for name in ("spanning_tree", "full_knowledge", "future_broadcast"):
            assert get_kernel(name) is None, name


class TestKernelVsObjectDifferential:
    """Kernel decisions == object decisions, end to end, per family."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("name", KERNELIZED)
    def test_kernel_matches_object_form(self, family, name):
        for seed in (0, 1, 2):
            reference = run_engine(Executor, name, 13, seed, family=family)
            vectorized = run_engine(
                VectorizedExecutor, name, 13, seed, family=family
            )
            assert vectorized == reference, (family, name, seed)

    @pytest.mark.parametrize("name", KERNELIZED)
    def test_trace_replay_family(self, name):
        from repro.knowledge import KnowledgeBundle, MeetTimeKnowledge

        trace = VehicularGridTrace(
            vehicle_count=9, grid_size=4, steps=400, seed=3
        ).build()
        nodes = list(trace.nodes)

        def run(engine_cls):
            algorithm = make_algorithm(name, len(nodes))
            adversary = TraceReplayAdversary(trace)
            knowledge = None
            if name == "waiting_greedy":
                knowledge = KnowledgeBundle(
                    MeetTimeKnowledge(
                        adversary, trace.sink, horizon=trace.length,
                        strict=False,
                    )
                )
            return engine_cls(
                nodes, trace.sink, algorithm, knowledge=knowledge
            ).run(adversary, max_interactions=trace.length)

        assert run(VectorizedExecutor) == run(Executor)

    @pytest.mark.parametrize("name", ("gathering", "waiting"))
    def test_non_default_sink_and_shapes(self, name):
        for n, sink in ((5, 2), (9, 8), (17, 4)):
            reference = run_engine(Executor, name, n, seed=7, sink=sink)
            vectorized = run_engine(VectorizedExecutor, name, n, seed=7, sink=sink)
            assert vectorized == reference, (name, n, sink)

    def test_sequence_source(self):
        """Finite committed sequences run through the kernel path too."""
        nodes = list(range(10))
        adversary = make_adversary("uniform", nodes, seed=5, sink=0)
        sequence = adversary.committed_prefix(600)
        for algorithm_cls in (Gathering, Waiting):
            reference = Executor(nodes, 0, algorithm_cls()).run(sequence)
            vectorized = VectorizedExecutor(nodes, 0, algorithm_cls()).run(sequence)
            assert vectorized == reference, algorithm_cls

    def test_initial_payloads_and_aggregation(self):
        nodes = list(range(8))
        adversary = make_adversary("uniform", nodes, seed=9, sink=0)
        sequence = adversary.committed_prefix(400)
        payloads = {node: float(node) * 1.5 for node in nodes}
        reference = Executor(nodes, 0, Gathering(), aggregation=MAX).run(
            sequence, initial_payloads=payloads
        )
        vectorized = VectorizedExecutor(nodes, 0, Gathering(), aggregation=MAX).run(
            sequence, initial_payloads=payloads
        )
        assert vectorized == reference
        assert vectorized.sink_payload == max(payloads.values())

    @pytest.mark.parametrize("block_size", (64, 1000, 4096, 1 << 17))
    def test_block_size_independence(self, block_size):
        """Block boundaries are consumption windows, never semantics."""
        for name in ("gathering", "waiting", "waiting_greedy"):
            reference = run_engine(Executor, name, 14, seed=3)
            vectorized = run_engine(
                VectorizedExecutor, name, 14, seed=3, block_size=block_size
            )
            assert vectorized == reference, (name, block_size)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorizedExecutor(list(range(4)), 0, Gathering(), block_size=0)

    def test_unbounded_provider_requires_horizon(self):
        adversary = make_adversary("uniform", list(range(6)), seed=0, sink=0)
        with pytest.raises(ConfigurationError):
            VectorizedExecutor(list(range(6)), 0, Gathering()).run(adversary)


class TestFallback:
    """Trials the kernels cannot mirror run through the fast engine."""

    @pytest.mark.parametrize("name", KERNEL_LESS)
    def test_kernel_less_algorithms_fall_back_exactly(self, name):
        reference, _ = execute_random_trial(
            make_algorithm(name, 12), 12, seed=1, engine="reference"
        )
        vectorized, _ = execute_random_trial(
            make_algorithm(name, 12), 12, seed=1, engine="vectorized"
        )
        assert vectorized == reference, name

    def test_mismatched_oracle_sink_falls_back(self):
        """A meetTime oracle about a *different* sink cannot be mirrored."""
        from repro.knowledge import KnowledgeBundle, MeetTimeKnowledge

        nodes = list(range(12))
        for seed in range(4):
            def run(engine_cls):
                adversary = make_adversary("uniform", nodes, seed=seed, sink=0)
                knowledge = KnowledgeBundle(
                    MeetTimeKnowledge(adversary, 3, horizon=600, strict=False)
                )
                return engine_cls(
                    nodes, 0, WaitingGreedy(tau=50), knowledge=knowledge
                ).run(adversary, max_interactions=600)

            assert run(VectorizedExecutor) == run(Executor), seed

    def test_sequence_with_foreign_node_falls_back(self):
        """A sequence naming nodes outside the instance must behave like the
        per-interaction engines (which only fail if the run reaches it)."""
        sequence = InteractionSequence.from_pairs([(0, 1), (0, 2), (0, 99)])
        nodes = [0, 1, 2]
        reference = Executor(nodes, 0, Gathering()).run(sequence)
        vectorized = VectorizedExecutor(nodes, 0, Gathering()).run(sequence)
        assert vectorized == reference
        assert vectorized.terminated

    def test_adaptive_provider_falls_back(self):
        from repro.adversaries.constructions import Theorem1Adversary

        nodes = ["a", "b", "s"]
        reference = Executor(nodes, "s", Gathering()).run(
            Theorem1Adversary(), max_interactions=500
        )
        vectorized = VectorizedExecutor(nodes, "s", Gathering()).run(
            Theorem1Adversary(), max_interactions=500
        )
        assert vectorized == reference

    def test_enforce_oblivious_falls_back(self):
        result = run_engine(Executor, "gathering", 10, seed=2)
        nodes = list(range(10))
        adversary = build_trial_adversary(
            "uniform", nodes, 2, default_horizon(Gathering(), 10), 0, None
        )
        vectorized = VectorizedExecutor(
            nodes, 0, Gathering(), enforce_oblivious=True
        ).run(adversary, max_interactions=default_horizon(Gathering(), 10))
        assert vectorized == result

    def test_shared_rng_algorithm_instance_falls_back(self):
        """One RNG-bearing instance shared by several trials must not enter
        the lockstep: interleaving rows would consume the shared stream in
        a different order than sequential per-trial execution."""
        from repro.algorithms.random_baseline import RandomReceiver
        from repro.core.fast_execution import BatchTrial

        n, sink = 14, 0
        nodes = list(range(n))
        horizon = default_horizon(RandomReceiver(), n)

        def batch(algorithm):
            trials = []
            for seed in (3, 4, 5):
                adversary = build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                )
                trials.append(
                    BatchTrial(source=adversary, max_interactions=horizon)
                )
            return trials

        shared_fast = RandomReceiver(seed=99)
        expected = FastExecutor(nodes, sink, shared_fast).run_many(
            batch(shared_fast)
        )
        shared_vec = RandomReceiver(seed=99)
        actual = VectorizedExecutor(nodes, sink, shared_vec).run_many(
            batch(shared_vec)
        )
        assert actual == expected
        # Distinct per-trial instances do take the kernel path and agree too.
        per_trial_fast = [
            BatchTrial(
                source=build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                ),
                max_interactions=horizon,
                algorithm=RandomReceiver(seed=seed),
            )
            for seed in (3, 4, 5)
        ]
        per_trial_vec = [
            BatchTrial(
                source=build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                ),
                max_interactions=horizon,
                algorithm=RandomReceiver(seed=seed),
            )
            for seed in (3, 4, 5)
        ]
        assert (
            VectorizedExecutor(nodes, sink, RandomReceiver(seed=0)).run_many(
                per_trial_vec
            )
            == FastExecutor(nodes, sink, RandomReceiver(seed=0)).run_many(
                per_trial_fast
            )
        )

    def test_mixed_batch_preserves_order(self):
        """Kernelized and fallback trials interleave in one batch."""
        from repro.core.fast_execution import BatchTrial

        n, sink = 11, 0
        nodes = list(range(n))
        names = ["gathering", "spanning_tree", "waiting", "full_knowledge"]
        trials = []
        expected = []
        for position, name in enumerate(names):
            algorithm = make_algorithm(name, n)
            horizon = default_horizon(algorithm, n)
            adversary = build_trial_adversary(
                "uniform", nodes, 40 + position, horizon, sink, None
            )
            knowledge, committed = build_knowledge_for_random_run(
                algorithm, adversary, nodes, sink, horizon
            )
            source = committed if committed is not None else adversary
            trials.append(
                BatchTrial(
                    source=source,
                    max_interactions=horizon,
                    algorithm=algorithm,
                    knowledge=knowledge,
                )
            )
            algorithm2 = make_algorithm(name, n)
            adversary2 = build_trial_adversary(
                "uniform", nodes, 40 + position, horizon, sink, None
            )
            knowledge2, committed2 = build_knowledge_for_random_run(
                algorithm2, adversary2, nodes, sink, horizon
            )
            source2 = committed2 if committed2 is not None else adversary2
            expected.append(
                Executor(nodes, sink, algorithm2, knowledge=knowledge2).run(
                    source2, max_interactions=horizon
                )
            )
        executor = VectorizedExecutor(nodes, sink, make_algorithm("gathering", n))
        assert executor.run_many(trials) == expected


class TestCommittedIndexMatrix:
    def test_stacks_blocks_with_padding(self):
        nodes = list(range(6))
        long = make_adversary("uniform", nodes, seed=1, sink=0)
        trace = VehicularGridTrace(
            vehicle_count=6, grid_size=3, steps=10, seed=2
        ).build()
        short = TraceReplayAdversary(trace, nodes=list(trace.nodes))
        matrix_i, matrix_j, lengths = (
            CommittedBlockAdversary.committed_index_matrix(
                [long, short], 0, max(40, short.trace_length + 5)
            )
        )
        assert matrix_i.shape == matrix_j.shape
        assert matrix_i.shape[0] == 2
        assert lengths[0] == matrix_i.shape[1]
        assert lengths[1] == short.trace_length
        # Padding beyond a short row is the pad value, valid cells are not.
        assert (matrix_i[1, int(lengths[1]):] == -1).all()
        expected_i, expected_j = long.committed_index_block(0, int(lengths[0]))
        assert (matrix_i[0] == expected_i).all()
        assert (matrix_j[0] == expected_j).all()

    def test_per_row_stops(self):
        nodes = list(range(5))
        adversaries = [
            make_adversary("uniform", nodes, seed=s, sink=0) for s in (1, 2, 3)
        ]
        matrix_i, _, lengths = CommittedBlockAdversary.committed_index_matrix(
            adversaries, 10, [30, 10, 25]
        )
        assert list(lengths) == [20, 0, 15]
        assert matrix_i.shape[1] == 20

    def test_stop_count_mismatch_rejected(self):
        nodes = list(range(4))
        adversaries = [make_adversary("uniform", nodes, seed=1, sink=0)]
        with pytest.raises(ConfigurationError):
            CommittedBlockAdversary.committed_index_matrix(
                adversaries, 0, [10, 20]
            )


class TestSweepPaths:
    """The sim layer routes engine='vectorized' everywhere."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_run_sweep_cell_matches_reference(self, family):
        factory = lambda n: Waiting()
        cell = run_sweep_cell(
            factory, 12, 4, master_seed=11, engine="vectorized",
            adversary=family,
        )
        serial = sweep_random_adversary(
            factory, ns=[12], trials=4, master_seed=11,
            engine="reference", adversary=family,
        )
        assert cell == serial.points[0].trials

    def test_batched_sweep_vectorized(self):
        factory = lambda n: WaitingGreedy(tau=optimal_tau(n))
        batched = sweep_adversary_batched(
            factory, ns=[8, 12], trials=3, master_seed=5, engine="vectorized",
        )
        serial = sweep_random_adversary(
            factory, ns=[8, 12], trials=3, master_seed=5, engine="reference",
        )
        for batched_point, serial_point in zip(batched.points, serial.points):
            assert batched_point.trials == serial_point.trials

    def test_parallel_batched_cells_match_serial(self):
        factory = lambda n: Gathering()
        serial = sweep_random_adversary(
            factory, ns=[8, 10, 12], trials=3, master_seed=2, engine="fast",
        )
        parallel = parallel_sweep(
            factory, ns=[8, 10, 12], trials=3, master_seed=2,
            engine="vectorized", workers=2, batched=True,
        )
        assert parallel.ns == serial.ns
        for parallel_point, serial_point in zip(parallel.points, serial.points):
            assert parallel_point.trials == serial_point.trials

    def test_block_size_threads_through_cell(self):
        factory = lambda n: Gathering()
        default = run_sweep_cell(
            factory, 10, 3, master_seed=1, engine="vectorized"
        )
        tuned = run_sweep_cell(
            factory, 10, 3, master_seed=1, engine="vectorized", block_size=128
        )
        assert tuned == default

"""Differential and unit tests for the trial-vectorized engine.

The contract under test: :class:`~repro.core.vector_execution.
VectorizedExecutor` is **exactly** interchangeable with the reference
executor — same :class:`~repro.core.execution.ExecutionResult` including
the transmission log, seed for seed — for **every registered algorithm**
(all of which now carry decision kernels) under every committed adversary
family (uniform / zipf / hub / waypoint / community / trace replay).  The
few shapes no kernel can mirror (adaptive providers, mis-shaped oracles,
``enforce_oblivious`` runs, shared RNG instances) fall back to the fast
engine — exactly, and *observably*: every fallback carries a reason in
``VectorizedExecutor.last_fallbacks`` and batched sweep cells warn.
"""

import warnings

import numpy as np
import pytest

from repro.adversaries import TraceReplayAdversary, make_adversary
from repro.adversaries.committed import CommittedBlockAdversary
from repro.algorithms.gathering import Gathering
from repro.algorithms.kernels import KERNELS, get_kernel
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.algorithm import registry
from repro.core.data import MAX
from repro.core.execution import Executor
from repro.core.exceptions import ConfigurationError
from repro.core.fast_execution import FastExecutor
from repro.core.interaction import InteractionSequence
from repro.core.vector_execution import EngineFallbackWarning, VectorizedExecutor
from repro.graph.traces import VehicularGridTrace
from repro.sim.batch import run_sweep_cell, sweep_adversary_batched
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import (
    build_knowledge_for_random_run,
    build_trial_adversary,
    default_horizon,
    execute_random_trial,
    sweep_random_adversary,
)

FAMILIES = ("uniform", "zipf", "hub", "waypoint", "community")
#: Algorithms with a registered decision kernel — every registered
#: algorithm, since PR 7 closed the spanning_tree / full_knowledge /
#: future_broadcast gap.
KERNELIZED = sorted(KERNELS)
#: The algorithms whose kernels were the last to land (the knowledge-heavy
#: trio) — called out separately for the zero-fallback acceptance tests.
KNOWLEDGE_HEAVY = ("spanning_tree", "full_knowledge", "future_broadcast")


def make_algorithm(name: str, n: int):
    kwargs = {}
    if name == "waiting_greedy":
        kwargs["tau"] = optimal_tau(n)
    elif name in ("coin_flip_gathering", "random_receiver"):
        kwargs["seed"] = 20_16
    return registry.create(name, **kwargs)


def run_engine(engine_cls, name, n, seed, sink=0, family="uniform",
               block_size=None):
    """One committed-adversary trial through an explicit engine class."""
    algorithm = make_algorithm(name, n)
    nodes = list(range(n))
    horizon = default_horizon(algorithm, n)
    adversary = build_trial_adversary(family, nodes, seed, horizon, sink, None)
    knowledge, committed = build_knowledge_for_random_run(
        algorithm, adversary, nodes, sink, horizon
    )
    source = committed if committed is not None else adversary
    kwargs = {} if block_size is None else {"block_size": block_size}
    executor = engine_cls(nodes, sink, algorithm, knowledge=knowledge, **kwargs)
    return executor.run(source, max_interactions=horizon)


class TestKernelRegistry:
    def test_every_registered_algorithm_has_a_kernel(self):
        for name in registry.names():
            assert get_kernel(name) is not None, name

    def test_unknown_algorithm_raises_listing_registered_kernels(self):
        with pytest.raises(KeyError) as excinfo:
            get_kernel("no_such_algorithm")
        message = str(excinfo.value)
        assert "no_such_algorithm" in message
        for name in KERNELS:
            assert name in message, name


class TestKernelVsObjectDifferential:
    """Kernel decisions == object decisions, end to end, per family."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("name", KERNELIZED)
    def test_kernel_matches_object_form(self, family, name):
        for seed in (0, 1, 2):
            reference = run_engine(Executor, name, 13, seed, family=family)
            vectorized = run_engine(
                VectorizedExecutor, name, 13, seed, family=family
            )
            assert vectorized == reference, (family, name, seed)

    @pytest.mark.parametrize("name", KERNELIZED)
    def test_trace_replay_family(self, name):
        trace = VehicularGridTrace(
            vehicle_count=9, grid_size=4, steps=400, seed=3
        ).build()
        nodes = list(trace.nodes)

        def run(engine_cls):
            algorithm = make_algorithm(name, len(nodes))
            adversary = TraceReplayAdversary(trace)
            # The standard sim-layer oracle assembly works for any committed
            # adversary, trace replay included.
            knowledge, committed = build_knowledge_for_random_run(
                algorithm, adversary, nodes, trace.sink, trace.length
            )
            source = committed if committed is not None else adversary
            return engine_cls(
                nodes, trace.sink, algorithm, knowledge=knowledge
            ).run(source, max_interactions=trace.length)

        assert run(VectorizedExecutor) == run(Executor)

    @pytest.mark.parametrize("name", ("gathering", "waiting"))
    def test_non_default_sink_and_shapes(self, name):
        for n, sink in ((5, 2), (9, 8), (17, 4)):
            reference = run_engine(Executor, name, n, seed=7, sink=sink)
            vectorized = run_engine(VectorizedExecutor, name, n, seed=7, sink=sink)
            assert vectorized == reference, (name, n, sink)

    def test_sequence_source(self):
        """Finite committed sequences run through the kernel path too."""
        nodes = list(range(10))
        adversary = make_adversary("uniform", nodes, seed=5, sink=0)
        sequence = adversary.committed_prefix(600)
        for algorithm_cls in (Gathering, Waiting):
            reference = Executor(nodes, 0, algorithm_cls()).run(sequence)
            vectorized = VectorizedExecutor(nodes, 0, algorithm_cls()).run(sequence)
            assert vectorized == reference, algorithm_cls

    def test_initial_payloads_and_aggregation(self):
        nodes = list(range(8))
        adversary = make_adversary("uniform", nodes, seed=9, sink=0)
        sequence = adversary.committed_prefix(400)
        payloads = {node: float(node) * 1.5 for node in nodes}
        reference = Executor(nodes, 0, Gathering(), aggregation=MAX).run(
            sequence, initial_payloads=payloads
        )
        vectorized = VectorizedExecutor(nodes, 0, Gathering(), aggregation=MAX).run(
            sequence, initial_payloads=payloads
        )
        assert vectorized == reference
        assert vectorized.sink_payload == max(payloads.values())

    @pytest.mark.parametrize("block_size", (64, 1000, 4096, 1 << 17))
    def test_block_size_independence(self, block_size):
        """Block boundaries are consumption windows, never semantics."""
        for name in ("gathering", "waiting", "waiting_greedy"):
            reference = run_engine(Executor, name, 14, seed=3)
            vectorized = run_engine(
                VectorizedExecutor, name, 14, seed=3, block_size=block_size
            )
            assert vectorized == reference, (name, block_size)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorizedExecutor(list(range(4)), 0, Gathering(), block_size=0)

    def test_unbounded_provider_requires_horizon(self):
        adversary = make_adversary("uniform", list(range(6)), seed=0, sink=0)
        with pytest.raises(ConfigurationError):
            VectorizedExecutor(list(range(6)), 0, Gathering()).run(adversary)


class _UnregisteredGathering(Gathering):
    """A behavioural clone of Gathering whose name owns no kernel."""

    name = "unregistered_probe"


class TestFallback:
    """The few trial shapes the kernels cannot mirror run through the fast
    engine — exactly, and with an observable per-trial reason."""

    def test_unregistered_algorithm_falls_back_with_reason(self):
        nodes = list(range(10))
        horizon = default_horizon(Gathering(), 10)

        def run(engine_cls):
            adversary = build_trial_adversary(
                "uniform", nodes, 1, horizon, 0, None
            )
            executor = engine_cls(nodes, 0, _UnregisteredGathering())
            return executor, executor.run(adversary, max_interactions=horizon)

        executor, vectorized = run(VectorizedExecutor)
        _, reference = run(Executor)
        assert vectorized == reference
        assert executor.last_fallback_count == 1
        (reason,) = executor.last_fallback_reasons
        assert "unregistered_probe" in reason
        assert "registered kernels" in reason
        # The catalog in the reason names every actual kernel.
        for name in KERNELS:
            assert name in reason, name

    def test_mismatched_oracle_sink_falls_back(self):
        """A meetTime oracle about a *different* sink cannot be mirrored."""
        from repro.knowledge import KnowledgeBundle, MeetTimeKnowledge

        nodes = list(range(12))
        for seed in range(4):
            def run(engine_cls):
                adversary = make_adversary("uniform", nodes, seed=seed, sink=0)
                knowledge = KnowledgeBundle(
                    MeetTimeKnowledge(adversary, 3, horizon=600, strict=False)
                )
                executor = engine_cls(
                    nodes, 0, WaitingGreedy(tau=50), knowledge=knowledge
                )
                return executor, executor.run(adversary, max_interactions=600)

            vec_executor, vectorized = run(VectorizedExecutor)
            _, reference = run(Executor)
            assert vectorized == reference, seed
            # The kernel's rejection message survives into the report.
            (reason,) = vec_executor.last_fallback_reasons
            assert reason.startswith("kernel precondition failed:"), reason
            assert "different sink" in reason

    def test_adversary_node_mismatch_reports_reason(self):
        """An adversary naming nodes outside the executor's set routes to
        the fallback with a reason, then behaves exactly like the reference
        engine (crash or survive)."""
        executor_nodes = [0, 1, 2, 3]

        def run(engine_cls):
            adversary = make_adversary(
                "uniform", [0, 1, 2, 3, 4], seed=0, sink=0
            )
            executor = engine_cls(executor_nodes, 0, Gathering())
            try:
                return executor, ("ok", executor.run(
                    adversary, max_interactions=200
                ))
            except Exception as exc:
                return executor, ("error", type(exc).__name__)

        vec_executor, vectorized = run(VectorizedExecutor)
        _, reference = run(Executor)
        assert vectorized == reference
        assert vec_executor.last_fallback_reasons == (
            "adversary node set is not a subset of the executor's node set",
        )

    def test_sequence_with_foreign_node_falls_back(self):
        """A sequence naming nodes outside the instance must behave like the
        per-interaction engines (which only fail if the run reaches it)."""
        sequence = InteractionSequence.from_pairs([(0, 1), (0, 2), (0, 99)])
        nodes = [0, 1, 2]
        reference = Executor(nodes, 0, Gathering()).run(sequence)
        executor = VectorizedExecutor(nodes, 0, Gathering())
        vectorized = executor.run(sequence)
        assert vectorized == reference
        assert vectorized.terminated
        assert executor.last_fallback_reasons == (
            "interaction sequence mentions nodes outside the executor's "
            "node set",
        )

    def test_adaptive_provider_falls_back(self):
        from repro.adversaries.constructions import Theorem1Adversary

        nodes = ["a", "b", "s"]
        reference = Executor(nodes, "s", Gathering()).run(
            Theorem1Adversary(), max_interactions=500
        )
        executor = VectorizedExecutor(nodes, "s", Gathering())
        vectorized = executor.run(Theorem1Adversary(), max_interactions=500)
        assert vectorized == reference
        (reason,) = executor.last_fallback_reasons
        assert "adaptive" in reason

    def test_enforce_oblivious_falls_back(self):
        result = run_engine(Executor, "gathering", 10, seed=2)
        nodes = list(range(10))
        adversary = build_trial_adversary(
            "uniform", nodes, 2, default_horizon(Gathering(), 10), 0, None
        )
        executor = VectorizedExecutor(
            nodes, 0, Gathering(), enforce_oblivious=True
        )
        vectorized = executor.run(
            adversary, max_interactions=default_horizon(Gathering(), 10)
        )
        assert vectorized == result
        (reason,) = executor.last_fallback_reasons
        assert "enforce_oblivious" in reason

    def test_shared_rng_algorithm_instance_falls_back(self):
        """One RNG-bearing instance shared by several trials must not enter
        the lockstep: interleaving rows would consume the shared stream in
        a different order than sequential per-trial execution."""
        from repro.algorithms.random_baseline import RandomReceiver
        from repro.core.fast_execution import BatchTrial

        n, sink = 14, 0
        nodes = list(range(n))
        horizon = default_horizon(RandomReceiver(), n)

        def batch(algorithm):
            trials = []
            for seed in (3, 4, 5):
                adversary = build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                )
                trials.append(
                    BatchTrial(source=adversary, max_interactions=horizon)
                )
            return trials

        shared_fast = RandomReceiver(seed=99)
        expected = FastExecutor(nodes, sink, shared_fast).run_many(
            batch(shared_fast)
        )
        shared_vec = RandomReceiver(seed=99)
        executor = VectorizedExecutor(nodes, sink, shared_vec)
        actual = executor.run_many(batch(shared_vec))
        assert actual == expected
        assert executor.last_fallback_count == 3
        for reason in executor.last_fallback_reasons:
            assert "shared across 3 trials" in reason
        # Distinct per-trial instances do take the kernel path and agree too.
        per_trial_fast = [
            BatchTrial(
                source=build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                ),
                max_interactions=horizon,
                algorithm=RandomReceiver(seed=seed),
            )
            for seed in (3, 4, 5)
        ]
        per_trial_vec = [
            BatchTrial(
                source=build_trial_adversary(
                    "uniform", nodes, seed, horizon, sink, None
                ),
                max_interactions=horizon,
                algorithm=RandomReceiver(seed=seed),
            )
            for seed in (3, 4, 5)
        ]
        assert (
            VectorizedExecutor(nodes, sink, RandomReceiver(seed=0)).run_many(
                per_trial_vec
            )
            == FastExecutor(nodes, sink, RandomReceiver(seed=0)).run_many(
                per_trial_fast
            )
        )

    def test_mixed_batch_preserves_order(self):
        """Heterogeneous algorithms interleave in one batch — and, now that
        every algorithm has a kernel, all of them take the lockstep."""
        from repro.core.fast_execution import BatchTrial

        n, sink = 11, 0
        nodes = list(range(n))
        names = ["gathering", "spanning_tree", "waiting", "full_knowledge"]
        trials = []
        expected = []
        for position, name in enumerate(names):
            algorithm = make_algorithm(name, n)
            horizon = default_horizon(algorithm, n)
            adversary = build_trial_adversary(
                "uniform", nodes, 40 + position, horizon, sink, None
            )
            knowledge, committed = build_knowledge_for_random_run(
                algorithm, adversary, nodes, sink, horizon
            )
            source = committed if committed is not None else adversary
            trials.append(
                BatchTrial(
                    source=source,
                    max_interactions=horizon,
                    algorithm=algorithm,
                    knowledge=knowledge,
                )
            )
            algorithm2 = make_algorithm(name, n)
            adversary2 = build_trial_adversary(
                "uniform", nodes, 40 + position, horizon, sink, None
            )
            knowledge2, committed2 = build_knowledge_for_random_run(
                algorithm2, adversary2, nodes, sink, horizon
            )
            source2 = committed2 if committed2 is not None else adversary2
            expected.append(
                Executor(nodes, sink, algorithm2, knowledge=knowledge2).run(
                    source2, max_interactions=horizon
                )
            )
        executor = VectorizedExecutor(nodes, sink, make_algorithm("gathering", n))
        assert executor.run_many(trials) == expected
        assert executor.last_fallback_count == 0


class TestFallbackReporting:
    """The silent-downgrade bugfix: batched cells surface every fallback."""

    def test_cell_with_fallbacks_warns_and_tags_metrics(self, monkeypatch):
        """A pre-fix fallback cell (kernel artificially removed) now reports:
        one warning per cell, and a reason tag on every affected trial."""
        from repro.algorithms import kernels as kernels_module

        monkeypatch.delitem(kernels_module.KERNELS, "spanning_tree")
        factory = lambda n: make_algorithm("spanning_tree", n)
        with pytest.warns(EngineFallbackWarning, match=r"4 of 4 trials"):
            metrics = run_sweep_cell(
                factory, 10, 4, master_seed=3, engine="vectorized"
            )
        assert len(metrics) == 4
        for trial_metrics in metrics:
            reason = trial_metrics.extra["engine_fallback"]
            assert "spanning_tree" in reason
            assert "registered kernels" in reason

    @pytest.mark.parametrize("name", KNOWLEDGE_HEAVY)
    def test_newly_kerneled_cells_run_with_zero_fallbacks(self, name):
        """Acceptance: the knowledge-heavy trio runs trial-vectorized with
        fallback_count == 0 on the default sweep, metric-identical to the
        reference engine, without warnings or metric tags."""
        factory = lambda n: make_algorithm(name, n)
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineFallbackWarning)
            metrics = run_sweep_cell(
                factory, 12, 5, master_seed=7, engine="vectorized"
            )
        assert all(
            "engine_fallback" not in trial_metrics.extra
            for trial_metrics in metrics
        )
        reference = run_sweep_cell(
            factory, 12, 5, master_seed=7, engine="reference"
        )
        assert metrics == reference

    @pytest.mark.parametrize("name", KNOWLEDGE_HEAVY)
    def test_zero_fallbacks_at_executor_level(self, name):
        """The executor's own counter agrees: no trial left the lockstep."""
        algorithm = make_algorithm(name, 12)
        nodes = list(range(12))
        horizon = default_horizon(algorithm, 12)
        adversary = build_trial_adversary("uniform", nodes, 0, horizon, 0, None)
        knowledge, committed = build_knowledge_for_random_run(
            algorithm, adversary, nodes, 0, horizon
        )
        source = committed if committed is not None else adversary
        executor = VectorizedExecutor(nodes, 0, algorithm, knowledge=knowledge)
        executor.run(source, max_interactions=horizon)
        assert executor.last_fallback_count == 0
        assert executor.last_fallback_reasons == ()

    def test_fast_engine_cells_report_nothing(self):
        """Fallback telemetry is a vectorized-engine concept; fast cells
        carry no tags."""
        factory = lambda n: make_algorithm("spanning_tree", n)
        metrics = run_sweep_cell(factory, 10, 3, master_seed=1, engine="fast")
        assert all(
            "engine_fallback" not in trial_metrics.extra
            for trial_metrics in metrics
        )


class TestCommittedIndexMatrix:
    def test_stacks_blocks_with_padding(self):
        nodes = list(range(6))
        long = make_adversary("uniform", nodes, seed=1, sink=0)
        trace = VehicularGridTrace(
            vehicle_count=6, grid_size=3, steps=10, seed=2
        ).build()
        short = TraceReplayAdversary(trace, nodes=list(trace.nodes))
        matrix_i, matrix_j, lengths = (
            CommittedBlockAdversary.committed_index_matrix(
                [long, short], 0, max(40, short.trace_length + 5)
            )
        )
        assert matrix_i.shape == matrix_j.shape
        assert matrix_i.shape[0] == 2
        assert lengths[0] == matrix_i.shape[1]
        assert lengths[1] == short.trace_length
        # Padding beyond a short row is the pad value, valid cells are not.
        assert (matrix_i[1, int(lengths[1]):] == -1).all()
        expected_i, expected_j = long.committed_index_block(0, int(lengths[0]))
        assert (matrix_i[0] == expected_i).all()
        assert (matrix_j[0] == expected_j).all()

    def test_per_row_stops(self):
        nodes = list(range(5))
        adversaries = [
            make_adversary("uniform", nodes, seed=s, sink=0) for s in (1, 2, 3)
        ]
        matrix_i, _, lengths = CommittedBlockAdversary.committed_index_matrix(
            adversaries, 10, [30, 10, 25]
        )
        assert list(lengths) == [20, 0, 15]
        assert matrix_i.shape[1] == 20

    def test_stop_count_mismatch_rejected(self):
        nodes = list(range(4))
        adversaries = [make_adversary("uniform", nodes, seed=1, sink=0)]
        with pytest.raises(ConfigurationError):
            CommittedBlockAdversary.committed_index_matrix(
                adversaries, 0, [10, 20]
            )


class TestSweepPaths:
    """The sim layer routes engine='vectorized' everywhere."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_run_sweep_cell_matches_reference(self, family):
        factory = lambda n: Waiting()
        cell = run_sweep_cell(
            factory, 12, 4, master_seed=11, engine="vectorized",
            adversary=family,
        )
        serial = sweep_random_adversary(
            factory, ns=[12], trials=4, master_seed=11,
            engine="reference", adversary=family,
        )
        assert cell == serial.points[0].trials

    def test_batched_sweep_vectorized(self):
        factory = lambda n: WaitingGreedy(tau=optimal_tau(n))
        batched = sweep_adversary_batched(
            factory, ns=[8, 12], trials=3, master_seed=5, engine="vectorized",
        )
        serial = sweep_random_adversary(
            factory, ns=[8, 12], trials=3, master_seed=5, engine="reference",
        )
        for batched_point, serial_point in zip(batched.points, serial.points):
            assert batched_point.trials == serial_point.trials

    def test_parallel_batched_cells_match_serial(self):
        factory = lambda n: Gathering()
        serial = sweep_random_adversary(
            factory, ns=[8, 10, 12], trials=3, master_seed=2, engine="fast",
        )
        parallel = parallel_sweep(
            factory, ns=[8, 10, 12], trials=3, master_seed=2,
            engine="vectorized", workers=2, batched=True,
        )
        assert parallel.ns == serial.ns
        for parallel_point, serial_point in zip(parallel.points, serial.points):
            assert parallel_point.trials == serial_point.trials

    def test_block_size_threads_through_cell(self):
        factory = lambda n: Gathering()
        default = run_sweep_cell(
            factory, 10, 3, master_seed=1, engine="vectorized"
        )
        tuned = run_sweep_cell(
            factory, 10, 3, master_seed=1, engine="vectorized", block_size=128
        )
        assert tuned == default

"""Property tests for the adversarial-search mutation operators.

Every operator of :mod:`repro.search.mutations` must, on any valid
committed schedule:

* emit a valid committed sequence (the family invariant's machine check
  passes: int64 dense indices in range, no self-interactions, length
  preserved);
* emit a concrete, RNG-free record whose replay via
  :func:`~repro.search.mutations.apply_mutation` reproduces the mutated
  schedule bit-for-bit (lineage determinism);
* preserve oracle consistency — a
  :class:`~repro.adversaries.mobility.TraceReplayAdversary` built from the
  mutated schedule answers ``next_meeting`` (the ``meetTime``/``future``
  oracles' substrate) exactly like a naive scan of the mutated arrays;
* replay transmission-identically across the reference, fast and
  vectorized engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from strategies import committed_schedules, common_settings

from repro.algorithms.gathering import Gathering
from repro.core.execution import Executor
from repro.core.fast_execution import FastExecutor
from repro.core.vector_execution import VectorizedExecutor
from repro.search.mutations import (
    OPERATORS,
    MutationContext,
    MutationError,
    MutationInvariantError,
    MutationRecord,
    Schedule,
    apply_mutation,
    default_operator_weights,
    invariant_for,
    materialize_base,
    mutate,
    propose_mutation,
)

pytestmark = pytest.mark.search


def _context(schedule: Schedule) -> MutationContext:
    return MutationContext(sink_index=0, horizon=schedule.length)


def _invariant(schedule: Schedule):
    return invariant_for("uniform", schedule.n, schedule.length)


def _mutate_with_op(schedule: Schedule, op: str, seed: int):
    """Propose exactly one ``op`` mutation (weights pin the choice)."""
    rng = np.random.Generator(np.random.PCG64(seed))
    donor_rng = np.random.Generator(np.random.PCG64(seed + 1))
    donor_i = schedule.i.copy()
    donor_rng.shuffle(donor_i)
    donor = Schedule(i=donor_i, j=schedule.j.copy(), n=schedule.n)
    # A shuffled donor may collide i==j somewhere; retarget j to dodge.
    collision = donor.i == donor.j
    fixed_j = donor.j.copy()
    fixed_j[collision] = (donor.j[collision] + 1) % donor.n
    still = donor.i == fixed_j
    fixed_j[still] = (fixed_j[still] + 1) % donor.n
    donor = Schedule(i=donor.i, j=fixed_j, n=donor.n)
    record = propose_mutation(
        schedule,
        rng,
        _context(schedule),
        donor=donor,
        weights={op: 1.0},
    )
    assert record.op == op
    return apply_mutation(schedule, record), record


class TestOperatorValidity:
    @pytest.mark.parametrize("op", OPERATORS)
    @common_settings
    @given(schedule=committed_schedules(), seed=st.integers(0, 2**31 - 1))
    def test_output_is_valid_and_length_preserving(self, op, schedule, seed):
        mutated, record = _mutate_with_op(schedule, op, seed)
        invariant = _invariant(schedule)
        assert invariant.check(mutated) == []
        assert mutated.length == schedule.length
        assert mutated.n == schedule.n

    @pytest.mark.parametrize("op", OPERATORS)
    @common_settings
    @given(schedule=committed_schedules(), seed=st.integers(0, 2**31 - 1))
    def test_record_replays_rng_free(self, op, schedule, seed):
        mutated, record = _mutate_with_op(schedule, op, seed)
        # A record round-tripped through JSON replays identically — no RNG,
        # no context, nothing but the schedule and the record.
        replayed = apply_mutation(
            schedule, MutationRecord.from_json(record.to_json())
        )
        np.testing.assert_array_equal(replayed.i, mutated.i)
        np.testing.assert_array_equal(replayed.j, mutated.j)

    @pytest.mark.parametrize("op", OPERATORS)
    @common_settings
    @given(schedule=committed_schedules(), seed=st.integers(0, 2**31 - 1))
    def test_multiset_preservation_where_promised(self, op, schedule, seed):
        mutated, record = _mutate_with_op(schedule, op, seed)
        if op in ("swap", "delay", "advance"):
            # Reordering operators preserve the meeting multiset exactly.
            before = sorted(zip(schedule.i.tolist(), schedule.j.tolist()))
            after = sorted(zip(mutated.i.tolist(), mutated.j.tolist()))
            assert before == after
        elif op == "retarget":
            # Exactly one endpoint of exactly one slot changed.
            diff = (schedule.i != mutated.i) | (schedule.j != mutated.j)
            assert int(diff.sum()) == 1

    @common_settings
    @given(schedule=committed_schedules(), seed=st.integers(0, 2**31 - 1))
    def test_mutate_verifies_and_is_deterministic(self, schedule, seed):
        invariant = _invariant(schedule)
        outputs = []
        for _ in range(2):
            rng = np.random.Generator(np.random.PCG64(seed))
            mutated, record = mutate(
                schedule,
                rng,
                _context(schedule),
                invariant,
                donor=schedule,
                weights=default_operator_weights(),
            )
            outputs.append((mutated, record))
        (first, record_a), (second, record_b) = outputs
        assert record_a == record_b
        np.testing.assert_array_equal(first.i, second.i)
        np.testing.assert_array_equal(first.j, second.j)


class TestOracleConsistency:
    @pytest.mark.parametrize("op", OPERATORS)
    @common_settings
    @given(schedule=committed_schedules(max_nodes=6, max_len=48),
           seed=st.integers(0, 2**31 - 1))
    def test_next_meeting_matches_naive_scan(self, op, schedule, seed):
        from repro.adversaries.mobility import TraceReplayAdversary

        mutated, _ = _mutate_with_op(schedule, op, seed)
        adversary = TraceReplayAdversary.from_dense_indices(
            mutated.i, mutated.j, list(range(mutated.n)),
            max_horizon=mutated.length,
        )
        i, j = mutated.i.tolist(), mutated.j.tolist()
        for u in range(mutated.n):
            for v in range(mutated.n):
                if u == v:
                    continue
                for after in (-1, 0, mutated.length // 2, mutated.length):
                    expected = next(
                        (
                            t
                            for t in range(mutated.length)
                            if t > after and {i[t], j[t]} == {u, v}
                        ),
                        None,
                    )
                    assert adversary.next_meeting(u, v, after) == expected


class TestEngineReplayIdentity:
    @pytest.mark.parametrize("op", OPERATORS)
    @common_settings
    @given(schedule=committed_schedules(min_nodes=4, max_nodes=8,
                                        min_len=24, max_len=96),
           seed=st.integers(0, 2**31 - 1))
    def test_mutated_schedules_replay_identically(self, op, schedule, seed):
        from repro.adversaries.mobility import TraceReplayAdversary

        mutated, _ = _mutate_with_op(schedule, op, seed)
        nodes = list(range(mutated.n))
        horizon = mutated.length
        results = []
        for engine in (Executor, FastExecutor, VectorizedExecutor):
            adversary = TraceReplayAdversary.from_dense_indices(
                mutated.i, mutated.j, nodes, max_horizon=horizon
            )
            result = engine(nodes, 0, Gathering()).run(
                adversary, max_interactions=horizon
            )
            results.append(result)
        reference, fast, vectorized = results
        for other in (fast, vectorized):
            assert other.terminated == reference.terminated
            assert other.duration == reference.duration
            # Transmission-identical: same (time, sender, receiver) triples.
            assert [
                (t.time, t.sender, t.receiver) for t in other.transmissions
            ] == [
                (t.time, t.sender, t.receiver)
                for t in reference.transmissions
            ]


class TestInvariantHook:
    def test_verify_rejects_self_interaction(self):
        schedule = Schedule(
            i=np.array([0, 1], dtype=np.int64),
            j=np.array([1, 1], dtype=np.int64),
            n=3,
        )
        invariant = invariant_for("uniform", 3, 2)
        with pytest.raises(MutationInvariantError, match="self-interaction"):
            invariant.verify(schedule)

    def test_verify_rejects_length_change(self):
        schedule = Schedule(
            i=np.array([0], dtype=np.int64),
            j=np.array([1], dtype=np.int64),
            n=3,
        )
        with pytest.raises(MutationInvariantError, match="length-preserving"):
            invariant_for("uniform", 3, 2).verify(schedule)

    def test_verify_rejects_out_of_range(self):
        schedule = Schedule(
            i=np.array([0, 5], dtype=np.int64),
            j=np.array([1, 0], dtype=np.int64),
            n=3,
        )
        with pytest.raises(MutationInvariantError, match="indices"):
            invariant_for("uniform", 3, 2).verify(schedule)

    def test_community_intra_only_is_rejected(self):
        with pytest.raises(MutationError, match="seed-dependent"):
            invariant_for("community", 8, 16, {"p_intra": 1.0})

    def test_unknown_family_is_rejected(self):
        with pytest.raises(MutationError, match="unknown adversary family"):
            invariant_for("nope", 8, 16)

    def test_apply_rejects_malformed_records(self):
        schedule = Schedule(
            i=np.array([0, 1, 2], dtype=np.int64),
            j=np.array([1, 2, 0], dtype=np.int64),
            n=3,
        )
        bad = [
            MutationRecord("swap", {"a": 1, "b": 1}),
            MutationRecord("delay", {"a": 2, "b": 1}),
            MutationRecord("advance", {"a": 1, "b": 2}),
            MutationRecord("retarget", {"pos": 0, "endpoint": "i", "value": 1}),
            MutationRecord("splice", {"start": 2, "donor_i": [0, 1], "donor_j": [1, 2]}),
            MutationRecord("unknown", {}),
        ]
        for record in bad:
            with pytest.raises(MutationError):
                apply_mutation(schedule, record)


class TestMaterializeBase:
    @pytest.mark.parametrize("family", ["uniform", "zipf", "hub", "waypoint", "community"])
    def test_base_draws_satisfy_their_invariant(self, family):
        horizon = 64
        schedule = materialize_base(family, 8, 1234, horizon, sink=0)
        assert invariant_for(family, 8, horizon).check(schedule) == []

    def test_base_draws_are_seed_deterministic(self):
        a = materialize_base("uniform", 8, 99, 64)
        b = materialize_base("uniform", 8, 99, 64)
        np.testing.assert_array_equal(a.i, b.i)
        np.testing.assert_array_equal(a.j, b.j)

"""Unit tests for repro.graph.dynamic_graph."""

import networkx as nx
import pytest

from repro.core.exceptions import InvalidInteractionError
from repro.core.interaction import InteractionSequence
from repro.graph.dynamic_graph import DynamicGraph


@pytest.fixture
def triangle_graph():
    return DynamicGraph.create(
        [0, 1, 2], sink=0, interactions=[(0, 1), (1, 2), (0, 2), (0, 1)]
    )


class TestConstruction:
    def test_create_from_pairs(self, triangle_graph):
        assert triangle_graph.size == 3
        assert triangle_graph.length == 4
        assert triangle_graph.sink == 0

    def test_sink_must_be_a_node(self):
        with pytest.raises(InvalidInteractionError):
            DynamicGraph.create([0, 1], sink=5, interactions=[(0, 1)])

    def test_sequence_nodes_must_be_subset(self):
        with pytest.raises(InvalidInteractionError):
            DynamicGraph.create([0, 1], sink=0, interactions=[(0, 7)])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(InvalidInteractionError):
            DynamicGraph(nodes=(0, 0, 1), sink=0,
                         sequence=InteractionSequence.from_pairs([(0, 1)]))

    def test_non_sink_nodes(self, triangle_graph):
        assert triangle_graph.non_sink_nodes() == (1, 2)


class TestFootprint:
    def test_underlying_graph_edges(self, triangle_graph):
        footprint = triangle_graph.underlying_graph()
        assert set(map(frozenset, footprint.edges())) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({0, 2}),
        }

    def test_footprint_includes_isolated_nodes(self):
        graph = DynamicGraph.create([0, 1, 2, 3], sink=0, interactions=[(0, 1)])
        assert graph.underlying_graph().number_of_nodes() == 4
        assert not graph.is_footprint_connected()

    def test_connected_footprint(self, triangle_graph):
        assert triangle_graph.is_footprint_connected()

    def test_interaction_counts(self, triangle_graph):
        counts = triangle_graph.interaction_counts()
        assert counts[frozenset({0, 1})] == 2
        assert counts[frozenset({1, 2})] == 1

    def test_is_recurrent(self, triangle_graph):
        assert not triangle_graph.is_recurrent(min_occurrences=2)
        assert triangle_graph.is_recurrent(min_occurrences=1)

    def test_degree_in_footprint(self, triangle_graph):
        assert triangle_graph.degree_in_footprint(0) == 2

    def test_meeting_times_with_sink(self, triangle_graph):
        assert triangle_graph.meeting_times_with_sink(1) == [0, 3]
        assert triangle_graph.meeting_times_with_sink(2) == [2]


class TestTransformations:
    def test_prefix(self, triangle_graph):
        prefix = triangle_graph.prefix(2)
        assert prefix.length == 2
        assert prefix.size == 3

    def test_with_sequence(self, triangle_graph):
        other = triangle_graph.with_sequence(
            InteractionSequence.from_pairs([(1, 2)])
        )
        assert other.length == 1
        assert other.nodes == triangle_graph.nodes

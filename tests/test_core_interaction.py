"""Unit tests for repro.core.interaction."""

import pytest

from repro.core.exceptions import InvalidInteractionError
from repro.core.interaction import Interaction, InteractionSequence


class TestInteraction:
    def test_pair_is_unordered(self):
        assert Interaction(0, 1, 2) == Interaction(0, 2, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction(0, 3, 3)

    def test_negative_time_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction(-1, 0, 1)

    def test_involves(self):
        interaction = Interaction(5, "a", "b")
        assert interaction.involves("a")
        assert interaction.involves("b")
        assert not interaction.involves("c")

    def test_other(self):
        interaction = Interaction(5, "a", "b")
        assert interaction.other("a") == "b"
        assert interaction.other("b") == "a"

    def test_other_unknown_node_raises(self):
        with pytest.raises(InvalidInteractionError):
            Interaction(5, "a", "b").other("c")

    def test_at_time_restamps(self):
        assert Interaction(5, "a", "b").at_time(9).time == 9

    def test_pair_property(self):
        assert Interaction(0, 2, 7).pair == frozenset({2, 7})

    def test_mixed_type_identifiers_are_canonicalised(self):
        # Identifiers that cannot be compared directly fall back to repr order.
        first = Interaction(0, "a", 1)
        second = Interaction(0, 1, "a")
        assert first == second


class TestInteractionSequence:
    def test_from_pairs_assigns_times_as_indices(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        assert [i.time for i in sequence] == [0, 1]

    def test_len_and_getitem(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert len(sequence) == 3
        assert sequence[1].pair == frozenset({1, 2})

    def test_keep_times_requires_consecutive(self):
        with pytest.raises(InvalidInteractionError):
            InteractionSequence([Interaction(5, 0, 1)], keep_times=True)

    def test_keep_times_accepts_consecutive(self):
        sequence = InteractionSequence(
            [Interaction(0, 0, 1), Interaction(1, 1, 2)], keep_times=True
        )
        assert len(sequence) == 2

    def test_nodes(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (2, 3)])
        assert sequence.nodes() == {0, 1, 2, 3}

    def test_footprint_edges(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 0), (1, 2)])
        assert sequence.footprint_edges() == {frozenset({0, 1}), frozenset({1, 2})}

    def test_meetings_with(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 2), (0, 1)])
        assert sequence.meetings_with(0) == (0, 2, 3)
        assert sequence.meetings_with(1) == (0, 1, 3)

    def test_next_meeting(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 1)])
        assert sequence.next_meeting(0, 1, after=0) == 2
        assert sequence.next_meeting(0, 1, after=2) is None
        assert sequence.next_meeting(0, 2, after=-1) is None

    def test_count_pair(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 0), (1, 2)])
        assert sequence.count_pair(0, 1) == 2
        assert sequence.count_pair(1, 2) == 1
        assert sequence.count_pair(0, 2) == 0

    def test_slice_restamps_times(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        sliced = sequence.slice(1)
        assert len(sliced) == 2
        assert [i.time for i in sliced] == [0, 1]
        assert sliced[0].pair == frozenset({1, 2})

    def test_slice_with_stop(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert len(sequence.slice(0, 2)) == 2

    def test_window_preserves_times(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (2, 3)])
        window = sequence.window(1, 3)
        assert [i.time for i in window] == [1, 2]

    def test_concat(self):
        first = InteractionSequence.from_pairs([(0, 1)])
        second = InteractionSequence.from_pairs([(1, 2)])
        combined = first.concat(second)
        assert len(combined) == 2
        assert combined[1].pair == frozenset({1, 2})
        assert combined[1].time == 1

    def test_repeat(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        repeated = sequence.repeat(3)
        assert len(repeated) == 6
        assert repeated[4].pair == frozenset({0, 1})

    def test_repeat_negative_raises(self):
        with pytest.raises(ValueError):
            InteractionSequence.from_pairs([(0, 1)]).repeat(-1)

    def test_reversed(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        rev = sequence.reversed()
        assert rev[0].pair == frozenset({1, 2})
        assert rev[1].pair == frozenset({0, 1})

    def test_equality_and_hash(self):
        a = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        b = InteractionSequence.from_pairs([(0, 1), (1, 2)])
        c = InteractionSequence.from_pairs([(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_empty(self):
        assert len(InteractionSequence.empty()) == 0

    def test_pairs_property(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 1)])
        assert sequence.pairs == [(0, 1), (1, 2)]


class TestNextMeetingIndex:
    def test_repeated_queries_consistent_with_scan(self):
        sequence = InteractionSequence.from_pairs(
            [(0, 1), (1, 2), (0, 1), (0, 2), (0, 1), (1, 2)]
        )
        for after in range(-1, len(sequence) + 1):
            for pair in [(0, 1), (1, 2), (0, 2), (1, 0), (3, 4)]:
                expected = next(
                    (
                        i.time
                        for i in sequence
                        if i.time > after and i.pair == frozenset(pair)
                    ),
                    None,
                )
                assert sequence.next_meeting(pair[0], pair[1], after) == expected

    def test_count_pair_uses_index(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 0), (1, 2)])
        assert sequence.count_pair(0, 1) == 2
        assert sequence.count_pair(1, 2) == 1
        assert sequence.count_pair(0, 2) == 0

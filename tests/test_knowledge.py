"""Unit tests for the knowledge oracles and the bundle."""

import pytest

from repro.adversaries.randomized import RandomizedAdversary
from repro.core.exceptions import HorizonExhaustedError, KnowledgeError
from repro.core.interaction import InteractionSequence
from repro.knowledge import (
    FullKnowledge,
    FutureKnowledge,
    KnowledgeBundle,
    MeetTimeKnowledge,
    UnderlyingGraphKnowledge,
)


@pytest.fixture
def committed_sequence():
    return InteractionSequence.from_pairs(
        [(1, 2), (1, 0), (2, 0), (1, 2), (2, 0)]
    )


class TestMeetTime:
    def test_from_finite_sequence(self, committed_sequence):
        oracle = MeetTimeKnowledge(committed_sequence, sink=0, horizon=100)
        assert oracle.meet_time(1, 0) == 1
        assert oracle.meet_time(2, 0) == 2
        assert oracle.meet_time(2, 2) == 4

    def test_sink_meet_time_is_identity(self, committed_sequence):
        oracle = MeetTimeKnowledge(committed_sequence, sink=0, horizon=100)
        assert oracle.meet_time(0, 17) == 17

    def test_no_future_meeting_returns_beyond_horizon(self, committed_sequence):
        # "Never meets within the horizon" must compare strictly larger than
        # any legal tau (including tau == horizon), hence horizon + 1.
        oracle = MeetTimeKnowledge(committed_sequence, sink=0, horizon=50)
        assert oracle.meet_time(1, 1) == 51

    def test_strict_mode_raises(self, committed_sequence):
        oracle = MeetTimeKnowledge(committed_sequence, sink=0, horizon=50, strict=True)
        with pytest.raises(HorizonExhaustedError):
            oracle.meet_time(1, 1)

    def test_no_horizon_and_no_meeting_raises(self, committed_sequence):
        oracle = MeetTimeKnowledge(committed_sequence, sink=0)
        with pytest.raises(HorizonExhaustedError):
            oracle.meet_time(1, 1)

    def test_consistent_with_randomized_adversary(self):
        adversary = RandomizedAdversary(list(range(6)), seed=11)
        oracle = MeetTimeKnowledge(adversary, sink=0, horizon=10_000)
        answer = oracle.meet_time(3, 0)
        # The adversary must indeed schedule {3, 0} at the answered time.
        sequence = adversary.committed_prefix(answer + 1)
        assert sequence[answer].pair == frozenset({3, 0})
        for time in range(1, answer):
            assert sequence[time].pair != frozenset({3, 0})


class TestFuture:
    def test_future_lists_all_meetings(self, committed_sequence):
        oracle = FutureKnowledge(committed_sequence)
        assert oracle.future(1) == [(0, 2), (1, 0), (3, 2)]
        assert oracle.future(0) == [(1, 1), (2, 2), (4, 2)]

    def test_future_is_cached_but_copied(self, committed_sequence):
        oracle = FutureKnowledge(committed_sequence)
        first = oracle.future(1)
        first.append((99, 99))
        assert oracle.future(1) == [(0, 2), (1, 0), (3, 2)]


class TestUnderlyingGraph:
    def test_from_sequence(self, committed_sequence):
        oracle = UnderlyingGraphKnowledge([0, 1, 2], sequence=committed_sequence)
        graph = oracle.underlying_graph()
        assert graph.number_of_edges() == 3

    def test_from_edges(self):
        oracle = UnderlyingGraphKnowledge([0, 1, 2], edges=[(0, 1), (1, 2)])
        assert oracle.edge_set == {frozenset({0, 1}), frozenset({1, 2})}

    def test_exactly_one_source_required(self, committed_sequence):
        with pytest.raises(ValueError):
            UnderlyingGraphKnowledge([0, 1], edges=[(0, 1)], sequence=committed_sequence)
        with pytest.raises(ValueError):
            UnderlyingGraphKnowledge([0, 1])

    def test_returned_graph_is_a_copy(self):
        oracle = UnderlyingGraphKnowledge([0, 1], edges=[(0, 1)])
        graph = oracle.underlying_graph()
        graph.remove_edge(0, 1)
        assert oracle.underlying_graph().number_of_edges() == 1


class TestFullKnowledgeOracle:
    def test_full_sequence_returned(self, committed_sequence):
        oracle = FullKnowledge(committed_sequence)
        assert oracle.full_sequence() == committed_sequence


class TestBundle:
    def test_provides_and_dispatch(self, committed_sequence):
        bundle = KnowledgeBundle(
            MeetTimeKnowledge(committed_sequence, sink=0, horizon=100),
            FutureKnowledge(committed_sequence),
            FullKnowledge(committed_sequence),
            UnderlyingGraphKnowledge([0, 1, 2], sequence=committed_sequence),
        )
        assert bundle.provides() == {
            "meetTime",
            "future",
            "full_knowledge",
            "underlying_graph",
        }
        assert bundle.meet_time(1, 0) == 1
        assert bundle.future(2)
        assert bundle.full_sequence() == committed_sequence
        assert bundle.underlying_graph().number_of_edges() == 3

    def test_missing_oracle_raises(self, committed_sequence):
        bundle = KnowledgeBundle(FutureKnowledge(committed_sequence))
        with pytest.raises(KnowledgeError):
            bundle.meet_time(1, 0)

    def test_oracle_without_name_rejected(self):
        with pytest.raises(KnowledgeError):
            KnowledgeBundle(object())

    def test_has(self, committed_sequence):
        bundle = KnowledgeBundle(FutureKnowledge(committed_sequence))
        assert bundle.has("future")
        assert not bundle.has("meetTime")

"""Unit tests for the adversary framework and the randomized adversary."""

import pytest

from repro.adversaries.base import Adversary, EventuallyPeriodicAdversary
from repro.adversaries.randomized import RandomizedAdversary
from repro.core.exceptions import ConfigurationError
from repro.core.node import NetworkState


@pytest.fixture
def state3():
    return NetworkState([0, 1, 2], sink=0)


class TestEventuallyPeriodicAdversary:
    def test_prefix_then_cycle(self, state3):
        adversary = EventuallyPeriodicAdversary(
            prefix=[(0, 1)], cycle=[(1, 2), (2, 0)]
        )
        pairs = [
            adversary.interaction_at(t, state3).pair for t in range(5)
        ]
        assert pairs == [
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 0}),
            frozenset({1, 2}),
            frozenset({2, 0}),
        ]

    def test_finite_when_no_cycle(self, state3):
        adversary = EventuallyPeriodicAdversary(prefix=[(0, 1), (1, 2)])
        assert adversary.interaction_at(1, state3) is not None
        assert adversary.interaction_at(2, state3) is None
        assert adversary.is_finite
        assert len(adversary) == 2

    def test_len_of_infinite_adversary_raises(self):
        adversary = EventuallyPeriodicAdversary(prefix=[], cycle=[(0, 1)])
        with pytest.raises(ConfigurationError):
            len(adversary)

    def test_next_meeting_in_prefix(self):
        adversary = EventuallyPeriodicAdversary(
            prefix=[(0, 1), (1, 2), (0, 1)], cycle=[]
        )
        assert adversary.next_meeting(0, 1, after=0) == 2
        assert adversary.next_meeting(0, 1, after=2) is None

    def test_next_meeting_in_cycle(self):
        adversary = EventuallyPeriodicAdversary(
            prefix=[(0, 1)], cycle=[(1, 2), (2, 0)]
        )
        assert adversary.next_meeting(2, 0, after=0) == 2
        assert adversary.next_meeting(2, 0, after=2) == 4
        assert adversary.next_meeting(0, 1, after=0) is None

    def test_committed_prefix(self):
        adversary = EventuallyPeriodicAdversary(prefix=[(0, 1)], cycle=[(1, 2)])
        sequence = adversary.committed_prefix(4)
        assert len(sequence) == 4
        assert sequence[3].pair == frozenset({1, 2})

    def test_base_adversary_does_not_commit(self):
        with pytest.raises(ConfigurationError):
            Adversary().committed_prefix(5)


class TestRandomizedAdversary:
    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            RandomizedAdversary([0])

    def test_same_seed_same_sequence(self, state3):
        a = RandomizedAdversary([0, 1, 2], seed=5)
        b = RandomizedAdversary([0, 1, 2], seed=5)
        pairs_a = [a.interaction_at(t, state3).pair for t in range(50)]
        pairs_b = [b.interaction_at(t, state3).pair for t in range(50)]
        assert pairs_a == pairs_b

    def test_interaction_pairs_are_valid(self, state3):
        adversary = RandomizedAdversary([0, 1, 2], seed=1)
        for t in range(100):
            interaction = adversary.interaction_at(t, state3)
            assert interaction.u != interaction.v
            assert {interaction.u, interaction.v} <= {0, 1, 2}

    def test_committed_prefix_matches_replay(self, state3):
        adversary = RandomizedAdversary([0, 1, 2, 3], seed=9)
        played = [adversary.interaction_at(t, state3).pair for t in range(30)]
        committed = adversary.committed_prefix(30)
        assert [i.pair for i in committed] == played

    def test_next_meeting_consistency(self, state3):
        adversary = RandomizedAdversary(list(range(5)), seed=4)
        t = adversary.next_meeting(2, 0, after=0)
        assert t is not None
        sequence = adversary.committed_prefix(t + 1)
        assert sequence[t].pair == frozenset({2, 0})
        assert all(
            sequence[i].pair != frozenset({2, 0}) for i in range(1, t)
        )

    def test_next_meeting_respects_max_horizon(self):
        adversary = RandomizedAdversary([0, 1, 2], seed=4, max_horizon=10)
        # A pair that never appears in 10 draws returns None rather than
        # extending forever.
        answer = adversary.next_meeting(1, 2, after=9)
        assert answer is None or answer < 10

    def test_interaction_beyond_horizon_is_none(self, state3):
        adversary = RandomizedAdversary([0, 1, 2], seed=4, max_horizon=10)
        assert adversary.interaction_at(10, state3) is None

    def test_uniformity_over_pairs(self, state3):
        adversary = RandomizedAdversary(list(range(4)), seed=123)
        counts = {}
        for t in range(6000):
            pair = adversary.interaction_at(t, state3).pair
            counts[pair] = counts.get(pair, 0) + 1
        assert len(counts) == 6
        expected = 1000
        assert all(0.8 * expected < c < 1.2 * expected for c in counts.values())

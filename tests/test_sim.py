"""Unit tests for the simulation harness (seeding, metrics, results, runner)."""

import math

import pytest

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.execution import run_algorithm
from repro.core.interaction import InteractionSequence
from repro.sim.metrics import TrialMetrics, durations, mean_duration, termination_rate
from repro.sim.results import ExperimentReport, ResultTable
from repro.sim.runner import (
    default_horizon,
    run_random_trial,
    sweep_random_adversary,
)
from repro.sim.seeding import derive_seed, trial_seeds


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "exp", 10, 0) == derive_seed(1, "exp", 10, 0)

    def test_derive_seed_sensitive_to_components(self):
        seeds = {
            derive_seed(1, "exp", 10, 0),
            derive_seed(1, "exp", 10, 1),
            derive_seed(1, "exp", 11, 0),
            derive_seed(2, "exp", 10, 0),
            derive_seed(1, "other", 10, 0),
        }
        assert len(seeds) == 5

    def test_trial_seeds_distinct(self):
        seeds = trial_seeds(0, "exp", 16, 20)
        assert len(set(seeds)) == 20

    def test_seed_fits_in_63_bits(self):
        assert 0 <= derive_seed(99, "x") < 2 ** 63


class TestMetrics:
    def _metric(self, terminated, duration):
        return TrialMetrics(
            n=10,
            seed=0,
            algorithm="gathering",
            terminated=terminated,
            duration=duration,
            transmissions=9,
            horizon=1000,
            sink_coverage=10,
        )

    def test_from_result(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0)])
        result = run_algorithm(Gathering(), sequence, [0, 1, 2], sink=0)
        metrics = TrialMetrics.from_result(result, n=3, seed=1, algorithm="gathering", horizon=2)
        assert metrics.terminated
        assert metrics.duration == 2.0
        assert metrics.transmissions == 2

    def test_aggregations(self):
        sample = [self._metric(True, 10.0), self._metric(True, 20.0), self._metric(False, math.inf)]
        assert durations(sample) == [10.0, 20.0]
        assert termination_rate(sample) == pytest.approx(2 / 3)
        assert mean_duration(sample) == 15.0

    def test_mean_duration_all_failed(self):
        sample = [self._metric(False, math.inf)]
        assert math.isinf(mean_duration(sample))

    def test_termination_rate_empty_rejected(self):
        with pytest.raises(ValueError):
            termination_rate([])


class TestResultTable:
    def test_add_row_and_columns(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        assert table.column("a") == [1]
        with pytest.raises(ValueError):
            table.add_row(c=1)
        with pytest.raises(KeyError):
            table.column("missing")

    def test_markdown_rendering(self):
        table = ResultTable(title="demo", columns=["n", "value"])
        table.add_row(n=10, value=3.14159)
        table.add_note("a note")
        text = table.to_markdown()
        assert "### demo" in text
        assert "| n | value |" in text
        assert "3.142" in text
        assert "- a note" in text

    def test_csv_and_json(self):
        table = ResultTable(title="demo", columns=["n"])
        table.add_row(n=5)
        assert "n\r\n5" in table.to_csv() or "n\n5" in table.to_csv()
        assert '"title": "demo"' in table.to_json()

    def test_infinite_cells_render(self):
        table = ResultTable(title="demo", columns=["x"])
        table.add_row(x=math.inf)
        assert "inf" in table.to_markdown()

    def test_experiment_report_markdown(self):
        table = ResultTable(title="demo", columns=["n"])
        table.add_row(n=5)
        report = ExperimentReport(
            experiment_id="E0",
            claim="a claim",
            tables=[table],
            verdict=True,
            details={"k": 1.5},
        )
        text = report.to_markdown()
        assert "E0" in text
        assert "reproduced" in text
        assert "k: 1.500" in text


class TestRunner:
    def test_default_horizon_scales(self):
        assert default_horizon(Gathering(), 100) > default_horizon(Gathering(), 10)
        greedy = WaitingGreedy(tau=optimal_tau(50))
        assert default_horizon(greedy, 50) > 0

    def test_run_random_trial_deterministic(self):
        a = run_random_trial(Gathering(), 15, seed=7)
        b = run_random_trial(Gathering(), 15, seed=7)
        assert a.duration == b.duration
        assert a.terminated and b.terminated

    def test_run_random_trial_sink_validation(self):
        with pytest.raises(ValueError):
            run_random_trial(Gathering(), 10, seed=0, sink=99)

    def test_run_random_trial_with_knowledge_algorithm(self):
        metrics = run_random_trial(WaitingGreedy(tau=optimal_tau(15)), 15, seed=1)
        assert metrics.terminated

    def test_sweep_produces_points_in_order(self):
        sweep = sweep_random_adversary(
            lambda n: Gathering(), ns=[8, 12], trials=3, master_seed=1
        )
        assert sweep.ns == [8, 12]
        assert all(point.termination_rate == 1.0 for point in sweep.points)
        assert sweep.mean_durations[0] < sweep.mean_durations[1]

    def test_sweep_to_table(self):
        sweep = sweep_random_adversary(
            lambda n: Gathering(), ns=[8], trials=2, master_seed=1
        )
        table = sweep.to_table()
        assert table.rows[0]["n"] == 8
        assert table.rows[0]["trials"] == 2

"""Unit tests for repro.core.data (tokens and aggregation functions)."""

import pytest

from repro.core.data import (
    COUNT,
    DataToken,
    MAX,
    MIN,
    SUM,
    AggregationFunction,
    get_aggregation_function,
    is_associative_commutative,
)


class TestDataToken:
    def test_initial_token_has_single_origin(self):
        token = DataToken.initial("a")
        assert token.origins == frozenset({"a"})
        assert token.payload == 1.0

    def test_initial_token_custom_payload(self):
        token = DataToken.initial("a", payload=5.0)
        assert token.payload == 5.0

    def test_aggregate_unions_origins(self):
        token = DataToken.initial("a").aggregate(DataToken.initial("b"))
        assert token.origins == frozenset({"a", "b"})

    def test_aggregate_sums_payloads_by_default(self):
        token = DataToken.initial("a", 2.0).aggregate(DataToken.initial("b", 3.0))
        assert token.payload == 5.0

    def test_aggregate_custom_fold(self):
        token = DataToken.initial("a", 2.0).aggregate(
            DataToken.initial("b", 3.0), fold=max
        )
        assert token.payload == 3.0

    def test_aggregate_overlapping_origins_rejected(self):
        first = DataToken.initial("a")
        second = DataToken(origins=frozenset({"a", "b"}), payload=1.0)
        with pytest.raises(ValueError):
            first.aggregate(second)

    def test_covers(self):
        token = DataToken(origins=frozenset({"a", "b", "c"}), payload=3.0)
        assert token.covers({"a", "b"})
        assert not token.covers({"a", "d"})

    def test_len_is_origin_count(self):
        token = DataToken(origins=frozenset({"a", "b"}), payload=2.0)
        assert len(token) == 2

    def test_tokens_are_immutable(self):
        token = DataToken.initial("a")
        with pytest.raises(AttributeError):
            token.payload = 2.0

    def test_aggregation_is_commutative_on_origins(self):
        a, b = DataToken.initial("a"), DataToken.initial("b")
        assert a.aggregate(b).origins == b.aggregate(a).origins


class TestAggregationFunctions:
    def test_builtin_lookup(self):
        assert get_aggregation_function("sum") is SUM
        assert get_aggregation_function("min") is MIN
        assert get_aggregation_function("max") is MAX
        assert get_aggregation_function("count") is COUNT

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_aggregation_function("median")

    def test_sum_fold(self):
        assert SUM(2.0, 3.0) == 5.0

    def test_min_max_fold(self):
        assert MIN(2.0, 3.0) == 2.0
        assert MAX(2.0, 3.0) == 3.0

    def test_callable_protocol(self):
        custom = AggregationFunction("mul", lambda a, b: a * b, identity=1.0)
        assert custom(3.0, 4.0) == 12.0

    def test_is_associative_commutative_accepts_sum(self):
        assert is_associative_commutative(lambda a, b: a + b, [0.0, 1.0, 2.5, -3.0])

    def test_is_associative_commutative_rejects_subtraction(self):
        assert not is_associative_commutative(lambda a, b: a - b, [0.0, 1.0, 2.0])

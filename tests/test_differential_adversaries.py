"""Differential tests: fast engine vs reference across adversary families.

``tests/test_fast_execution.py`` pins engine equality for the uniform
randomized adversary; this suite extends the differential to every other
committed family — the non-uniform (Zipf/hub) adversary and the mobility
adversaries (random waypoint, community, trace replay) — across all
registered algorithms, multiple seeds and instance shapes, plus the batched
and multi-process sweep paths with a non-uniform adversary selected.  Both
optimised engines (``fast`` and trial-``vectorized``) are differential
against the reference executor.
"""

import pytest

from repro.adversaries import (
    CommunityAdversary,
    RandomWaypointAdversary,
    TraceReplayAdversary,
    make_adversary,
)
from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import optimal_tau
from repro.core.algorithm import registry
from repro.core.execution import Executor
from repro.core.fast_execution import FastExecutor
from repro.graph.traces import BodyAreaNetworkTrace, VehicularGridTrace
from repro.sim.batch import run_sweep_cell, sweep_adversary_batched
from repro.sim.parallel import sweep_random_adversary as parallel_sweep
from repro.sim.runner import execute_random_trial, sweep_random_adversary

FAMILIES = ("zipf", "hub", "waypoint", "community")
SEEDS = (0, 1, 2)
N = 12

# The knowledge-heavy algorithms that gained decision kernels; kept out of
# the slow marker so the default run always exercises their full matrix.
KNOWLEDGE_HEAVY = ("spanning_tree", "full_knowledge", "future_broadcast")


def make_algorithm(name: str, n: int):
    """Instantiate a registered algorithm with deterministic parameters."""
    kwargs = {}
    if name == "waiting_greedy":
        kwargs["tau"] = optimal_tau(n)
    elif name in ("coin_flip_gathering", "random_receiver"):
        kwargs["seed"] = 20_16
    return registry.create(name, **kwargs)


@pytest.mark.slow
class TestAllAlgorithmsAllFamilies:
    """The full registry against every committed family, both engines."""

    @pytest.mark.parametrize("engine", ("fast", "vectorized"))
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("name", sorted(registry.names()))
    def test_engines_agree(self, family, name, engine):
        for seed in SEEDS:
            reference, _ = execute_random_trial(
                make_algorithm(name, N), N, seed,
                engine="reference", adversary=family,
            )
            candidate, _ = execute_random_trial(
                make_algorithm(name, N), N, seed,
                engine=engine, adversary=family,
            )
            assert candidate == reference, (engine, family, name, seed)


class TestKnowledgeHeavyAlgorithms:
    """The newly kernelized algorithms across every committed family.

    The slow full-registry matrix (:class:`TestAllAlgorithmsAllFamilies`)
    covers these three too, but they only just gained kernels — so the
    default ``-m "not slow"`` run pins them differentially against the
    reference engine on every committed family and on trace replay.
    """

    @pytest.mark.parametrize("engine", ("fast", "vectorized"))
    @pytest.mark.parametrize("family", ("uniform",) + FAMILIES)
    @pytest.mark.parametrize("name", KNOWLEDGE_HEAVY)
    def test_engines_agree(self, name, family, engine):
        for seed in SEEDS:
            reference, _ = execute_random_trial(
                make_algorithm(name, N), N, seed,
                engine="reference", adversary=family,
            )
            candidate, _ = execute_random_trial(
                make_algorithm(name, N), N, seed,
                engine=engine, adversary=family,
            )
            assert candidate == reference, (engine, family, name, seed)

    @pytest.mark.parametrize("name", KNOWLEDGE_HEAVY)
    def test_trace_replay(self, name):
        from repro.core.vector_execution import VectorizedExecutor
        from repro.sim.runner import build_knowledge_for_random_run

        trace = VehicularGridTrace(
            vehicle_count=8, grid_size=4, steps=300, seed=6
        ).build()
        nodes = list(trace.nodes)

        def run(engine_cls):
            algorithm = make_algorithm(name, len(nodes))
            adversary = TraceReplayAdversary(trace)
            knowledge, committed = build_knowledge_for_random_run(
                algorithm, adversary, nodes, trace.sink, trace.length
            )
            source = committed if committed is not None else adversary
            return engine_cls(
                nodes, trace.sink, algorithm, knowledge=knowledge
            ).run(source, max_interactions=trace.length)

        reference = run(Executor)
        assert run(FastExecutor) == reference
        assert run(VectorizedExecutor) == reference


class TestShapes:
    """Equality must hold across instance shapes, not just one n."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("n", (5, 9, 17))
    def test_engines_agree_across_n(self, family, n):
        reference, _ = execute_random_trial(
            Gathering(), n, seed=7, engine="reference", adversary=family
        )
        fast, _ = execute_random_trial(
            Gathering(), n, seed=7, engine="fast", adversary=family
        )
        assert fast == reference

    @pytest.mark.parametrize("family", FAMILIES)
    def test_non_default_sink(self, family):
        reference, _ = execute_random_trial(
            Waiting(), 10, seed=3, sink=4, engine="reference", adversary=family
        )
        fast, _ = execute_random_trial(
            Waiting(), 10, seed=3, sink=4, engine="fast", adversary=family
        )
        assert fast == reference


class TestMobilityAdversaryCommitment:
    """Committed-future properties the oracles and engines rely on."""

    @pytest.mark.parametrize("family", ("waypoint", "community"))
    def test_query_pattern_independence(self, family):
        nodes = list(range(10))
        a = make_adversary(family, nodes, seed=11, sink=0)
        b = make_adversary(family, nodes, seed=11, sink=0)
        # Grow b through oracle queries first: the committed future must
        # not depend on which query forced the growth.
        b.next_meeting(3, 0, after=0)
        b.next_meeting(7, 2, after=100)
        assert a.committed_prefix(800) == b.committed_prefix(800)

    @pytest.mark.parametrize("family", ("waypoint", "community"))
    def test_next_meeting_matches_committed_prefix(self, family):
        adversary = make_adversary(family, list(range(8)), seed=5, sink=0)
        t = adversary.next_meeting(3, 0, after=10)
        assert t is not None and t > 10
        prefix = adversary.committed_prefix(t + 1)
        assert prefix[t].pair == frozenset((3, 0))
        # No earlier meeting in (10, t).
        for earlier in range(11, t):
            assert prefix[earlier].pair != frozenset((3, 0))

    def test_waypoint_static_node_contacts(self):
        adversary = RandomWaypointAdversary(
            list(range(8)), seed=2, static_node=0
        )
        prefix = adversary.committed_prefix(400)
        assert any(interaction.involves(0) for interaction in prefix)

    def test_community_structure(self):
        adversary = CommunityAdversary(
            list(range(12)), communities=3, p_intra=0.9, seed=4
        )
        assert adversary.community_of(0) == adversary.community_of(3)
        assert adversary.community_of(0) != adversary.community_of(1)
        prefix = adversary.committed_prefix(3000)
        intra = sum(
            1
            for interaction in prefix
            if adversary.community_of(interaction.u)
            == adversary.community_of(interaction.v)
        )
        # ~0.9 of contacts stay within a community; far above the ~3/11
        # a uniform adversary would produce.
        assert intra / len(prefix) > 0.6


class TestTraceReplayDifferential:
    @pytest.mark.parametrize(
        "build",
        (
            lambda: VehicularGridTrace(
                vehicle_count=8, grid_size=4, steps=200, seed=6
            ).build(),
            lambda: BodyAreaNetworkTrace(
                sensor_count=6, cycles=25, seed=6
            ).build(),
        ),
        ids=("vehicular", "body_area"),
    )
    def test_engines_agree_on_trace_replay(self, build):
        trace = build()
        nodes = list(trace.nodes)
        for algorithm_cls in (Gathering, Waiting):
            reference = Executor(nodes, trace.sink, algorithm_cls()).run(
                TraceReplayAdversary(trace), max_interactions=trace.length
            )
            fast = FastExecutor(nodes, trace.sink, algorithm_cls()).run(
                TraceReplayAdversary(trace), max_interactions=trace.length
            )
            direct = Executor(nodes, trace.sink, algorithm_cls()).run(
                trace.sequence
            )
            assert fast == reference == direct

    def test_replay_is_exact_and_exhausts(self):
        trace = VehicularGridTrace(
            vehicle_count=6, grid_size=4, steps=100, seed=1
        ).build()
        adversary = TraceReplayAdversary(trace)
        assert adversary.trace_length == trace.length
        assert adversary.committed_prefix(trace.length) == trace.sequence
        i, j = adversary.committed_index_block(0, trace.length + 500)
        assert len(i) == len(j) == trace.length
        assert adversary.interaction_at(trace.length, None) is None
        assert adversary.next_meeting(
            trace.nodes[1], trace.sink, after=trace.length
        ) is None


class TestSweepPathEquivalence:
    """Serial, parallel and batched sweeps must agree for every family."""

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ("fast", "vectorized"))
    @pytest.mark.parametrize("family", FAMILIES)
    def test_batched_sweep_reproduces_serial(self, family, engine):
        factory = lambda n: Gathering()
        serial = sweep_random_adversary(
            factory, ns=[8, 12], trials=4, master_seed=9,
            engine="reference", adversary=family,
        )
        batched = sweep_adversary_batched(
            factory, ns=[8, 12], trials=4, master_seed=9,
            engine=engine, adversary=family,
        )
        assert batched.algorithm == serial.algorithm
        assert batched.ns == serial.ns
        for point, expected in zip(batched.points, serial.points):
            assert point.trials == expected.trials

    def test_parallel_sweep_with_mobility_adversary(self):
        factory = lambda n: Waiting()
        serial = sweep_random_adversary(
            factory, ns=[10], trials=4, master_seed=3,
            engine="fast", adversary="community",
        )
        parallel = parallel_sweep(
            factory, ns=[10], trials=4, master_seed=3,
            engine="fast", adversary="community", workers=2,
        )
        assert parallel.points[0].trials == serial.points[0].trials

    def test_run_sweep_cell_knowledge_algorithm(self):
        from repro.algorithms.waiting_greedy import WaitingGreedy

        factory = lambda n: WaitingGreedy(tau=optimal_tau(n))
        cell = run_sweep_cell(
            factory, 10, 3, master_seed=5, engine="fast",
            adversary="waypoint",
        )
        serial = sweep_random_adversary(
            factory, ns=[10], trials=3, master_seed=5,
            engine="reference", adversary="waypoint",
        )
        assert cell == serial.points[0].trials

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError):
            execute_random_trial(Gathering(), 8, seed=0, adversary="rush_hour")
        with pytest.raises(ValueError):
            sweep_adversary_batched(
                lambda n: Gathering(), ns=[8], trials=2, adversary="rush_hour"
            )

"""Tests for the extension / ablation experiments (E17–E20, E23)."""

import pytest

from repro.experiments import (
    run_nonuniform_adversary,
    run_offline_crosscheck,
    run_tau_tradeoff,
    run_tree_order_ablation,
    run_vectorized_engine_check,
)
from repro.experiments.registry import EXPERIMENTS


class TestExtensionRegistry:
    def test_extensions_registered(self):
        assert {"E17", "E18", "E19", "E20", "E23"} <= set(EXPERIMENTS)


class TestOfflineCrosscheck:
    def test_fast_opt_matches_brute_force(self):
        report = run_offline_crosscheck(ns=(3, 4, 5), sequences_per_n=10, length=30)
        assert report.verdict
        for row in report.tables[0].rows:
            assert row["agreements"] == row["instances"]


class TestNonUniformAdversaryExperiment:
    def test_skew_shifts_the_bounds(self):
        report = run_nonuniform_adversary(n=24, trials=6)
        assert report.verdict
        means = report.details["means"]
        assert means["active_sink_hub"]["gathering"] < means["uniform"]["gathering"]
        assert means["lazy_sink"]["gathering"] > means["uniform"]["gathering"]


class TestTauTradeoff:
    def test_optimal_exponent_is_half(self):
        report = run_tau_tradeoff(n=40, trials=5)
        assert report.verdict
        means = report.details["means"]
        assert means[0.5] <= means[0.25]
        assert means[0.5] <= means[0.75]


class TestTreeOrderAblation:
    def test_cost_one_for_every_order(self):
        report = run_tree_order_ablation(n=10, trees=3, rounds=8)
        assert report.verdict
        assert all(row["cost"] == 1.0 for row in report.tables[0].rows)


class TestVectorizedEngineCheck:
    def test_vectorized_engine_is_metric_identical(self):
        report = run_vectorized_engine_check(n=18, trials=4)
        assert report.verdict
        for row in report.tables[0].rows:
            assert row["identical"], row
        # One row per (algorithm, adversary) combination.
        assert len(report.tables[0].rows) == 6
        assert report.details["engine"] == "vectorized"

    def test_fast_engine_also_passes_the_check(self):
        """The candidate engine is pluggable; fast must pass it too."""
        report = run_vectorized_engine_check(
            n=14, trials=3, candidate_engine="fast",
            adversaries=("uniform",),
        )
        assert report.verdict
        assert report.details["engine"] == "fast"

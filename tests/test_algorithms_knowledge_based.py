"""Unit tests for the full-knowledge and future-broadcast algorithms."""

import pytest

from repro.algorithms.full_knowledge import FullKnowledge
from repro.algorithms.future_broadcast import (
    FutureBroadcast,
    gossip_completion_time,
    reconstruct_sequence,
)
from repro.core.cost import cost_of_result
from repro.core.execution import Executor
from repro.core.interaction import InteractionSequence
from repro.graph.generators import round_robin_sequence, uniform_random_sequence
from repro.knowledge import FullKnowledge as FullKnowledgeOracle
from repro.knowledge import FutureKnowledge, KnowledgeBundle
from repro.offline.convergecast import opt
from repro.sim.runner import run_random_trial


class TestFullKnowledgeAlgorithm:
    def test_matches_offline_optimum_on_deterministic_sequence(self):
        sequence = InteractionSequence.from_pairs(
            [(2, 1), (3, 2), (1, 0), (2, 1), (1, 0), (3, 0)]
        )
        nodes = [0, 1, 2, 3]
        knowledge = KnowledgeBundle(FullKnowledgeOracle(sequence))
        executor = Executor(nodes, 0, FullKnowledge(), knowledge=knowledge)
        result = executor.run(sequence)
        assert result.terminated
        assert result.duration == opt(sequence, nodes, 0) + 1

    def test_matches_offline_optimum_on_random_sequences(self):
        nodes = list(range(7))
        for seed in range(4):
            sequence = uniform_random_sequence(nodes, 400, seed=seed)
            knowledge = KnowledgeBundle(FullKnowledgeOracle(sequence))
            executor = Executor(nodes, 0, FullKnowledge(), knowledge=knowledge)
            result = executor.run(sequence)
            assert result.terminated
            assert result.duration == opt(sequence, nodes, 0) + 1

    def test_cost_is_one(self):
        nodes = list(range(6))
        sequence = uniform_random_sequence(nodes, 300, seed=9)
        knowledge = KnowledgeBundle(FullKnowledgeOracle(sequence))
        executor = Executor(nodes, 0, FullKnowledge(), knowledge=knowledge)
        result = executor.run(sequence)
        assert cost_of_result(result, sequence, nodes, 0).cost == 1.0

    def test_never_transmits_when_aggregation_impossible(self):
        sequence = InteractionSequence.from_pairs([(1, 2), (1, 2)])
        nodes = [0, 1, 2]
        knowledge = KnowledgeBundle(FullKnowledgeOracle(sequence))
        executor = Executor(nodes, 0, FullKnowledge(), knowledge=knowledge)
        result = executor.run(sequence)
        assert not result.terminated
        assert result.transmission_count == 0

    def test_via_runner_on_randomized_adversary(self):
        metrics = run_random_trial(FullKnowledge(), 20, seed=3)
        assert metrics.terminated


class TestGossipHelpers:
    def test_reconstruct_sequence_from_futures(self):
        sequence = InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 2)])
        futures = {
            node: tuple(
                (i.time, i.other(node)) for i in sequence if i.involves(node)
            )
            for node in (0, 1, 2)
        }
        rebuilt = reconstruct_sequence(futures)
        assert rebuilt == sequence

    def test_reconstruct_empty(self):
        assert len(reconstruct_sequence({})) == 0

    def test_gossip_completion_time_line(self):
        # 0-1 then 1-2 then 2-3: node 0's knowledge reaches 3 at time 2, but
        # node 3's knowledge never reaches 0, so completion needs more.
        sequence = InteractionSequence.from_pairs(
            [(0, 1), (1, 2), (2, 3), (2, 1), (1, 0)]
        )
        completion = gossip_completion_time(sequence, [0, 1, 2, 3])
        assert completion == 4

    def test_gossip_completion_none_when_impossible(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        assert gossip_completion_time(sequence, [0, 1, 2]) is None


class TestFutureBroadcastAlgorithm:
    def test_terminates_on_round_robin(self):
        nodes = list(range(6))
        sequence = round_robin_sequence(nodes, rounds=12)
        knowledge = KnowledgeBundle(FutureKnowledge(sequence))
        executor = Executor(nodes, 0, FutureBroadcast(), knowledge=knowledge)
        result = executor.run(sequence)
        assert result.terminated

    def test_cost_at_most_n(self):
        nodes = list(range(6))
        n = len(nodes)
        sequence = round_robin_sequence(nodes, rounds=12)
        knowledge = KnowledgeBundle(FutureKnowledge(sequence))
        executor = Executor(nodes, 0, FutureBroadcast(), knowledge=knowledge)
        result = executor.run(sequence)
        breakdown = cost_of_result(result, sequence, nodes, 0)
        assert breakdown.cost <= n

    def test_no_data_transmission_before_gossip_completes(self):
        nodes = list(range(5))
        sequence = round_robin_sequence(nodes, rounds=10)
        knowledge = KnowledgeBundle(FutureKnowledge(sequence))
        executor = Executor(nodes, 0, FutureBroadcast(), knowledge=knowledge)
        result = executor.run(sequence)
        completion = gossip_completion_time(sequence, nodes)
        assert result.terminated
        assert all(t.time > completion for t in result.transmissions)

    def test_terminates_on_randomized_adversary(self):
        metrics = run_random_trial(FutureBroadcast(), 15, seed=8)
        assert metrics.terminated

    def test_does_not_terminate_without_enough_future(self):
        nodes = [0, 1, 2]
        sequence = InteractionSequence.from_pairs([(1, 2), (1, 2), (1, 2)])
        knowledge = KnowledgeBundle(FutureKnowledge(sequence))
        executor = Executor(nodes, 0, FutureBroadcast(), knowledge=knowledge)
        result = executor.run(sequence)
        assert not result.terminated
        assert result.transmission_count == 0

"""Unit tests for Waiting Greedy and its tau parameter."""

import math

import pytest

from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.execution import Executor, run_algorithm
from repro.core.interaction import InteractionSequence
from repro.core.node import NodeView
from repro.knowledge import KnowledgeBundle, MeetTimeKnowledge
from repro.sim.runner import run_random_trial


class StubMeetTimes:
    """Knowledge stub with fixed meet times per node."""

    def __init__(self, meet_times):
        self.meet_times = meet_times

    def meet_time(self, node, t):
        return self.meet_times[node]

    def provides(self):
        return frozenset({"meetTime"})


def view(node, knowledge, is_sink=False):
    return NodeView(id=node, is_sink=is_sink, owns_data=True, knowledge=knowledge)


class TestOptimalTau:
    def test_formula(self):
        n = 100
        assert optimal_tau(n) == math.ceil(n ** 1.5 * math.sqrt(math.log(n)))

    def test_constant_scales(self):
        assert optimal_tau(100, constant=2.0) == 2 * optimal_tau(100, constant=1.0)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            optimal_tau(1)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            WaitingGreedy(tau=-1)

    def test_with_optimal_tau_constructor(self):
        algorithm = WaitingGreedy.with_optimal_tau(50)
        assert algorithm.tau == optimal_tau(50)


class TestDecisionRule:
    def test_largest_meet_time_transmits_when_beyond_tau(self):
        knowledge = StubMeetTimes({1: 10, 2: 100})
        algorithm = WaitingGreedy(tau=50)
        # Node 2's next sink meeting (100) is beyond tau: it hands its data
        # to node 1, i.e. node 1 receives.
        assert algorithm.decide(view(1, knowledge), view(2, knowledge), 0) == 1

    def test_symmetric_case(self):
        knowledge = StubMeetTimes({1: 100, 2: 10})
        algorithm = WaitingGreedy(tau=50)
        assert algorithm.decide(view(1, knowledge), view(2, knowledge), 0) == 2

    def test_no_transmission_when_both_meet_before_tau(self):
        knowledge = StubMeetTimes({1: 10, 2: 20})
        algorithm = WaitingGreedy(tau=50)
        assert algorithm.decide(view(1, knowledge), view(2, knowledge), 0) is None

    def test_ties_resolved_towards_first(self):
        knowledge = StubMeetTimes({1: 80, 2: 80})
        algorithm = WaitingGreedy(tau=50)
        # m1 <= m2 and tau < m2: the first node receives.
        assert algorithm.decide(view(1, knowledge), view(2, knowledge), 0) == 1

    def test_sink_interaction_uses_identity_meet_time(self):
        knowledge = StubMeetTimes({5: 100})
        algorithm = WaitingGreedy(tau=50)
        sink_view = NodeView(id=0, is_sink=True, owns_data=True, knowledge=knowledge)
        assert algorithm.decide(sink_view, view(5, knowledge), 7) == 0

    def test_sink_interaction_no_transmission_when_peer_meets_soon(self):
        knowledge = StubMeetTimes({5: 20})
        algorithm = WaitingGreedy(tau=50)
        sink_view = NodeView(id=0, is_sink=True, owns_data=True, knowledge=knowledge)
        # The peer meets the sink again before tau, so (per the paper's
        # definition) no transmission happens yet.
        assert algorithm.decide(sink_view, view(5, knowledge), 7) is None

    def test_acts_as_gathering_after_tau(self):
        knowledge = StubMeetTimes({1: 60, 2: 70})
        algorithm = WaitingGreedy(tau=50)
        # At any time, since both meet times exceed tau, a transmission
        # happens; the node with the larger meet time transmits.
        assert algorithm.decide(view(1, knowledge), view(2, knowledge), 55) == 1


class TestEndToEnd:
    def test_requires_meet_time_oracle(self):
        from repro.core.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            Executor([0, 1], sink=0, algorithm=WaitingGreedy(tau=5))

    def test_terminates_on_committed_sequence(self):
        nodes = list(range(6))
        sequence_pairs = []
        # A crafted sequence: nodes 1..5 each meet the sink late; pairwise
        # meetings happen early so Waiting Greedy funnels data to the node
        # meeting the sink soonest.
        sequence_pairs += [(1, 2), (3, 4), (4, 5), (2, 3)]
        sequence_pairs += [(1, 0), (2, 0), (3, 0), (4, 0), (5, 0)]
        sequence = InteractionSequence.from_pairs(sequence_pairs)
        knowledge = KnowledgeBundle(
            MeetTimeKnowledge(sequence, sink=0, horizon=len(sequence))
        )
        executor = Executor(nodes, 0, WaitingGreedy(tau=3), knowledge=knowledge)
        result = executor.run(sequence)
        assert result.terminated

    def test_random_adversary_terminates_within_reasonable_bound(self):
        n = 25
        tau = optimal_tau(n, constant=2.0)
        metrics = run_random_trial(WaitingGreedy(tau=tau), n, seed=5)
        assert metrics.terminated
        assert metrics.duration <= 2 * tau

    def test_faster_than_gathering_at_moderate_n(self):
        from repro.algorithms.gathering import Gathering

        n = 60
        tau = optimal_tau(n, constant=2.0)
        greedy_durations = []
        gathering_durations = []
        # At n = 60 the asymptotic separation is still narrow, so the
        # comparison needs a sample wide enough that one lucky Gathering
        # seed cannot flip it.
        for seed in range(12):
            greedy_durations.append(
                run_random_trial(WaitingGreedy(tau=tau), n, seed=seed).duration
            )
            gathering_durations.append(
                run_random_trial(Gathering(), n, seed=seed).duration
            )
        assert sum(greedy_durations) < sum(gathering_durations)


class TestTauEqualsHorizonRegression:
    def test_never_meeting_node_still_transmits_at_tau_equal_horizon(self):
        # Node 2 never meets the sink within the horizon.  With the old
        # "never meets" sentinel equal to the horizon itself, setting
        # tau == horizon made `tau < meetTime` false, so node 2 silently
        # refused to transmit and the run could not terminate.
        nodes = [0, 1, 2]
        pairs = [(1, 2)] * 5 + [(1, 0)]
        sequence = InteractionSequence.from_pairs(pairs)
        horizon = len(sequence)
        knowledge = KnowledgeBundle(
            MeetTimeKnowledge(sequence, sink=0, horizon=horizon)
        )
        executor = Executor(
            nodes, 0, WaitingGreedy(tau=horizon), knowledge=knowledge
        )
        result = executor.run(sequence)
        assert result.terminated
        assert result.duration == horizon
        senders = [t.sender for t in result.transmissions]
        assert senders == [2, 1]

"""Unit tests for the algorithm base class and registry."""

import pytest

from repro.core.algorithm import (
    AlgorithmRegistry,
    DODAAlgorithm,
    KNOWLEDGE_MEET_TIME,
    registry,
)
from repro.core.exceptions import ConfigurationError


class DummyAlgorithm(DODAAlgorithm):
    name = "dummy_for_registry_tests"

    def decide(self, first, second, time):
        return None


class TestDODAAlgorithmBase:
    def test_decide_is_abstract(self):
        with pytest.raises(NotImplementedError):
            DODAAlgorithm().decide(None, None, 0)

    def test_validate_knowledge_ok_when_subset(self):
        algorithm = DummyAlgorithm()
        algorithm.validate_knowledge([KNOWLEDGE_MEET_TIME])

    def test_validate_knowledge_missing(self):
        class Needy(DODAAlgorithm):
            name = "needy"
            requires = frozenset({KNOWLEDGE_MEET_TIME})

            def decide(self, first, second, time):
                return None

        with pytest.raises(ConfigurationError):
            Needy().validate_knowledge([])

    def test_on_run_start_default_noop(self):
        DummyAlgorithm().on_run_start([0, 1], sink=0)


class TestRegistry:
    def test_register_and_get(self):
        local = AlgorithmRegistry()
        local.register(DummyAlgorithm)
        assert local.get("dummy_for_registry_tests") is DummyAlgorithm

    def test_register_requires_name(self):
        local = AlgorithmRegistry()

        class Unnamed(DODAAlgorithm):
            name = "abstract"

            def decide(self, first, second, time):
                return None

        with pytest.raises(ConfigurationError):
            local.register(Unnamed)

    def test_conflicting_names_rejected(self):
        local = AlgorithmRegistry()
        local.register(DummyAlgorithm)

        class Other(DODAAlgorithm):
            name = "dummy_for_registry_tests"

            def decide(self, first, second, time):
                return None

        with pytest.raises(ConfigurationError):
            local.register(Other)

    def test_reregistering_same_class_is_idempotent(self):
        local = AlgorithmRegistry()
        local.register(DummyAlgorithm)
        local.register(DummyAlgorithm)
        assert list(local.names()) == ["dummy_for_registry_tests"]

    def test_unknown_name_raises(self):
        local = AlgorithmRegistry()
        with pytest.raises(KeyError):
            local.get("does-not-exist")

    def test_create_instantiates(self):
        local = AlgorithmRegistry()
        local.register(DummyAlgorithm)
        instance = local.create("dummy_for_registry_tests")
        assert isinstance(instance, DummyAlgorithm)

    def test_global_registry_contains_paper_algorithms(self):
        names = set(registry.names())
        assert {
            "waiting",
            "gathering",
            "waiting_greedy",
            "spanning_tree",
            "future_broadcast",
            "full_knowledge",
        } <= names

    def test_global_registry_create_waiting_greedy_with_kwargs(self):
        algorithm = registry.create("waiting_greedy", tau=10)
        assert algorithm.tau == 10

"""Shared generators for the test suite (hypothesis strategies + RNG helpers).

Every test module that needs "a random committed schedule" or "a small
sweep spec" should draw it from here instead of rolling an ad-hoc
generator: one definition of what a valid schedule looks like (distinct
endpoints, dense indices in range) keeps the property tests honest when
the model changes.  The module deliberately has no pytest dependency —
it is importable from any test or tool.

Contents:

* :func:`interaction_sequences` — hypothesis composite: ``(n, sequence)``
  with pairwise-distinct endpoints (the executor-invariant workhorse).
* :func:`committed_schedules` — hypothesis composite: a
  :class:`repro.search.mutations.Schedule` (dense int64 index arrays),
  the representation the adversarial search mutates.
* :func:`sweep_specs` — hypothesis composite: small ``(ns, trials, seed)``
  sweep shapes for runner/campaign round-trip properties.
* :func:`random_sequence` / :func:`random_dense_pairs` — plain-RNG
  helpers for differential tests that iterate many cases imperatively.
* :data:`common_settings` — the suite's shared hypothesis settings.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.core.interaction import InteractionSequence

__all__ = [
    "committed_schedules",
    "common_settings",
    "interaction_sequences",
    "random_dense_pairs",
    "random_sequence",
    "sweep_specs",
]

common_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def interaction_sequences(draw, min_nodes=3, max_nodes=7, min_len=1, max_len=80):
    """A random node count and a random sequence of pairwise interactions."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    length = draw(st.integers(min_value=min_len, max_value=max_len))
    pairs = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 2))
        if v >= u:
            v += 1
        pairs.append((u, v))
    return n, InteractionSequence.from_pairs(pairs)


@st.composite
def committed_schedules(draw, min_nodes=4, max_nodes=10, min_len=8, max_len=96):
    """A random :class:`~repro.search.mutations.Schedule` (dense indices).

    The returned schedule satisfies exactly the family invariants the
    search's operators must preserve: one-dimensional int64 arrays of equal
    length, indices in ``[0, n)``, no self-interactions.
    """
    from repro.search.mutations import Schedule

    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    length = draw(st.integers(min_value=min_len, max_value=max_len))
    i: List[int] = []
    j: List[int] = []
    for _ in range(length):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 2))
        if v >= u:
            v += 1
        i.append(u)
        j.append(v)
    return Schedule(
        i=np.array(i, dtype=np.int64), j=np.array(j, dtype=np.int64), n=n
    )


@st.composite
def sweep_specs(draw, max_points=3, max_n=12, max_trials=4):
    """A small ``(ns, trials, seed)`` sweep shape (strictly increasing ns)."""
    points = draw(st.integers(min_value=1, max_value=max_points))
    ns = sorted(
        draw(
            st.sets(
                st.integers(min_value=2, max_value=max_n),
                min_size=points,
                max_size=points,
            )
        )
    )
    trials = draw(st.integers(min_value=1, max_value=max_trials))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return ns, trials, seed


def random_sequence(rng: random.Random, n: int, length: int) -> InteractionSequence:
    """A random interaction sequence from a plain :class:`random.Random`."""
    pairs = []
    for _ in range(length):
        u = rng.randrange(n)
        v = rng.randrange(n - 1)
        if v >= u:
            v += 1
        pairs.append((u, v))
    return InteractionSequence.from_pairs(pairs)


def random_dense_pairs(
    rng: random.Random, n: int, length: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Random dense index arrays with distinct endpoints (schedule shape)."""
    i = np.empty(length, dtype=np.int64)
    j = np.empty(length, dtype=np.int64)
    for k in range(length):
        u = rng.randrange(n)
        v = rng.randrange(n - 1)
        if v >= u:
            v += 1
        i[k] = u
        j[k] = v
    return i, j

"""Tests for the campaign spec, store and report layers."""

import json
import math

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignSpecError,
    CampaignStore,
    CampaignStoreError,
    CampaignStoreMismatch,
    build_campaign_report,
    campaign_status,
    load_campaign_spec,
    run_campaign,
    spec_from_dict,
    write_campaign_figures,
)
from repro.campaign.spec import algorithm_factory_for
from repro.campaign.store import metrics_to_record, record_to_metrics
from repro.cli import main
from repro.sim.metrics import TrialMetrics


def small_spec(**overrides):
    kwargs = dict(
        name="unit",
        algorithms=("gathering",),
        adversaries=("uniform",),
        ns=(8,),
        trials=2,
        engine="fast",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCampaignSpec:
    def test_validates_against_registries(self):
        with pytest.raises(CampaignSpecError, match="unknown algorithm"):
            small_spec(algorithms=("gathering", "quantum_flood"))
        with pytest.raises(CampaignSpecError, match="unknown adversary"):
            small_spec(adversaries=("rush_hour",))
        with pytest.raises(CampaignSpecError, match="unknown engine"):
            small_spec(engine="warp")
        with pytest.raises(CampaignSpecError, match="n must be >= 2"):
            small_spec(ns=(1,))
        with pytest.raises(CampaignSpecError, match="trials"):
            small_spec(trials=0)
        with pytest.raises(CampaignSpecError, match="at least one algorithm"):
            small_spec(algorithms=())
        with pytest.raises(CampaignSpecError, match="block_size"):
            small_spec(block_size=0)
        with pytest.raises(CampaignSpecError, match="unknown family"):
            small_spec(adversary_params={"rush_hour": {}})

    def test_hash_covers_result_fields_only(self):
        base = small_spec()
        assert base.spec_hash() == small_spec(engine="vectorized").spec_hash()
        assert base.spec_hash() == small_spec(description="notes").spec_hash()
        assert base.spec_hash() == small_spec(block_size=64).spec_hash()
        assert base.spec_hash() != small_spec(ns=(8, 10)).spec_hash()
        assert base.spec_hash() != small_spec(trials=3).spec_hash()
        assert base.spec_hash() != small_spec(master_seed=1).spec_hash()
        assert base.spec_hash() != small_spec(experiment="other").spec_hash()
        assert (
            base.spec_hash()
            != small_spec(adversary_params={"uniform": {}}).spec_hash()
        )

    def test_cells_deterministic_order_and_keys(self):
        spec = small_spec(
            algorithms=("gathering", "waiting"), adversaries=("uniform", "zipf"),
            ns=(8, 10),
        )
        cells = spec.cells()
        assert [c.label() for c in cells] == [
            "uniform/gathering/n=8",
            "uniform/gathering/n=10",
            "uniform/waiting/n=8",
            "uniform/waiting/n=10",
            "zipf/gathering/n=8",
            "zipf/gathering/n=10",
            "zipf/waiting/n=8",
            "zipf/waiting/n=10",
        ]
        assert len({c.key for c in cells}) == len(cells)
        assert cells == spec.cells()

    def test_algorithm_factory_for_waiting_greedy_fills_tau(self):
        algorithm = algorithm_factory_for("waiting_greedy")(16)
        assert algorithm.name == "waiting_greedy"
        with pytest.raises(CampaignSpecError):
            algorithm_factory_for("quantum_flood")

    def test_spec_from_dict_rejects_non_integer_fields(self):
        base = {"name": "x", "algorithms": ["gathering"], "ns": [8]}
        with pytest.raises(CampaignSpecError, match="must be an integer"):
            spec_from_dict({**base, "ns": ["8", "oops"]})
        with pytest.raises(CampaignSpecError, match="must be an integer"):
            spec_from_dict({**base, "trials": "many"})
        with pytest.raises(CampaignSpecError, match="must be an integer"):
            spec_from_dict({**base, "master_seed": [1]})

    def test_spec_from_dict_rejects_unknowns_and_missing(self):
        with pytest.raises(CampaignSpecError, match="unknown spec keys"):
            spec_from_dict({"name": "x", "algorithms": ["gathering"],
                            "ns": [8], "typo_key": 1})
        with pytest.raises(CampaignSpecError, match="missing required"):
            spec_from_dict({"name": "x"})
        with pytest.raises(CampaignSpecError, match="must be a list"):
            spec_from_dict({"name": "x", "algorithms": "gathering", "ns": [8]})


class TestSpecLoading:
    def test_toml_and_json_round_trip(self, tmp_path):
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(
            'name = "c"\nalgorithms = ["gathering"]\nns = [8, 10]\n'
            'trials = 2\nengine = "fast"\n'
            '[adversary_params.zipf]\nexponent = 1.5\n'
        )
        json_path = tmp_path / "c.json"
        json_path.write_text(json.dumps({
            "name": "c", "algorithms": ["gathering"], "ns": [8, 10],
            "trials": 2, "engine": "fast",
            "adversary_params": {"zipf": {"exponent": 1.5}},
        }))
        toml_spec = load_campaign_spec(toml_path)
        json_spec = load_campaign_spec(json_path)
        assert toml_spec == json_spec
        assert toml_spec.spec_hash() == json_spec.spec_hash()
        assert toml_spec.params_for("zipf") == {"exponent": 1.5}

    def test_loader_errors_are_clear(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="not found"):
            load_campaign_spec(tmp_path / "absent.toml")
        bad = tmp_path / "bad.toml"
        bad.write_text("name = [unterminated")
        with pytest.raises(CampaignSpecError, match="could not parse"):
            load_campaign_spec(bad)
        weird = tmp_path / "spec.yaml"
        weird.write_text("name: x")
        with pytest.raises(CampaignSpecError, match="unsupported spec format"):
            load_campaign_spec(weird)

    def test_shipped_example_specs_load(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        smoke = load_campaign_spec(examples / "campaign_smoke.toml")
        assert len(smoke.cells()) == 2
        paper = load_campaign_spec(examples / "campaign_paper.toml")
        assert paper.engine == "vectorized"
        assert len(paper.cells()) == 3 * 3 * 5


class TestStoreRecords:
    def test_metrics_record_round_trip(self):
        metrics = TrialMetrics(
            n=8, seed=42, algorithm="gathering", terminated=True,
            duration=123.0, transmissions=7, horizon=600, sink_coverage=8,
        )
        record = metrics_to_record(metrics, trial=3, adversary="uniform")
        assert record["trial"] == 3 and record["adversary"] == "uniform"
        assert record_to_metrics(record) == metrics

    def test_unterminated_duration_round_trips_as_inf(self):
        metrics = TrialMetrics(
            n=8, seed=1, algorithm="waiting", terminated=False,
            duration=math.inf, transmissions=2, horizon=100, sink_coverage=3,
        )
        record = metrics_to_record(metrics, trial=0, adversary="uniform")
        assert record["duration"] is None
        json.dumps(record)  # must stay JSON-serialisable
        assert record_to_metrics(record).duration == math.inf


class TestStore:
    def test_initialize_rejects_spec_mismatch(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(small_spec(), store_dir)
        with pytest.raises(CampaignStoreMismatch, match="differs"):
            CampaignStore(store_dir).initialize(small_spec(ns=(8, 10)))
        # Same hash, different engine: accepted (engine excluded from hash).
        CampaignStore(store_dir).initialize(small_spec(engine="vectorized"))

    def test_read_manifest_errors(self, tmp_path):
        with pytest.raises(CampaignStoreError, match="no campaign manifest"):
            CampaignStore(tmp_path / "nowhere").read_manifest()
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json")
        with pytest.raises(CampaignStoreError, match="unreadable"):
            CampaignStore(broken).read_manifest()
        hollow = tmp_path / "hollow"
        hollow.mkdir()
        (hollow / "manifest.json").write_text("[]")
        with pytest.raises(CampaignStoreError, match="no 'cells'"):
            CampaignStore(hollow).read_manifest()

    def test_load_cell_missing_shard(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(small_spec(), store_dir)
        with pytest.raises(CampaignStoreError, match="missing cell shard"):
            CampaignStore(store_dir).load_cell("feedfacedeadbeef")

    def test_manifest_records_version_and_engine(self, tmp_path):
        import repro

        store_dir = tmp_path / "store"
        run_campaign(small_spec(), store_dir)
        manifest = CampaignStore(store_dir).read_manifest()
        assert manifest["repro_version"] == repro.__version__
        entry = next(iter(manifest["cells"].values()))
        assert entry["engine"] == "fast"
        assert entry["records"] == 2


class TestReport:
    def test_report_counts_missing_cells(self, tmp_path):
        spec = small_spec(ns=(8, 10))
        store_dir = tmp_path / "store"
        run_campaign(spec, store_dir, max_cells=1)
        report = build_campaign_report(store_dir)
        assert report.complete_cells == 1 and report.total_cells == 2
        assert any("not aggregated" in note for note in report.notes)
        assert "campaign run" in report.to_markdown()

    def test_figures_gracefully_skip_without_matplotlib(self, tmp_path):
        store_dir = tmp_path / "store"
        run_campaign(small_spec(), store_dir)
        written = write_campaign_figures(store_dir, tmp_path / "figs")
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            # None (not []) distinguishes "matplotlib missing" from
            # "nothing plottable" — the CLI words its note off this.
            assert written is None
        else:
            assert len(written) == 1


class TestCampaignCLI:
    def test_run_status_report(self, tmp_path, capsys):
        spec_path = tmp_path / "c.toml"
        spec_path.write_text(
            'name = "cli"\nalgorithms = ["gathering"]\nns = [8]\ntrials = 2\n'
        )
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert main(["campaign", "status", str(store)]) == 0
        assert "complete=1" in capsys.readouterr().out
        report_file = tmp_path / "report.md"
        assert main(["campaign", "report", str(store),
                     "--output", str(report_file)]) == 0
        assert "interactions to termination" in report_file.read_text()

    def test_run_incomplete_exit_code(self, tmp_path, capsys):
        spec_path = tmp_path / "c.toml"
        spec_path.write_text(
            'name = "cli"\nalgorithms = ["gathering"]\nns = [8, 10]\ntrials = 2\n'
        )
        store = tmp_path / "store"
        assert main(["campaign", "run", str(spec_path), "--store", str(store),
                     "--max-cells", "1"]) == 3
        assert main(["campaign", "run", str(spec_path), "--store", str(store)]) == 0

    def test_spec_file_resolves_default_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec_path = tmp_path / "c.toml"
        spec_path.write_text(
            'name = "defaulted"\nalgorithms = ["gathering"]\nns = [8]\ntrials = 2\n'
        )
        assert main(["campaign", "run", str(spec_path)]) == 0
        assert (tmp_path / "campaigns" / "defaulted").is_dir()
        assert main(["campaign", "status", str(spec_path)]) == 0
        assert "defaulted" in capsys.readouterr().out

    def test_clear_cli_errors(self, tmp_path, capsys):
        # Campaign CLI failures exit 2 with one clear stderr line — no
        # SystemExit from argparse, no usage noise, never a traceback.
        assert main(["campaign", "run", str(tmp_path / "absent.toml")]) == 2
        err = capsys.readouterr().err
        assert "campaign error" in err and "Traceback" not in err
        assert main(["campaign", "status", str(tmp_path / "not-a-store")]) == 2
        err = capsys.readouterr().err
        assert "campaign error" in err and "Traceback" not in err

"""Unit tests for the contact-trace substrates and sequence properties."""

import pytest

from repro.graph.properties import (
    aggregation_feasible,
    distinct_sink_contacts_within,
    footprint_is_tree,
    mean_intercontact_time,
    sink_contact_times,
    summarize,
    temporal_eccentricity_to_sink,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traces import (
    BodyAreaNetworkTrace,
    RandomWaypointTrace,
    VehicularGridTrace,
)
from repro.core.exceptions import ConfigurationError


class TestBodyAreaNetworkTrace:
    def test_build_produces_dynamic_graph(self):
        graph = BodyAreaNetworkTrace(sensor_count=6, cycles=10, seed=0).build()
        assert graph.sink == "hub"
        assert graph.size == 7
        assert graph.length == 60

    def test_reproducible_with_seed(self):
        a = BodyAreaNetworkTrace(sensor_count=6, cycles=5, seed=1).build()
        b = BodyAreaNetworkTrace(sensor_count=6, cycles=5, seed=1).build()
        assert a.sequence == b.sequence

    def test_aggregation_is_feasible(self):
        graph = BodyAreaNetworkTrace(sensor_count=6, cycles=10, seed=0).build()
        assert aggregation_feasible(graph)

    def test_too_few_sensors_rejected(self):
        with pytest.raises(ConfigurationError):
            BodyAreaNetworkTrace(sensor_count=1).build()


class TestRandomWaypointTrace:
    def test_build_and_feasibility(self):
        graph = RandomWaypointTrace(node_count=10, steps=150, seed=2).build()
        assert graph.sink == 0
        assert graph.size == 10
        assert graph.length > 0
        assert aggregation_feasible(graph)

    def test_reproducible_with_seed(self):
        a = RandomWaypointTrace(node_count=8, steps=60, seed=5).build()
        b = RandomWaypointTrace(node_count=8, steps=60, seed=5).build()
        assert a.sequence == b.sequence

    def test_node_count_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWaypointTrace(node_count=1).build()


class TestVehicularGridTrace:
    def test_build_and_nodes(self):
        graph = VehicularGridTrace(vehicle_count=8, grid_size=4, steps=200, seed=3).build()
        assert graph.sink == "rsu"
        assert graph.size == 9
        assert graph.length > 0

    def test_reproducible_with_seed(self):
        a = VehicularGridTrace(vehicle_count=6, grid_size=4, steps=80, seed=9).build()
        b = VehicularGridTrace(vehicle_count=6, grid_size=4, steps=80, seed=9).build()
        assert a.sequence == b.sequence

    def test_grid_size_validation(self):
        with pytest.raises(ConfigurationError):
            VehicularGridTrace(grid_size=1).build()


class TestProperties:
    def test_footprint_is_tree(self):
        line = DynamicGraph.create([0, 1, 2], 0, [(0, 1), (1, 2)])
        triangle = DynamicGraph.create([0, 1, 2], 0, [(0, 1), (1, 2), (0, 2)])
        assert footprint_is_tree(line)
        assert not footprint_is_tree(triangle)

    def test_sink_contact_times_and_intercontact(self):
        graph = DynamicGraph.create([0, 1, 2], 0, [(0, 1), (1, 2), (0, 2), (0, 1)])
        times = sink_contact_times(graph)
        assert times == [0, 2, 3]
        assert mean_intercontact_time(times) == pytest.approx(1.5)
        assert mean_intercontact_time([4]) is None

    def test_summarize(self):
        graph = DynamicGraph.create([0, 1, 2], 0, [(0, 1), (1, 2), (0, 1)])
        stats = summarize(graph)
        assert stats.node_count == 3
        assert stats.interaction_count == 3
        assert stats.distinct_pairs == 2
        assert stats.footprint_is_tree
        assert stats.footprint_is_connected
        assert not stats.recurrent
        assert stats.sink_contact_count == 2

    def test_distinct_sink_contacts_within(self):
        graph = DynamicGraph.create(
            [0, 1, 2, 3], 0, [(0, 1), (0, 1), (0, 2), (0, 3)]
        )
        assert distinct_sink_contacts_within(graph, 2) == 1
        assert distinct_sink_contacts_within(graph, 4) == 3

    def test_temporal_eccentricity(self):
        graph = DynamicGraph.create([0, 1, 2], 0, [(2, 1), (1, 0)])
        ecc = temporal_eccentricity_to_sink(graph)
        assert ecc[2] == 1
        assert ecc[1] == 1

    def test_aggregation_infeasible_when_isolated(self):
        graph = DynamicGraph.create([0, 1, 2], 0, [(0, 1)])
        assert not aggregation_feasible(graph)

"""Integration tests spanning several subsystems.

These exercise the same paths the examples and benchmarks use: contact-trace
substrates feeding the executor, knowledge oracles assembled on top of
adversaries, and the cost measure evaluated on real runs.
"""

import math

import pytest

from repro.algorithms.full_knowledge import FullKnowledge
from repro.algorithms.gathering import Gathering
from repro.algorithms.spanning_tree import SpanningTreeAggregation
from repro.algorithms.waiting import Waiting
from repro.algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from repro.core.cost import cost_of_result
from repro.core.execution import Executor
from repro.graph.properties import aggregation_feasible, summarize
from repro.graph.traces import (
    BodyAreaNetworkTrace,
    RandomWaypointTrace,
    VehicularGridTrace,
)
from repro.knowledge import (
    FullKnowledge as FullKnowledgeOracle,
    KnowledgeBundle,
    MeetTimeKnowledge,
    UnderlyingGraphKnowledge,
)
from repro.offline.convergecast import opt


def run_on_trace(graph, algorithm, knowledge=None):
    executor = Executor(graph.nodes, graph.sink, algorithm, knowledge=knowledge)
    return executor.run(graph.sequence)


class TestBodyAreaNetworkScenario:
    @pytest.fixture(scope="class")
    def trace(self):
        return BodyAreaNetworkTrace(sensor_count=8, cycles=30, seed=7).build()

    def test_trace_supports_aggregation(self, trace):
        assert aggregation_feasible(trace)

    def test_gathering_aggregates_everything(self, trace):
        result = run_on_trace(trace, Gathering())
        assert result.terminated
        assert result.sink_coverage == trace.size

    def test_gathering_not_slower_than_waiting(self, trace):
        gathering = run_on_trace(trace, Gathering())
        waiting = run_on_trace(trace, Waiting())
        assert gathering.terminated
        if waiting.terminated:
            assert gathering.duration <= waiting.duration

    def test_full_knowledge_matches_offline_optimum(self, trace):
        knowledge = KnowledgeBundle(FullKnowledgeOracle(trace.sequence))
        result = run_on_trace(trace, FullKnowledge(), knowledge=knowledge)
        assert result.terminated
        assert result.duration == opt(trace.sequence, trace.nodes, trace.sink) + 1

    def test_cost_of_gathering_is_finite(self, trace):
        result = run_on_trace(trace, Gathering())
        breakdown = cost_of_result(result, trace.sequence, trace.nodes, trace.sink)
        assert not math.isinf(breakdown.cost)


class TestVehicularScenario:
    @pytest.fixture(scope="class")
    def trace(self):
        return VehicularGridTrace(vehicle_count=10, grid_size=4, steps=300, seed=11).build()

    def test_summary_statistics(self, trace):
        stats = summarize(trace)
        assert stats.node_count == 11
        assert stats.interaction_count == trace.length
        assert stats.sink_contact_count > 0

    def test_gathering_on_vehicular_trace(self, trace):
        result = run_on_trace(trace, Gathering())
        assert result.terminated

    def test_waiting_greedy_with_meet_time_oracle(self, trace):
        knowledge = KnowledgeBundle(
            MeetTimeKnowledge(trace.sequence, trace.sink, horizon=trace.length)
        )
        algorithm = WaitingGreedy(tau=trace.length // 3)
        result = run_on_trace(trace, algorithm, knowledge=knowledge)
        # The trace is long enough that the tau-bounded phase plus the
        # Gathering-like phase aggregates everything.
        assert result.terminated


class TestRandomWaypointScenario:
    @pytest.fixture(scope="class")
    def trace(self):
        return RandomWaypointTrace(node_count=12, steps=250, seed=5).build()

    def test_feasible_and_aggregates(self, trace):
        assert aggregation_feasible(trace)
        result = run_on_trace(trace, Gathering())
        assert result.terminated

    def test_spanning_tree_with_footprint_knowledge(self, trace):
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(trace.nodes, sequence=trace.sequence)
        )
        result = run_on_trace(trace, SpanningTreeAggregation(), knowledge=knowledge)
        # The footprint of a dense waypoint trace is far from a tree, so the
        # algorithm may or may not finish within the trace; what must hold is
        # that it never violates the model and transmits at most n-1 times.
        assert result.transmission_count <= trace.size - 1


class TestKnowledgeHierarchyOnOneSequence:
    def test_more_knowledge_is_never_slower(self):
        # On the same committed random sequence, the full-knowledge run is at
        # least as fast as Waiting Greedy, which is at least as fast as
        # Waiting (all compared when they terminate).
        from repro.graph.generators import uniform_random_sequence

        nodes = list(range(30))
        sink = 0
        sequence = uniform_random_sequence(nodes, 12_000, seed=13)
        tau = optimal_tau(len(nodes), constant=2.0)

        full = Executor(
            nodes,
            sink,
            FullKnowledge(),
            knowledge=KnowledgeBundle(FullKnowledgeOracle(sequence)),
        ).run(sequence)
        greedy = Executor(
            nodes,
            sink,
            WaitingGreedy(tau=tau),
            knowledge=KnowledgeBundle(
                MeetTimeKnowledge(sequence, sink, horizon=len(sequence))
            ),
        ).run(sequence)
        waiting = Executor(nodes, sink, Waiting()).run(sequence)

        assert full.terminated and greedy.terminated and waiting.terminated
        assert full.duration <= greedy.duration
        assert greedy.duration <= waiting.duration

"""Unit tests for repro.core.node (NetworkState and NodeView)."""

import pytest

from repro.core.data import MAX, DataToken
from repro.core.exceptions import KnowledgeError, ModelViolationError
from repro.core.node import NetworkState, NodeView


class TestNetworkStateConstruction:
    def test_every_node_starts_with_its_own_data(self):
        state = NetworkState([0, 1, 2], sink=0)
        for node in (0, 1, 2):
            assert state.owns_data(node)
            assert state.token_of(node).origins == frozenset({node})

    def test_sink_must_be_a_node(self):
        with pytest.raises(ModelViolationError):
            NetworkState([0, 1], sink=9)

    def test_duplicate_identifiers_rejected(self):
        with pytest.raises(ModelViolationError):
            NetworkState([0, 0, 1], sink=0)

    def test_single_node_rejected(self):
        with pytest.raises(ModelViolationError):
            NetworkState([0], sink=0)

    def test_initial_payloads(self):
        state = NetworkState([0, 1], sink=0, initial_payloads={1: 7.0})
        assert state.token_of(1).payload == 7.0
        assert state.token_of(0).payload == 1.0


class TestTransmissions:
    def test_transmit_moves_and_aggregates(self):
        state = NetworkState([0, 1, 2], sink=0)
        state.transmit(sender=2, receiver=1, time=0)
        assert not state.owns_data(2)
        assert state.token_of(1).origins == frozenset({1, 2})
        assert state.transmitted_at[2] == 0

    def test_transmit_payload_aggregation(self):
        state = NetworkState([0, 1, 2], sink=0, initial_payloads={1: 5.0, 2: 3.0},
                             aggregation=MAX)
        state.transmit(sender=2, receiver=1, time=0)
        assert state.token_of(1).payload == 5.0

    def test_sender_without_data_rejected(self):
        state = NetworkState([0, 1, 2], sink=0)
        state.transmit(sender=2, receiver=1, time=0)
        with pytest.raises(ModelViolationError):
            state.transmit(sender=2, receiver=0, time=1)

    def test_receiver_without_data_rejected(self):
        state = NetworkState([0, 1, 2], sink=0)
        state.transmit(sender=2, receiver=1, time=0)
        with pytest.raises(ModelViolationError):
            state.transmit(sender=1, receiver=2, time=1)

    def test_sink_never_transmits(self):
        state = NetworkState([0, 1], sink=0)
        with pytest.raises(ModelViolationError):
            state.transmit(sender=0, receiver=1, time=0)

    def test_self_transmission_rejected(self):
        state = NetworkState([0, 1], sink=0)
        with pytest.raises(ModelViolationError):
            state.transmit(sender=1, receiver=1, time=0)

    def test_aggregation_complete(self):
        state = NetworkState([0, 1, 2], sink=0)
        assert not state.is_aggregation_complete()
        state.transmit(sender=2, receiver=1, time=0)
        state.transmit(sender=1, receiver=0, time=1)
        assert state.is_aggregation_complete()
        assert state.sink_coverage() == 3

    def test_owners_and_remaining(self):
        state = NetworkState([0, 1, 2], sink=0)
        assert state.owners() == {0, 1, 2}
        assert state.remaining_data_count() == 2
        state.transmit(sender=1, receiver=0, time=0)
        assert state.owners() == {0, 2}
        assert state.remaining_data_count() == 1


class TestNodeView:
    def test_view_reflects_state(self):
        state = NetworkState([0, 1], sink=0)
        view = state.view(0)
        assert view.is_sink
        assert view.owns_data
        assert view.id == 0

    def test_view_memory_is_shared_with_state(self):
        state = NetworkState([0, 1], sink=0)
        view = state.view(1)
        view.memory["marker"] = 42
        assert state.memory[1]["marker"] == 42

    def test_meet_time_for_sink_is_identity(self):
        view = NodeView(id=0, is_sink=True, owns_data=True)
        assert view.meet_time(17) == 17

    def test_meet_time_without_oracle_raises(self):
        view = NodeView(id=1, is_sink=False, owns_data=True)
        with pytest.raises(KnowledgeError):
            view.meet_time(0)

    def test_future_without_oracle_raises(self):
        view = NodeView(id=1, is_sink=False, owns_data=True)
        with pytest.raises(KnowledgeError):
            view.future()

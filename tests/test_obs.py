"""Observability layer: collectors, export, sidecar, and isolation.

Two families of contracts (see ``docs/observability.md``):

* the machinery works — spans/counters/events record with pids and
  arguments, snapshots pickle and merge (the fork-pool path), the
  Chrome-trace export validates against its own schema, the telemetry
  sidecar round-trips and tolerates torn tail lines, and the ``repro
  trace`` / ``repro bench`` / ``campaign status`` CLI surfaces render;
* **telemetry is never result-determining** — metrics, campaign store
  bytes and search corpora are identical with tracing on and off, and a
  resumed campaign with a telemetry sidecar still matches a fresh run
  byte for byte.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.campaign import CampaignSpec, CampaignStore, campaign_status, run_campaign
from repro.obs import (
    NOOP,
    CollectorSnapshot,
    NoopCollector,
    RecordingCollector,
    TelemetryWriter,
    current_collector,
    latest_cell_records,
    now,
    read_telemetry,
    summarize_run,
    telemetry_path_for_store,
    to_chrome_trace,
    use_collector,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.batch import run_sweep_cell


def record_something(collector):
    """Emit one span (with a late-bound arg), one counter, one event."""
    with collector.span("phase.outer", engine="fast") as span:
        span.set(trials=3)
        collector.counter("phase.items", 7)
    collector.event("phase.marker", reason="test")


class TestCollectors:
    def test_default_collector_is_the_disabled_noop(self):
        assert current_collector() is NOOP
        assert NOOP.enabled is False

    def test_noop_span_is_shared_and_inert(self):
        noop = NoopCollector()
        first = noop.span("a", x=1)
        second = noop.span("b")
        assert first is second  # one shared null handle, no allocation
        with first as handle:
            handle.set(anything="ignored")
        noop.counter("c", 1.0)
        noop.event("e", k="v")
        noop.add_span("s", 0.0, 1.0)

    def test_use_collector_installs_and_restores(self):
        recording = RecordingCollector()
        with use_collector(recording) as installed:
            assert installed is recording
            assert current_collector() is recording
            inner = RecordingCollector()
            with use_collector(inner):
                assert current_collector() is inner
            assert current_collector() is recording
        assert current_collector() is NOOP

    def test_recording_captures_spans_counters_events(self):
        recording = RecordingCollector()
        record_something(recording)
        (span,) = recording.spans
        assert span.name == "phase.outer"
        assert dict(span.args) == {"engine": "fast", "trials": 3}
        assert span.end >= span.start and span.duration >= 0
        (counter,) = recording.counters
        assert counter.name == "phase.items" and counter.value == 7.0
        (event,) = recording.events
        assert event.name == "phase.marker"
        assert dict(event.args) == {"reason": "test"}
        assert span.pid == counter.pid == event.pid > 0

    def test_span_closes_on_exception(self):
        recording = RecordingCollector()
        with pytest.raises(RuntimeError):
            with recording.span("phase.fails"):
                raise RuntimeError("boom")
        (span,) = recording.spans
        assert span.name == "phase.fails"

    def test_add_span_records_premeasured_interval(self):
        recording = RecordingCollector()
        start = now()
        recording.add_span("phase.manual", start, start + 0.5, k="v")
        (span,) = recording.spans
        assert span.start == start and span.end == start + 0.5
        assert dict(span.args) == {"k": "v"}

    def test_snapshot_pickles_and_merges(self):
        recording = RecordingCollector()
        record_something(recording)
        snapshot = pickle.loads(pickle.dumps(recording.snapshot()))
        assert isinstance(snapshot, CollectorSnapshot)
        parent = RecordingCollector()
        parent.merge(snapshot)
        parent.merge(snapshot)
        assert len(parent.spans) == 2
        assert parent.spans[0] == recording.spans[0]


class TestChromeTrace:
    def test_export_schema_and_units(self):
        recording = RecordingCollector()
        record_something(recording)
        payload = to_chrome_trace(recording)
        assert payload["displayTimeUnit"] == "ms"
        by_phase = {event["ph"]: event for event in payload["traceEvents"]}
        assert set(by_phase) == {"X", "C", "i"}
        span = recording.spans[0]
        assert by_phase["X"]["ts"] == pytest.approx(span.start * 1e6)
        assert by_phase["X"]["dur"] == pytest.approx(span.duration * 1e6)
        assert by_phase["X"]["cat"] == "phase"
        assert by_phase["C"]["args"] == {"value": 7.0}
        assert by_phase["i"]["s"] == "t"

    def test_export_accepts_snapshot_and_sorts_spans(self):
        recording = RecordingCollector()
        recording.add_span("later", 2.0, 3.0)
        recording.add_span("earlier", 1.0, 2.0)
        events = to_chrome_trace(recording.snapshot())["traceEvents"]
        assert [event["name"] for event in events] == ["earlier", "later"]

    def test_exported_trace_validates(self):
        recording = RecordingCollector()
        record_something(recording)
        assert validate_chrome_trace(to_chrome_trace(recording)) == []

    def test_write_round_trips_through_json(self, tmp_path):
        recording = RecordingCollector()
        record_something(recording)
        path = write_chrome_trace(recording, tmp_path / "deep" / "trace.json")
        assert path.is_file()
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []

    @pytest.mark.parametrize(
        "payload, expected",
        [
            ({}, "traceEvents missing"),
            ({"traceEvents": "nope"}, "traceEvents missing"),
            ({"traceEvents": ["nope"]}, "not an object"),
            ({"traceEvents": [{"ph": "B", "name": "x"}]}, "unknown phase"),
            (
                {"traceEvents": [
                    {"ph": "X", "name": "x", "ts": 0, "pid": 1, "tid": 1,
                     "dur": -1}
                ]},
                "bad dur",
            ),
            (
                {"traceEvents": [
                    {"ph": "X", "name": "x", "ts": 0, "pid": 1, "tid": 1,
                     "dur": 1},
                    {"ph": "C", "name": "c", "ts": 0, "pid": 1, "tid": 1,
                     "args": {}},
                ]},
                "counter without args",
            ),
            ({"traceEvents": []}, "no spans"),
        ],
    )
    def test_validator_flags_malformed_payloads(self, payload, expected):
        problems = validate_chrome_trace(payload)
        assert any(expected in problem for problem in problems), problems

    def test_validator_spanless_ok_when_not_required(self):
        assert validate_chrome_trace({"traceEvents": []}, require_spans=False) == []


class TestTelemetrySidecar:
    def test_writer_records_cell_skip_run(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        writer = TelemetryWriter(path)
        writer.cell("a/b/n=8", elapsed_seconds=2.0, trials=10, fallbacks=1,
                    engine="fast")
        writer.skip("a/b/n=16")
        writer.run(elapsed_seconds=2.5, cells=1, skipped=1)
        records = read_telemetry(path)
        assert [record["type"] for record in records] == ["cell", "skip", "run"]
        cell = records[0]
        assert cell["trials_per_second"] == pytest.approx(5.0)
        assert cell["fallbacks"] == 1 and cell["engine"] == "fast"
        assert all("ts" in record for record in records)
        assert summarize_run(records)["cells"] == 1

    def test_zero_elapsed_does_not_divide(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        writer.cell("c", elapsed_seconds=0.0, trials=5, fallbacks=0,
                    engine="fast")
        (record,) = read_telemetry(writer.path)
        assert record["trials_per_second"] == 0.0

    def test_missing_sidecar_reads_as_empty(self, tmp_path):
        assert read_telemetry(tmp_path / "absent.jsonl") == []

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        writer = TelemetryWriter(path)
        writer.skip("whole")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "cell": "torn-mid-wr')
        records = read_telemetry(path)
        assert len(records) == 1 and records[0]["cell"] == "whole"

    def test_latest_cell_record_wins(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "t.jsonl")
        writer.cell("c", elapsed_seconds=1.0, trials=1, fallbacks=0,
                    engine="fast")
        writer.cell("c", elapsed_seconds=2.0, trials=2, fallbacks=0,
                    engine="fast")
        latest = latest_cell_records(read_telemetry(writer.path))
        assert latest["c"]["trials"] == 2

    def test_path_helper_points_inside_store(self, tmp_path):
        assert telemetry_path_for_store(tmp_path) == tmp_path / "telemetry.jsonl"


def traced_cell(engine, **kwargs):
    """One gathering sweep cell under a fresh recording collector."""
    from repro.algorithms.gathering import Gathering

    collector = RecordingCollector()
    with use_collector(collector):
        metrics = run_sweep_cell(
            lambda n: Gathering(), n=12, trials=4, master_seed=5,
            engine=engine, **kwargs,
        )
    return metrics, collector


class TestEngineInstrumentation:
    @pytest.mark.parametrize("engine", ["fast", "vectorized"])
    def test_cell_and_engine_spans_emitted(self, engine):
        metrics, collector = traced_cell(engine)
        names = [span.name for span in collector.spans]
        assert "sweep.cell" in names
        assert "engine.run_many" in names
        run_many = next(
            span for span in collector.spans if span.name == "engine.run_many"
        )
        args = dict(run_many.args)
        assert args["engine"] == engine
        assert args["trials"] == 4 and args.get("fallbacks", 0) == 0
        cell = next(span for span in collector.spans if span.name == "sweep.cell")
        assert dict(cell.args)["algorithm"] == "gathering"

    def test_vectorized_emits_lockstep_and_counter(self):
        _, collector = traced_cell("vectorized")
        names = [span.name for span in collector.spans]
        assert "engine.lockstep" in names
        assert "engine.committed_draws" in names
        (counter,) = [
            c for c in collector.counters if c.name == "engine.candidates_walked"
        ]
        assert counter.value > 0

    def test_reference_engine_emits_run_span(self):
        from repro import Executor, Gathering, RandomizedAdversary

        nodes = list(range(10))
        collector = RecordingCollector()
        with use_collector(collector):
            Executor(nodes, sink=0, algorithm=Gathering()).run(
                RandomizedAdversary(nodes, seed=1), max_interactions=5000
            )
        (span,) = [s for s in collector.spans if s.name == "engine.run"]
        args = dict(span.args)
        assert args["engine"] == "reference"
        assert args["interactions"] > 0

    def test_fallback_becomes_event_and_span_count(self, monkeypatch):
        from repro.algorithms import kernels as kernels_module
        from repro.core.vector_execution import EngineFallbackWarning

        monkeypatch.delitem(kernels_module.KERNELS, "gathering")
        with pytest.warns(EngineFallbackWarning):
            _, collector = traced_cell("vectorized")
        fallback_events = [
            event for event in collector.events if event.name == "engine.fallback"
        ]
        assert len(fallback_events) == 4  # one per downgraded trial
        assert "no decision kernel" in dict(fallback_events[0].args)["reason"]
        # The downgraded trials run through an inner FastExecutor, which
        # records its own engine.run_many span — pick the vectorized one.
        run_many = next(
            span for span in collector.spans
            if span.name == "engine.run_many"
            and dict(span.args)["engine"] == "vectorized"
        )
        assert dict(run_many.args)["fallbacks"] == 4
        cell = next(span for span in collector.spans if span.name == "sweep.cell")
        assert dict(cell.args)["fallbacks"] == 4

    @pytest.mark.parametrize("engine", ["fast", "vectorized"])
    def test_tracing_does_not_change_metrics(self, engine):
        from repro.algorithms.gathering import Gathering

        untraced = run_sweep_cell(
            lambda n: Gathering(), n=12, trials=4, master_seed=5, engine=engine
        )
        traced, _ = traced_cell(engine)
        assert untraced == traced


def campaign_spec(**overrides):
    kwargs = dict(
        name="obs",
        algorithms=("gathering",),
        adversaries=("uniform",),
        ns=(8, 10),
        trials=2,
        engine="fast",
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def shard_bytes(store_dir, spec):
    store = CampaignStore(store_dir)
    return {
        cell.key: store.shard_path(cell.key).read_bytes()
        for cell in spec.cells()
    }


class TestCampaignTelemetryIsolation:
    def test_traced_run_matches_untraced_byte_for_byte(self, tmp_path):
        spec = campaign_spec()
        plain = tmp_path / "plain"
        traced = tmp_path / "traced"
        run_campaign(spec, plain)
        collector = RecordingCollector()
        with use_collector(collector):
            run_campaign(spec, traced)
        assert shard_bytes(plain, spec) == shard_bytes(traced, spec)
        names = [span.name for span in collector.spans]
        assert "campaign.run" in names and "sweep.cell" in names
        # ... and the sidecar exists without being part of the store bytes.
        records = read_telemetry(telemetry_path_for_store(traced))
        assert {r["type"] for r in records} == {"cell", "run"}

    def test_interrupted_resume_with_telemetry_matches_fresh(self, tmp_path):
        spec = campaign_spec()
        fresh = tmp_path / "fresh"
        resumed = tmp_path / "resumed"
        run_campaign(spec, fresh)
        first = run_campaign(spec, resumed, max_cells=1)
        assert not first.complete
        second = run_campaign(spec, resumed)
        assert second.complete and second.skipped == 1
        assert shard_bytes(fresh, spec) == shard_bytes(resumed, spec)
        records = read_telemetry(telemetry_path_for_store(resumed))
        skips = [r for r in records if r["type"] == "skip"]
        assert len(skips) == 1
        assert len(latest_cell_records(records)) == 2

    def test_parallel_workers_merge_worker_spans(self, tmp_path):
        spec = campaign_spec()
        collector = RecordingCollector()
        with use_collector(collector):
            run_campaign(spec, tmp_path / "store", workers=2)
        engine_spans = [
            span for span in collector.spans if span.name == "engine.run_many"
        ]
        assert len(engine_spans) == 2
        payload = to_chrome_trace(collector)
        assert validate_chrome_trace(payload) == []

    def test_status_renders_telemetry_columns(self, tmp_path):
        spec = campaign_spec()
        store = tmp_path / "store"
        run_campaign(spec, store)
        status = campaign_status(store)
        assert "trials/s" in status
        assert "telemetry:" in status

    def test_status_without_sidecar_stays_quiet(self, tmp_path):
        spec = campaign_spec()
        store = tmp_path / "store"
        run_campaign(spec, store)
        telemetry_path_for_store(store).unlink()
        status = campaign_status(store)
        assert "trials/s" not in status and "telemetry:" not in status


@pytest.mark.search
class TestSearchIsolation:
    CONFIG = dict(
        algorithm="gathering",
        family="uniform",
        n=12,
        budget=24,
        generation_size=6,
        pool_size=3,
        initial_samples=8,
        seed=7,
    )

    def test_tracing_does_not_change_the_search(self):
        from repro.search import SearchConfig, run_search

        plain = run_search(SearchConfig(**self.CONFIG))
        collector = RecordingCollector()
        with use_collector(collector):
            traced = run_search(SearchConfig(**self.CONFIG))
        assert plain.best_ratio == traced.best_ratio
        assert plain.history == traced.history
        assert plain.best.schedule.digest_key() == traced.best.schedule.digest_key()
        names = [span.name for span in collector.spans]
        assert "search.run" in names and "search.generation" in names


class TestObsCLI:
    def test_trace_wraps_a_command_and_writes_a_valid_trace(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["trace", "--trace-out", str(out), "trial", "gathering",
                     "--n", "12", "--engine", "vectorized"]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err and "ui.perfetto.dev" in captured.err
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        names = {event["name"] for event in payload["traceEvents"]}
        assert "engine.run_many" in names

    def test_trace_out_flag_after_the_wrapped_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "after.json"
        assert main(["trace", "trial", "gathering", "--n", "10",
                     "--trace-out", str(out)]) == 0
        capsys.readouterr()
        assert out.is_file()

    def test_trace_requires_a_wrapped_command(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "--trace-out", "x.json"])

    def test_trace_cannot_wrap_itself(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", "trace", "trial", "gathering"])

    def test_trace_passes_wrapped_exit_code_through(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fail.json"
        code = main(["trace", "--trace-out", str(out), "campaign", "status",
                     str(tmp_path / "not-a-store")])
        assert code == 2  # the wrapped command's own exit code
        assert out.is_file()  # the trace is still written

    def test_bench_trajectory_renders_recorded_tables(self, capsys):
        from repro.cli import main

        assert main(["bench", "trajectory", "--dir", "benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "vectorized" in out

    def test_bench_trajectory_empty_dir_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "trajectory", "--dir", str(tmp_path)]) == 2

"""Unit tests for the executor (repro.core.execution)."""

import pytest

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.core.algorithm import DODAAlgorithm
from repro.core.exceptions import ConfigurationError, ModelViolationError
from repro.core.execution import (
    Executor,
    RecordingProvider,
    SequenceProvider,
    run_algorithm,
)
from repro.core.interaction import Interaction, InteractionSequence
from repro.core.node import NetworkState


class AlwaysFirstReceives(DODAAlgorithm):
    """Test helper: the lower-identifier node always receives."""

    name = "test_always_first"
    oblivious = True

    def decide(self, first, second, time):
        return first.id


class ReturnsOutsider(DODAAlgorithm):
    """Test helper returning a node that is not part of the interaction."""

    name = "test_outsider"

    def decide(self, first, second, time):
        return "not-a-participant"


class MakesSinkTransmit(DODAAlgorithm):
    """Test helper that orders the sink to transmit (illegal)."""

    name = "test_sink_transmits"

    def decide(self, first, second, time):
        if first.is_sink:
            return second.id
        if second.is_sink:
            return first.id
        return None


class MemoryWriter(DODAAlgorithm):
    """Test helper that writes to node memory while claiming to be oblivious."""

    name = "test_memory_writer"
    oblivious = True

    def decide(self, first, second, time):
        first.memory["x"] = time
        return None


class TestExecutorBasics:
    def test_line_convergecast_with_gathering(self, line_nodes, line_sequence_to_sink):
        result = run_algorithm(Gathering(), line_sequence_to_sink, line_nodes, sink=0)
        assert result.terminated
        assert result.duration == 3
        assert result.transmission_count == 3
        assert result.sink_coverage == 4

    def test_star_with_waiting(self, star_sequence):
        result = run_algorithm(Waiting(), star_sequence, [0, 1, 2, 3, 4], sink=0)
        assert result.terminated
        assert result.duration == 4

    def test_waiting_does_not_terminate_without_sink_meetings(self):
        sequence = InteractionSequence.from_pairs([(1, 2), (2, 3), (1, 3)])
        result = run_algorithm(Waiting(), sequence, [0, 1, 2, 3], sink=0)
        assert not result.terminated
        assert result.duration is None
        assert result.interactions_used == 3

    def test_transmission_log_is_chronological(self, line_nodes, line_sequence_to_sink):
        result = run_algorithm(Gathering(), line_sequence_to_sink, line_nodes, sink=0)
        times = [t.time for t in result.transmissions]
        assert times == sorted(times)

    def test_remaining_owners_reported(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        result = run_algorithm(Gathering(), sequence, [0, 1, 2, 3], sink=0)
        assert not result.terminated
        assert set(result.remaining_owners) == {1, 3}

    def test_sink_payload_counts_origins(self, line_nodes, line_sequence_to_sink):
        result = run_algorithm(Gathering(), line_sequence_to_sink, line_nodes, sink=0)
        assert result.sink_payload == 4.0

    def test_horizon_cap_with_provider_required(self):
        executor = Executor([0, 1], sink=0, algorithm=Gathering())

        class DummyProvider:
            def interaction_at(self, time, state):
                return Interaction(time, 0, 1)

        with pytest.raises(ConfigurationError):
            executor.run(DummyProvider())

    def test_horizon_cap_is_respected(self):
        executor = Executor([0, 1, 2], sink=0, algorithm=Waiting())

        class NeverSinkProvider:
            def interaction_at(self, time, state):
                return Interaction(time, 1, 2)

        result = executor.run(NeverSinkProvider(), max_interactions=25)
        assert not result.terminated
        assert result.interactions_used == 25

    def test_output_ignored_when_a_node_has_no_data(self):
        # After 2 transmits to 1, the pair (2, 3) can no longer transmit.
        sequence = InteractionSequence.from_pairs([(2, 1), (2, 3), (3, 1), (1, 0)])
        result = run_algorithm(Gathering(), sequence, [0, 1, 2, 3], sink=0)
        assert result.terminated
        senders = [t.sender for t in result.transmissions]
        assert senders == [2, 3, 1]

    def test_each_node_transmits_at_most_once(self, small_random_sequence):
        result = run_algorithm(
            Gathering(), small_random_sequence, list(range(8)), sink=0
        )
        senders = [t.sender for t in result.transmissions]
        assert len(senders) == len(set(senders))

    def test_two_node_instance_trivial(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        result = run_algorithm(Gathering(), sequence, [0, 1], sink=0)
        assert result.terminated
        assert result.duration == 1


class TestExecutorValidation:
    def test_decision_outside_interaction_rejected(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        with pytest.raises(ModelViolationError):
            run_algorithm(ReturnsOutsider(), sequence, [0, 1, 2], sink=0)

    def test_sink_cannot_be_ordered_to_transmit(self):
        sequence = InteractionSequence.from_pairs([(0, 1)])
        with pytest.raises(ModelViolationError):
            run_algorithm(MakesSinkTransmit(), sequence, [0, 1], sink=0)

    def test_oblivious_enforcement(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        executor = Executor(
            [0, 1, 2], sink=0, algorithm=MemoryWriter(), enforce_oblivious=True
        )
        with pytest.raises(ModelViolationError):
            executor.run(sequence)

    def test_oblivious_enforcement_off_by_default(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        result = run_algorithm(MemoryWriter(), sequence, [0, 1, 2], sink=0)
        assert not result.terminated

    def test_knowledge_requirement_checked_at_construction(self):
        from repro.algorithms.waiting_greedy import WaitingGreedy

        with pytest.raises(ConfigurationError):
            Executor([0, 1], sink=0, algorithm=WaitingGreedy(tau=5))


class TestProviders:
    def test_sequence_provider_returns_none_past_end(self):
        provider = SequenceProvider(InteractionSequence.from_pairs([(0, 1)]))
        state = NetworkState([0, 1], sink=0)
        assert provider.interaction_at(0, state) is not None
        assert provider.interaction_at(5, state) is None

    def test_recording_provider_records_played_interactions(self):
        provider = RecordingProvider(
            SequenceProvider(InteractionSequence.from_pairs([(0, 1), (1, 2)]))
        )
        state = NetworkState([0, 1, 2], sink=0)
        provider.interaction_at(0, state)
        provider.interaction_at(1, state)
        recorded = provider.recorded_sequence()
        assert len(recorded) == 2
        assert recorded[1].pair == frozenset({1, 2})

    def test_recording_provider_rejects_time_gaps(self):
        provider = RecordingProvider(
            SequenceProvider(InteractionSequence.from_pairs([(0, 1), (1, 2), (0, 2)]))
        )
        state = NetworkState([0, 1, 2], sink=0)
        provider.interaction_at(0, state)
        with pytest.raises(ModelViolationError):
            provider.interaction_at(2, state)

    def test_recording_provider_allows_consistent_requery(self):
        provider = RecordingProvider(
            SequenceProvider(InteractionSequence.from_pairs([(0, 1), (1, 2)]))
        )
        state = NetworkState([0, 1, 2], sink=0)
        first = provider.interaction_at(0, state)
        again = provider.interaction_at(0, state)
        assert first == again
        assert len(provider.recorded) == 1

    def test_recording_provider_rejects_mismatching_overwrite(self):
        # An adaptive provider that answers differently on replay must not
        # silently rewrite the recorded history.
        class Flaky:
            def __init__(self):
                self.calls = 0

            def interaction_at(self, time, state):
                self.calls += 1
                return Interaction(time=time, u=self.calls, v=self.calls + 1)

        provider = RecordingProvider(Flaky())
        state = NetworkState([0, 1, 2, 3], sink=0)
        provider.interaction_at(0, state)
        with pytest.raises(ModelViolationError):
            provider.interaction_at(0, state)

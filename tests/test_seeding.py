"""Behavior-pinning tests for :mod:`repro.sim.seeding`.

``derive_seed`` is the root of every reproducibility guarantee: campaign
resume, parallel-worker equivalence and cross-engine differential tests
all assume it is a *stable, total* function of its inputs.  These tests
pin that contract:

* edge cases — negative and arbitrarily huge master seeds, non-ASCII and
  bytes components, ``None``/float components, empty strings;
* injectivity of the component framing (``("a/b", "c")`` must differ
  from ``("a", "b/c")``);
* a frozen golden vector, so any change to the derivation (hash, framing,
  truncation) fails loudly instead of silently re-seeding every
  experiment in the repository.
"""

from __future__ import annotations

import pytest

from repro.sim.seeding import derive_seed, trial_seeds

#: Frozen golden vector.  Regenerating it is a breaking change to every
#: stored campaign and recorded experiment — never update casually.
GOLDEN = {
    (0,): 6912158355717386040,
    (0, "exp", 5, 0): 874411223029640127,
    (123456789, "campaign", ("zipf", 30), 7): 8903342036042040666,
    (-1, "neg"): 2906278170772766009,
    (2**200, "huge"): 2914526241424035786,
    (0, "ünïcode-🎲"): 786177100663083660,
    (0, b"bytes"): 8865149400354413522,
    (0, None): 6216121544570573212,
    (0, 1.5): 966758058789148931,
    (7, ""): 4584061024915620897,
    (0, "a/b", "c"): 8323442956930342285,
    (0, "a", "b/c"): 6175040626539848120,
}


class TestGoldenVector:
    @pytest.mark.parametrize("args", sorted(GOLDEN, key=repr))
    def test_frozen_derivation(self, args):
        assert derive_seed(*args) == GOLDEN[args]

    def test_trial_seeds_frozen(self):
        assert trial_seeds(42, "E9", 10, 3) == [
            6197735908270320947,
            4675781873640065190,
            2302986862998244623,
        ]


class TestEdgeCases:
    def test_negative_master_seed_is_valid_and_distinct(self):
        assert derive_seed(-1) != derive_seed(1)
        assert 0 <= derive_seed(-(2**80)) < 2**63

    def test_huge_master_seed(self):
        huge = 2**4096 + 17
        assert 0 <= derive_seed(huge) < 2**63
        assert derive_seed(huge) == derive_seed(huge)

    def test_result_always_fits_numpy_seed_range(self):
        for args in GOLDEN:
            assert 0 <= derive_seed(*args) < 2**63

    def test_non_ascii_and_bytes_components(self):
        assert derive_seed(0, "ünïcode-🎲") != derive_seed(0, "unicode-?")
        assert derive_seed(0, b"bytes") != derive_seed(0, "bytes")

    def test_component_framing_is_injective_for_separator(self):
        # repr()-quoting keeps the "/" joiner from aliasing components.
        assert derive_seed(0, "a/b", "c") != derive_seed(0, "a", "b/c")

    def test_none_and_float_components_are_total(self):
        assert derive_seed(0, None) != derive_seed(0, "None")
        assert derive_seed(0, 1.5) != derive_seed(0, "1.5")

    def test_int_vs_str_master_seed_distinct(self):
        # The master seed is framed as str(); "12" the string component
        # and 12 the int component of the *tail* must still differ...
        assert derive_seed(0, 12) != derive_seed(0, "12")

    def test_trial_seeds_prefix_stable(self):
        # Asking for more trials never changes earlier trials' seeds.
        assert trial_seeds(7, "E1", 30, 3) == trial_seeds(7, "E1", 30, 6)[:3]

    def test_trial_seeds_empty(self):
        assert trial_seeds(7, "E1", 30, 0) == []

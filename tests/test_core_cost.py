"""Unit tests for the cost measure of Section 2.3."""

import math

import pytest

from repro.algorithms.gathering import Gathering
from repro.algorithms.waiting import Waiting
from repro.core.cost import (
    convergecast_milestones,
    cost_of_duration,
    cost_of_result,
    is_optimal,
)
from repro.core.execution import run_algorithm
from repro.core.interaction import InteractionSequence


@pytest.fixture
def two_convergecast_sequence():
    """A sequence on {0,1,2} (sink 0) allowing two successive convergecasts."""
    return InteractionSequence.from_pairs(
        [(2, 1), (1, 0), (2, 1), (1, 0)]
    )


class TestMilestones:
    def test_first_milestone_is_opt0(self, two_convergecast_sequence):
        milestones = convergecast_milestones(
            two_convergecast_sequence, [0, 1, 2], sink=0, max_milestones=5
        )
        assert milestones[0] == 1  # opt(0): last hop at time 1

    def test_second_milestone(self, two_convergecast_sequence):
        milestones = convergecast_milestones(
            two_convergecast_sequence, [0, 1, 2], sink=0, max_milestones=5
        )
        assert milestones[1] == 3

    def test_milestones_become_infinite(self, two_convergecast_sequence):
        milestones = convergecast_milestones(
            two_convergecast_sequence, [0, 1, 2], sink=0, max_milestones=5
        )
        assert math.isinf(milestones[-1])

    def test_milestones_stop_at_duration(self, two_convergecast_sequence):
        milestones = convergecast_milestones(
            two_convergecast_sequence, [0, 1, 2], sink=0, up_to_duration=2
        )
        assert len(milestones) == 1


class TestCost:
    def test_optimal_run_has_cost_one(self, two_convergecast_sequence):
        breakdown = cost_of_duration(2, two_convergecast_sequence, [0, 1, 2], sink=0)
        assert breakdown.cost == 1.0

    def test_second_convergecast_cost_two(self, two_convergecast_sequence):
        breakdown = cost_of_duration(4, two_convergecast_sequence, [0, 1, 2], sink=0)
        assert breakdown.cost == 2.0

    def test_duration_between_milestones_rounds_up(self, two_convergecast_sequence):
        breakdown = cost_of_duration(3, two_convergecast_sequence, [0, 1, 2], sink=0)
        assert breakdown.cost == 2.0

    def test_non_terminating_run_cost_is_imax(self, two_convergecast_sequence):
        breakdown = cost_of_duration(None, two_convergecast_sequence, [0, 1, 2], sink=0)
        # Two convergecasts fit in the sequence, so i_max = 2.
        assert breakdown.cost == 2.0
        assert math.isinf(breakdown.duration)

    def test_cost_of_result_gathering_is_optimal_on_line(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0)])
        result = run_algorithm(Gathering(), sequence, [0, 1, 2], sink=0)
        breakdown = cost_of_result(result, sequence, [0, 1, 2], sink=0)
        assert breakdown.cost == 1.0
        assert is_optimal(result, sequence, [0, 1, 2], sink=0)

    def test_waiting_pays_extra_convergecasts(self):
        # Waiting ignores the node-to-node interactions, so it needs the
        # second block to finish while the offline optimum finishes in the
        # first block.
        sequence = InteractionSequence.from_pairs(
            [(2, 1), (1, 0), (2, 0), (2, 1), (1, 0), (2, 0)]
        )
        result = run_algorithm(Waiting(), sequence, [0, 1, 2], sink=0)
        assert result.terminated
        breakdown = cost_of_result(result, sequence, [0, 1, 2], sink=0)
        assert breakdown.cost >= 2.0

    def test_cost_invariant_under_duplicate_interactions(self):
        # Inserting an immediately repeated interaction does not change the
        # cost of an algorithm that ignores it (a stated design goal of the
        # cost definition).
        base = InteractionSequence.from_pairs([(2, 1), (1, 0), (2, 1), (1, 0)])
        padded = InteractionSequence.from_pairs(
            [(2, 1), (2, 1), (1, 0), (2, 1), (1, 0)]
        )
        cost_base = cost_of_duration(2, base, [0, 1, 2], sink=0).cost
        cost_padded = cost_of_duration(3, padded, [0, 1, 2], sink=0).cost
        assert cost_base == cost_padded == 1.0

    def test_infinite_duration_and_no_convergecast(self):
        sequence = InteractionSequence.from_pairs([(1, 2)])
        breakdown = cost_of_duration(None, sequence, [0, 1, 2], sink=0)
        assert math.isinf(breakdown.cost)

"""Unit tests for aggregation schedules and their validation."""

import pytest

from repro.core.exceptions import InvalidScheduleError
from repro.core.interaction import InteractionSequence
from repro.offline.schedule import (
    AggregationSchedule,
    ScheduledTransmission,
    validate_schedule,
)


@pytest.fixture
def line_sequence():
    return InteractionSequence.from_pairs([(3, 2), (2, 1), (1, 0)])


def make_schedule(*triples):
    return AggregationSchedule.from_transmissions(
        ScheduledTransmission(time=t, sender=s, receiver=r) for t, s, r in triples
    )


class TestScheduleObject:
    def test_completion_time_and_duration(self):
        schedule = make_schedule((0, 3, 2), (1, 2, 1), (2, 1, 0))
        assert schedule.completion_time == 2
        assert schedule.duration == 3

    def test_empty_schedule(self):
        schedule = AggregationSchedule(transmissions=())
        assert schedule.completion_time is None
        assert schedule.duration == 0

    def test_senders_and_transmission_of(self):
        schedule = make_schedule((0, 3, 2), (1, 2, 1))
        assert schedule.senders() == {3, 2}
        assert schedule.transmission_of(3).receiver == 2
        assert schedule.transmission_of(9) is None

    def test_from_transmissions_sorts_by_time(self):
        schedule = make_schedule((2, 1, 0), (0, 3, 2), (1, 2, 1))
        assert [t.time for t in schedule.transmissions] == [0, 1, 2]


class TestValidation:
    def test_valid_line_schedule(self, line_sequence):
        schedule = make_schedule((0, 3, 2), (1, 2, 1), (2, 1, 0))
        assert validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0) == 2

    def test_missing_sender_rejected(self, line_sequence):
        schedule = make_schedule((0, 3, 2), (2, 1, 0))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0)

    def test_sink_transmission_rejected(self, line_sequence):
        schedule = make_schedule((2, 0, 1))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1], 0)

    def test_wrong_pair_rejected(self, line_sequence):
        schedule = make_schedule((0, 1, 0), (1, 2, 1), (2, 3, 2))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0)

    def test_double_transmission_rejected(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (1, 0), (2, 0)])
        schedule = make_schedule((0, 1, 0), (1, 1, 0), (2, 2, 0))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, sequence, [0, 1, 2], 0)

    def test_receiver_already_transmitted_rejected(self):
        sequence = InteractionSequence.from_pairs([(2, 1), (1, 0), (3, 2)])
        # 2 transmits at time 0, then is scheduled to receive at time 2.
        schedule = make_schedule((0, 2, 1), (1, 1, 0), (2, 3, 2))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, sequence, [0, 1, 2, 3], 0)

    def test_time_beyond_sequence_rejected(self, line_sequence):
        schedule = make_schedule((0, 3, 2), (1, 2, 1), (9, 1, 0))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0)

    def test_time_before_start_rejected(self, line_sequence):
        schedule = AggregationSchedule.from_transmissions(
            [
                ScheduledTransmission(0, 3, 2),
                ScheduledTransmission(1, 2, 1),
                ScheduledTransmission(2, 1, 0),
            ],
            start=1,
        )
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0)

    def test_unknown_nodes_rejected(self, line_sequence):
        schedule = make_schedule((0, 9, 2))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, line_sequence, [0, 1, 2, 3], 0)

    def test_same_time_two_transmissions_rejected(self):
        sequence = InteractionSequence.from_pairs([(1, 0), (2, 0)])
        schedule = AggregationSchedule(
            transmissions=(
                ScheduledTransmission(0, 1, 0),
                ScheduledTransmission(0, 2, 0),
            )
        )
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, sequence, [0, 1, 2], 0)

"""Explicit offline aggregation schedules and their validation.

An *aggregation schedule* assigns to every non-sink node the time at which it
transmits its (possibly already aggregated) data and the receiver of that
transmission.  A schedule is valid for a sequence of interactions if:

1. every non-sink node transmits exactly once, the sink never transmits;
2. a transmission at time ``t`` uses the pair that interacts at time ``t``;
3. at most one transmission is scheduled per interaction;
4. the receiver of a transmission at time ``t`` has not itself transmitted at
   a time ``t' <= t`` (data must still be owned by the receiver);
5. following the schedule, the sink ends up owning the data of every node.

Condition 5 is implied by 1-4 (an easy induction), but the validator checks
it explicitly by replaying the schedule, which also produces the completion
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.data import NodeId
from ..core.exceptions import InvalidScheduleError
from ..core.interaction import InteractionSequence


@dataclass(frozen=True, order=True)
class ScheduledTransmission:
    """One planned transmission: ``sender`` sends to ``receiver`` at ``time``."""

    time: int
    sender: NodeId
    receiver: NodeId


@dataclass(frozen=True)
class AggregationSchedule:
    """A complete offline aggregation schedule.

    Attributes:
        transmissions: scheduled transmissions sorted by time.
        start: first time slot the schedule was allowed to use.
        completion_time: time of the last transmission (the paper's
            "ending time" of the convergecast), or None for an empty
            schedule (single-node instances).
    """

    transmissions: Tuple[ScheduledTransmission, ...]
    start: int = 0

    @property
    def completion_time(self) -> Optional[int]:
        """Time of the last scheduled transmission."""
        if not self.transmissions:
            return None
        return self.transmissions[-1].time

    @property
    def duration(self) -> int:
        """Number of interactions consumed, counted from time 0."""
        completion = self.completion_time
        return 0 if completion is None else completion + 1

    def senders(self) -> Set[NodeId]:
        """All nodes that transmit under this schedule."""
        return {t.sender for t in self.transmissions}

    def transmission_of(self, node: NodeId) -> Optional[ScheduledTransmission]:
        """The transmission performed by ``node``, if any."""
        for transmission in self.transmissions:
            if transmission.sender == node:
                return transmission
        return None

    @classmethod
    def from_transmissions(
        cls, transmissions: Iterable[ScheduledTransmission], start: int = 0
    ) -> "AggregationSchedule":
        """Build a schedule, sorting transmissions by time."""
        return cls(transmissions=tuple(sorted(transmissions)), start=start)


def validate_schedule(
    schedule: AggregationSchedule,
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
) -> int:
    """Check validity of ``schedule`` against ``sequence`` and replay it.

    Returns:
        The completion time (time of the last transmission).

    Raises:
        InvalidScheduleError: if any model rule is violated or the sink does
            not end up with the data of all nodes.
    """
    node_set = set(nodes)
    if sink not in node_set:
        raise InvalidScheduleError(f"sink {sink!r} not among nodes")

    expected_senders = node_set - {sink}
    senders_seen: Set[NodeId] = set()
    times_seen: Set[int] = set()
    transmitted_at: Dict[NodeId, int] = {}

    for transmission in schedule.transmissions:
        time, sender, receiver = (
            transmission.time,
            transmission.sender,
            transmission.receiver,
        )
        if sender == sink:
            raise InvalidScheduleError("the sink must never transmit")
        if sender not in node_set or receiver not in node_set:
            raise InvalidScheduleError(
                f"transmission {transmission} references unknown nodes"
            )
        if sender in senders_seen:
            raise InvalidScheduleError(f"node {sender!r} transmits more than once")
        if time in times_seen:
            raise InvalidScheduleError(
                f"two transmissions scheduled at the same time {time}"
            )
        if time < schedule.start:
            raise InvalidScheduleError(
                f"transmission at t={time} is before the schedule start "
                f"{schedule.start}"
            )
        if time >= len(sequence):
            raise InvalidScheduleError(
                f"transmission at t={time} is beyond the sequence length "
                f"{len(sequence)}"
            )
        interaction = sequence[time]
        if interaction.pair != frozenset((sender, receiver)):
            raise InvalidScheduleError(
                f"transmission {transmission} does not match interaction "
                f"{interaction}"
            )
        senders_seen.add(sender)
        times_seen.add(time)
        transmitted_at[sender] = time

    if senders_seen != expected_senders:
        missing = expected_senders - senders_seen
        raise InvalidScheduleError(
            f"nodes {sorted(map(repr, missing))} never transmit"
        )

    # Receiver must still own data when it receives: its own transmission (if
    # any) must be strictly later.
    for transmission in schedule.transmissions:
        receiver = transmission.receiver
        if receiver == sink:
            continue
        receiver_time = transmitted_at.get(receiver)
        if receiver_time is not None and receiver_time <= transmission.time:
            raise InvalidScheduleError(
                f"node {receiver!r} receives at t={transmission.time} but "
                f"already transmitted at t={receiver_time}"
            )

    # Replay to confirm the sink collects everything.
    owner_of_origin: Dict[NodeId, NodeId] = {
        node: node for node in sorted(node_set, key=str)
    }
    carried: Dict[NodeId, Set[NodeId]] = {
        node: {node} for node in sorted(node_set, key=str)
    }
    for transmission in schedule.transmissions:
        sender, receiver = transmission.sender, transmission.receiver
        carried[receiver] |= carried[sender]
        for origin in carried[sender]:
            owner_of_origin[origin] = receiver
        carried[sender] = set()
    if carried[sink] != node_set:
        raise InvalidScheduleError(
            "replaying the schedule does not leave all data at the sink "
            f"(missing {sorted(map(repr, node_set - carried[sink]))})"
        )

    completion = schedule.completion_time
    assert completion is not None or not expected_senders
    return -1 if completion is None else completion

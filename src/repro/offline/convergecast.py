"""Exact offline optimal convergecast on a sequence of interactions.

Because every time slot carries a single interaction, an optimal offline
aggregation within a window ``[start, T]`` exists **iff** every non-sink node
has a time-respecting journey to the sink using interactions of the window.
This is the broadcast/convergecast duality used in Theorem 8 of the paper:
reverse the window and flood from the sink; the flooding order, read back in
forward time, is a valid aggregation schedule in which every node transmits
at the time it was first reached by the reversed flood.

Consequently the ending time of an optimal convergecast starting at ``t`` is

    ``opt(t) = max over non-sink u of  foremost(u, t)``

where ``foremost(u, t)`` is the earliest arrival time at the sink of a
journey from ``u`` that starts at or after ``t``.  Foremost arrival times for
*all* nodes are computed with a single backward sweep over the sequence.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set

from ..core.data import NodeId
from ..core.exceptions import InvalidScheduleError
from ..core.interaction import InteractionSequence
from .schedule import AggregationSchedule, ScheduledTransmission

#: Returned by :func:`opt` and :func:`foremost_arrival_times` when no
#: journey exists within the finite sequence (the paper's ``opt(t) = ∞``).
#: This is the *documented sentinel* for impossible aggregations — finite
#: traces that end too early, disconnected tails, nodes that never meet —
#: shared with the vectorized kernels as
#: :data:`repro.ratio.semantics.UNREACHABLE`.  Callers must treat it as a
#: value, never as an error: every function here returns it instead of
#: raising when the offline optimum does not exist.
INFINITY = math.inf


def foremost_arrival_times(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    start: int = 0,
) -> Dict[NodeId, float]:
    """Earliest arrival time at the sink for every node, starting at ``start``.

    ``result[u]`` is the smallest time ``t`` such that there is a
    time-respecting journey (strictly increasing interaction times) from
    ``u`` to ``sink`` using interactions with times in ``[start, t]``.
    ``result[sink]`` is ``start - 1`` by convention (its data is already at
    the sink).  Nodes with no journey map to ``math.inf``.

    The computation is a single backward pass: processing interactions from
    the end of the sequence towards ``start`` and relaxing through the peer's
    currently-known foremost arrival (which, at that point of the sweep, only
    accounts for strictly later interactions — exactly what a journey needs).
    """
    node_list = list(nodes)
    arrival: Dict[NodeId, float] = {node: INFINITY for node in node_list}
    arrival[sink] = start - 1
    for index in range(len(sequence) - 1, start - 1, -1):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        time = interaction.time
        arrival_u = arrival.get(u, INFINITY)
        arrival_v = arrival.get(v, INFINITY)
        # Candidate arrival for u going through v at this interaction: if v is
        # the sink the journey completes now; otherwise v must continue with a
        # journey using strictly later interactions, whose foremost arrival is
        # the current arrival[v] (computed from later interactions only).
        candidate_u = time if v == sink else (arrival_v if arrival_v > time else INFINITY)
        candidate_v = time if u == sink else (arrival_u if arrival_u > time else INFINITY)
        if u != sink and candidate_u < arrival_u:
            arrival[u] = candidate_u
        if v != sink and candidate_v < arrival_v:
            arrival[v] = candidate_v
    return arrival


def opt(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    start: int = 0,
) -> float:
    """The paper's ``opt(start)``: ending time of an optimal convergecast.

    Returns ``math.inf`` if no convergecast starting at ``start`` completes
    within the (finite) sequence.
    """
    node_list = list(nodes)
    if len(node_list) <= 1:
        return float(max(start - 1, 0))
    arrivals = foremost_arrival_times(sequence, node_list, sink, start=start)
    worst = max(arrivals[node] for node in node_list if node != sink)
    return worst


def convergecast_possible(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    start: int = 0,
    end: Optional[int] = None,
) -> bool:
    """True if an aggregation using only interactions in ``[start, end]`` exists."""
    node_list = list(nodes)
    limit = len(sequence) if end is None else min(end + 1, len(sequence))
    window = InteractionSequence(
        [sequence[i] for i in range(start, limit)]
    )
    if len(node_list) <= 1:
        return True
    arrivals = foremost_arrival_times(window, node_list, sink, start=0)
    return all(
        not math.isinf(arrivals[node]) for node in node_list if node != sink
    )


def build_convergecast_schedule(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    start: int = 0,
) -> AggregationSchedule:
    """Construct an explicit optimal convergecast schedule starting at ``start``.

    The schedule is obtained by flooding from the sink over the *reversed*
    window ``[start, opt(start)]``: whenever an informed node meets an
    uninformed node in reverse time, the uninformed node is scheduled to
    transmit (in forward time) at that interaction, towards the informed
    node.  The result is optimal: its completion time equals ``opt(start)``.

    Raises:
        InvalidScheduleError: if no convergecast starting at ``start``
            completes within the sequence.
    """
    node_list = list(nodes)
    completion = opt(sequence, node_list, sink, start=start)
    if math.isinf(completion):
        raise InvalidScheduleError(
            f"no convergecast starting at t={start} completes within the "
            f"sequence of length {len(sequence)}"
        )
    completion_time = int(completion)
    informed: Set[NodeId] = {sink}
    transmissions: List[ScheduledTransmission] = []
    for time in range(completion_time, start - 1, -1):
        interaction = sequence[time]
        u, v = interaction.u, interaction.v
        u_informed = u in informed
        v_informed = v in informed
        if u_informed and not v_informed:
            transmissions.append(
                ScheduledTransmission(time=time, sender=v, receiver=u)
            )
            informed.add(v)
        elif v_informed and not u_informed:
            transmissions.append(
                ScheduledTransmission(time=time, sender=u, receiver=v)
            )
            informed.add(u)
    if informed != set(node_list):
        raise InvalidScheduleError(
            "internal error: reverse flooding did not reach all nodes even "
            "though opt() is finite"
        )
    return AggregationSchedule.from_transmissions(transmissions, start=start)


def successive_convergecasts(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    count: Optional[int] = None,
) -> List[float]:
    """The paper's ``T(i)``: ending times of ``i`` successive convergecasts.

    ``T(1) = opt(0)`` and ``T(i+1) = opt(T(i) + 1)``.  The list stops either
    after ``count`` entries or at the first :data:`INFINITY` entry (every
    later entry would be infinite as well) — sequences on which aggregation
    is impossible (finite traces that end too early, disconnected tails)
    therefore yield the documented ``INFINITY`` sentinel, never an
    exception, and the function always terminates.

    Degenerate instances where ``opt`` cannot advance the start (fewer than
    two nodes, whose convergecasts complete without consuming any
    interaction) stop after recording the first repeated value instead of
    looping forever on the same window.

    Raises:
        ValueError: if ``count`` is given but not positive.
    """
    if count is not None and count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    values: List[float] = []
    start = 0
    node_list = list(nodes)
    while count is None or len(values) < count:
        ending = opt(sequence, node_list, sink, start=start)
        values.append(ending)
        if math.isinf(ending):
            break
        next_start = int(ending) + 1
        if next_start <= start:
            # No progress (degenerate <= 1-node instance): every further
            # convergecast would end at the same time; stop here instead of
            # re-sweeping the same window forever.
            break
        start = next_start
        if start >= len(sequence) and count is None:
            # The next convergecast cannot even begin; record it as infinite
            # and stop when the caller did not request a fixed count.
            values.append(INFINITY)
            break
    return values

"""Offline optimal data aggregation (convergecast) on interaction sequences.

The cost model of the paper (Section 2.3) compares an online algorithm
against *successive convergecasts* performed by an optimal offline algorithm
that knows the whole sequence.  This package computes those optima exactly:

* :func:`~repro.offline.convergecast.foremost_arrival_times` — earliest time
  each node's data can reach the sink via a time-respecting journey;
* :func:`~repro.offline.convergecast.opt` — the paper's ``opt(t)``: the
  ending time of an optimal convergecast starting at time ``t``;
* :func:`~repro.offline.convergecast.build_convergecast_schedule` — an
  explicit optimal :class:`~repro.offline.schedule.AggregationSchedule`;
* :func:`~repro.offline.broadcast.broadcast_completion_time` — flooding
  completion used by the broadcast/convergecast duality (Theorem 8).
"""

from .broadcast import broadcast_completion_time, broadcast_informed_sets
from .brute_force import brute_force_opt, brute_force_schedule_exists
from .convergecast import (
    build_convergecast_schedule,
    convergecast_possible,
    foremost_arrival_times,
    opt,
)
from .schedule import AggregationSchedule, ScheduledTransmission, validate_schedule

__all__ = [
    "AggregationSchedule",
    "ScheduledTransmission",
    "broadcast_completion_time",
    "broadcast_informed_sets",
    "brute_force_opt",
    "brute_force_schedule_exists",
    "build_convergecast_schedule",
    "convergecast_possible",
    "foremost_arrival_times",
    "opt",
    "validate_schedule",
]

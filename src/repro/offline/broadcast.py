"""Flooding broadcast on interaction sequences.

Theorem 8 of the paper bounds the offline optimum under the randomized
adversary by analysing a *broadcast*: starting from a single informed node,
an interaction between an informed and an uninformed node informs the
latter.  Reversing the sequence turns a broadcast from the sink into a
convergecast towards the sink, which is how the upper bound is obtained.

This module implements the flooding process directly so that the duality can
be tested and the Θ(n log n) broadcast bound reproduced empirically.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Set

from ..core.data import NodeId
from ..core.interaction import InteractionSequence


def broadcast_informed_sets(
    sequence: InteractionSequence,
    source: NodeId,
    start: int = 0,
) -> List[Set[NodeId]]:
    """Evolution of the informed set when flooding from ``source``.

    Returns a list whose ``k``-th entry is the informed set after processing
    the first ``k`` interactions of the window starting at ``start`` (entry 0
    is ``{source}``).
    """
    informed: Set[NodeId] = {source}
    history: List[Set[NodeId]] = [set(informed)]
    for index in range(start, len(sequence)):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        if (u in informed) != (v in informed):
            informed.add(u)
            informed.add(v)
        history.append(set(informed))
    return history


def broadcast_completion_time(
    sequence: InteractionSequence,
    source: NodeId,
    nodes: Iterable[NodeId],
    start: int = 0,
) -> float:
    """Time of the interaction at which flooding from ``source`` informs all nodes.

    Returns ``math.inf`` if the flood does not complete within the sequence.
    """
    targets = set(nodes)
    informed: Set[NodeId] = {source}
    if targets <= informed:
        return float(max(start - 1, 0))
    for index in range(start, len(sequence)):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        if (u in informed) != (v in informed):
            informed.add(u)
            informed.add(v)
            if targets <= informed:
                return float(interaction.time)
    return math.inf


def informed_count_after(
    sequence: InteractionSequence,
    source: NodeId,
    horizon: int,
    start: int = 0,
) -> int:
    """Number of informed nodes after ``horizon`` interactions of flooding."""
    informed: Set[NodeId] = {source}
    stop = min(len(sequence), start + horizon)
    for index in range(start, stop):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        if (u in informed) != (v in informed):
            informed.add(u)
            informed.add(v)
    return len(informed)

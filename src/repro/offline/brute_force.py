"""Brute-force offline optimum, used as a correctness cross-check.

The fast offline optimum (:mod:`repro.offline.convergecast`) relies on the
journey/flooding duality.  This module computes the same quantity by
explicit search over *all* legal transmission choices, which is exponential
in the number of nodes and therefore only usable on small instances — which
is exactly what is needed to validate the fast path (see the ablation
experiment E17 and the property-based cross-check test).

The key observation that makes the search state small is that the identity
of the data a node carries never constrains future moves: a run completes
exactly when every non-sink node has transmitted, and a transmission
``u -> v`` at time ``t`` is legal iff ``I_t = {u, v}`` and neither ``u`` nor
``v`` has transmitted yet.  The search state is therefore just the set of
nodes that have already transmitted.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, Set

from ..core.data import NodeId
from ..core.interaction import InteractionSequence


def brute_force_opt(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    start: int = 0,
    max_states: int = 200_000,
) -> float:
    """Minimal completion time of an aggregation starting at ``start``.

    Explores, interaction by interaction, every subset of nodes that could
    have transmitted so far.  Returns the earliest time at which the subset
    of transmitted nodes equals ``V \\ {sink}``, or ``math.inf`` when no
    complete aggregation fits in the sequence.

    Args:
        max_states: safety cap on the number of simultaneous states; raises
            ``MemoryError`` beyond it (the instances used for cross-checks
            are far below the cap).
    """
    node_set = set(nodes)
    target: FrozenSet[NodeId] = frozenset(node_set - {sink})
    if not target:
        return float(max(start - 1, 0))
    states: Set[FrozenSet[NodeId]] = {frozenset()}
    for index in range(start, len(sequence)):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        if u not in node_set or v not in node_set:
            # Interactions involving nodes outside V cannot carry data of V.
            continue
        new_states: Set[FrozenSet[NodeId]] = set(states)
        # Order-independent: every candidate matching `target` returns the
        # same interaction time, and new_states additions are commutative;
        # sorting the frozensets here would only slow the hot DP loop.
        for transmitted in states:  # reprolint: disable=RPL006
            if u in transmitted or v in transmitted:
                continue
            # Either endpoint (except the sink) may be the one transmitting.
            if u != sink:
                candidate = transmitted | {u}
                if candidate == target:
                    return float(interaction.time)
                new_states.add(candidate)
            if v != sink:
                candidate = transmitted | {v}
                if candidate == target:
                    return float(interaction.time)
                new_states.add(candidate)
        states = new_states
        if len(states) > max_states:
            raise MemoryError(
                f"brute-force search exceeded {max_states} states; "
                "use the fast offline optimum for instances of this size"
            )
    return math.inf


def brute_force_schedule_exists(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    deadline: int,
    start: int = 0,
) -> bool:
    """True iff some aggregation completes by ``deadline`` (inclusive)."""
    completion = brute_force_opt(
        sequence.slice(0, deadline + 1), nodes, sink, start=start
    )
    return not math.isinf(completion)

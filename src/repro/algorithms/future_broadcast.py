"""Future-broadcast algorithm: nodes know their own future (Section 3.3).

Theorem 6: when every node knows its own future interactions, a distributed
online algorithm achieves cost at most ``n``.  The proof broadcasts every
node's future (which fits within the duration of ``n-1`` successive
convergecasts) and then runs one optimal convergecast.

The implementation follows the proof's structure while keeping decisions
consistent across nodes:

1. *Gossip phase* — at every interaction the two nodes merge their tables of
   known futures (control information only, no data transmission).
2. Once a node's table covers the whole node set, it can reconstruct the
   entire sequence, re-simulate the gossip deterministically, and obtain the
   canonical time ``T_bcast`` at which the *last* node becomes fully
   informed.  All fully-informed nodes therefore agree on ``T_bcast``.
3. *Convergecast phase* — after ``T_bcast`` every node follows the canonical
   optimal convergecast schedule computed for the suffix starting at
   ``T_bcast + 1``.  No data was transmitted before that point, so the
   schedule's assumptions hold exactly.

Under the randomized adversary the same algorithm terminates in Θ(n log n)
interactions with high probability (Corollary 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.algorithm import DODAAlgorithm, KNOWLEDGE_FUTURE, registry
from ..core.data import NodeId
from ..core.interaction import InteractionSequence
from ..core.node import NodeView
from .full_knowledge import ConvergecastPlan, convergecast_plan

_TABLE_KEY = "future_broadcast/known_futures"


def broadcast_then_convergecast_plan(
    sequence: InteractionSequence, nodes: List[NodeId], sink: NodeId
) -> Tuple[Optional[int], Optional[ConvergecastPlan]]:
    """``(T_bcast, plan)`` for the canonical future-broadcast strategy.

    ``T_bcast`` is the time at which the deterministic gossip makes the last
    node fully informed; the plan is the optimal convergecast over the
    suffix starting at ``T_bcast + 1``.  Returns ``(None, None)`` when the
    gossip never completes within the sequence or no convergecast fits in
    the remaining suffix — the algorithm then never transmits.  Shared by
    :class:`FutureBroadcast` and its decision kernel so both follow the
    same plan by construction.
    """
    complete_time = gossip_completion_time(sequence, nodes)
    if complete_time is None:
        return None, None
    plan = convergecast_plan(sequence, nodes, sink, start=complete_time + 1)
    if plan is None:
        return None, None
    return complete_time, plan


@registry.register
class FutureBroadcast(DODAAlgorithm):
    """Gossip futures, then follow the canonical optimal convergecast."""

    name = "future_broadcast"
    oblivious = False
    requires = frozenset({KNOWLEDGE_FUTURE})

    def __init__(self) -> None:
        self._nodes: Tuple[NodeId, ...] = ()
        self._sink: Optional[NodeId] = None
        self._plan: Optional[Dict[int, Tuple[NodeId, NodeId]]] = None
        self._broadcast_complete_time: Optional[int] = None
        self._plan_impossible = False

    def on_run_start(self, nodes: Iterable[NodeId], sink: NodeId) -> None:
        """Reset cached state for a new run."""
        self._nodes = tuple(nodes)
        self._sink = sink
        self._plan = None
        self._broadcast_complete_time = None
        self._plan_impossible = False

    # ------------------------------------------------------------------ #
    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        merged = self._gossip(first, second)
        if len(merged) < len(self._nodes):
            return None
        self._ensure_plan(merged)
        if self._plan is None or self._broadcast_complete_time is None:
            return None
        if time <= self._broadcast_complete_time:
            return None
        planned = self._plan.get(time)
        if planned is None:
            return None
        sender, receiver = planned
        if {sender, receiver} != {first.id, second.id}:
            return None
        return receiver

    # ------------------------------------------------------------------ #
    def _gossip(
        self, first: NodeView, second: NodeView
    ) -> Dict[NodeId, Tuple[Tuple[int, NodeId], ...]]:
        """Merge the two nodes' tables of known futures and store the union."""
        table_first = first.memory.get(_TABLE_KEY, {})
        table_second = second.memory.get(_TABLE_KEY, {})
        merged: Dict[NodeId, Tuple[Tuple[int, NodeId], ...]] = {}
        merged.update(table_first)
        merged.update(table_second)
        merged.setdefault(first.id, tuple(first.future()))
        merged.setdefault(second.id, tuple(second.future()))
        first.memory[_TABLE_KEY] = merged
        second.memory[_TABLE_KEY] = merged
        return merged

    def _ensure_plan(
        self, futures: Dict[NodeId, Tuple[Tuple[int, NodeId], ...]]
    ) -> None:
        """Reconstruct the sequence, locate ``T_bcast``, compute the schedule."""
        if self._plan is not None or self._plan_impossible:
            return
        sequence = reconstruct_sequence(futures)
        complete_time, plan = broadcast_then_convergecast_plan(
            sequence, list(self._nodes), self._sink
        )
        if plan is None:
            self._plan_impossible = True
            return
        self._broadcast_complete_time = complete_time
        self._plan = plan


def reconstruct_sequence(
    futures: Dict[NodeId, Tuple[Tuple[int, NodeId], ...]]
) -> InteractionSequence:
    """Rebuild the full interaction sequence from per-node futures.

    Every interaction ``{u, v}`` at time ``t`` appears both in ``u``'s and in
    ``v``'s future, so the union of all futures, indexed by time, is the full
    sequence.  Missing time slots (possible only if the futures are partial)
    are filled by repeating the previous pair, which never happens when the
    table covers all nodes.
    """
    by_time: Dict[int, Tuple[NodeId, NodeId]] = {}
    for node, events in futures.items():
        for time, peer in events:
            by_time[time] = (node, peer)
    if not by_time:
        return InteractionSequence.empty()
    horizon = max(by_time) + 1
    pairs: List[Tuple[NodeId, NodeId]] = []
    previous: Optional[Tuple[NodeId, NodeId]] = None
    for time in range(horizon):
        pair = by_time.get(time, previous)
        if pair is None:
            # Cannot happen with complete futures; keep the sequence aligned
            # by inserting the first known pair.
            pair = next(iter(by_time.values()))
        pairs.append(pair)
        previous = pair
    return InteractionSequence.from_pairs(pairs)


def gossip_completion_time(
    sequence: InteractionSequence, nodes: List[NodeId]
) -> Optional[int]:
    """Time at which gossip makes every node know every node's future.

    Simulates the deterministic gossip process (each interaction merges the
    two endpoint tables) and returns the time of the interaction after which
    all nodes know all futures, or None if that never happens within the
    sequence.
    """
    knowledge: Dict[NodeId, Set[NodeId]] = {node: {node} for node in nodes}
    full = set(nodes)
    if all(knowledge[node] == full for node in nodes):
        return -1
    for interaction in sequence:
        u, v = interaction.u, interaction.v
        union = knowledge[u] | knowledge[v]
        knowledge[u] = union
        knowledge[v] = set(union)
        if all(knowledge[node] >= full for node in nodes):
            return interaction.time
    return None

"""Full-knowledge algorithm: follow the optimal offline convergecast.

When every node knows the entire sequence of interactions, the best possible
behaviour is simply to compute the optimal offline convergecast schedule and
execute it.  Under the randomized adversary this terminates in Θ(n log n)
interactions in expectation and with high probability (Theorem 8), which is
the baseline every other bound in Section 4 is converted against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.algorithm import DODAAlgorithm, KNOWLEDGE_FULL, registry
from ..core.data import NodeId
from ..core.exceptions import InvalidScheduleError
from ..core.interaction import InteractionSequence
from ..core.node import NodeView
from ..offline.convergecast import build_convergecast_schedule
from ..offline.schedule import AggregationSchedule

#: ``time -> (sender, receiver)``: the materialised convergecast plan both
#: the object algorithm and its decision kernel follow.
ConvergecastPlan = Dict[int, Tuple[NodeId, NodeId]]


def convergecast_plan(
    sequence: InteractionSequence,
    nodes: Sequence[NodeId],
    sink: NodeId,
    start: int = 0,
) -> Optional[ConvergecastPlan]:
    """The optimal offline convergecast as a ``time -> (sender, receiver)`` map.

    Returns None when no convergecast starting at ``start`` completes within
    the sequence (the algorithm then never transmits).  This is the single
    plan builder shared by :class:`FullKnowledge`, the future-broadcast
    convergecast phase, and their vectorized decision kernels — sharing it
    makes kernel-vs-object plan equality true by construction.
    """
    try:
        schedule: AggregationSchedule = build_convergecast_schedule(
            sequence, nodes, sink, start=start
        )
    except InvalidScheduleError:
        return None
    return {
        transmission.time: (transmission.sender, transmission.receiver)
        for transmission in schedule.transmissions
    }


@registry.register
class FullKnowledge(DODAAlgorithm):
    """Execute the optimal offline convergecast schedule computed from full knowledge."""

    name = "full_knowledge"
    oblivious = True
    requires = frozenset({KNOWLEDGE_FULL})

    def __init__(self) -> None:
        self._nodes: Tuple[NodeId, ...] = ()
        self._sink: Optional[NodeId] = None
        self._plan: Optional[Dict[int, Tuple[NodeId, NodeId]]] = None
        self._plan_impossible = False

    def on_run_start(self, nodes: Iterable[NodeId], sink: NodeId) -> None:
        """Reset the cached schedule for a new run."""
        self._nodes = tuple(nodes)
        self._sink = sink
        self._plan = None
        self._plan_impossible = False

    def _ensure_plan(self, view: NodeView) -> None:
        """Compute (once per run) the optimal convergecast schedule from time 0."""
        if self._plan is not None or self._plan_impossible:
            return
        sequence = view.knowledge.full_sequence()
        plan = convergecast_plan(sequence, self._nodes, self._sink, start=0)
        if plan is None:
            # No convergecast fits in the committed sequence; never transmit.
            self._plan_impossible = True
            return
        self._plan = plan

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        self._ensure_plan(first if first.knowledge is not None else second)
        if self._plan is None:
            return None
        planned = self._plan.get(time)
        if planned is None:
            return None
        sender, receiver = planned
        if {sender, receiver} != {first.id, second.id}:
            return None
        return receiver

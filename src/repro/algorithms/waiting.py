"""The Waiting algorithm (Section 4, first oblivious algorithm).

A node transmits only when it interacts with the sink.  Under the randomized
adversary it terminates in O(n² log n) interactions in expectation
(Theorem 9), a log-factor worse than Gathering because the last few nodes
each wait for their own direct meeting with the sink.
"""

from __future__ import annotations

from typing import Optional

from ..core.algorithm import DODAAlgorithm, registry
from ..core.data import NodeId
from ..core.node import NodeView


@registry.register
class Waiting(DODAAlgorithm):
    """Transmit to the sink only, whenever the sink is met."""

    name = "waiting"
    oblivious = True
    requires = frozenset()

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        if first.is_sink:
            return first.id
        if second.is_sink:
            return second.id
        return None

"""Randomized oblivious baselines.

These are not algorithms from the paper; they serve two purposes in the
reproduction:

* :class:`CoinFlipGathering` is the target of the Theorem 2 construction
  (an *oblivious randomized* algorithm): when it can transmit it does so
  only with probability ``p``, so the adversary's Monte-Carlo estimation of
  the first-transmission distribution is exercised on a genuinely random
  algorithm.
* :class:`RandomReceiver` is a sanity baseline for the comparison benches:
  it always transmits but picks the receiver uniformly at random (ignoring
  which node is the sink unless the sink is the drawn receiver), which is
  strictly worse than Gathering and shows up as such in the comparison
  figure.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.algorithm import DODAAlgorithm, registry
from ..core.data import NodeId
from ..core.node import NodeView


@registry.register
class CoinFlipGathering(DODAAlgorithm):
    """Gathering that transmits only with probability ``p`` at each opportunity."""

    name = "coin_flip_gathering"
    oblivious = True
    requires = frozenset()

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p
        self._rng = random.Random(seed)

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        if self._rng.random() >= self.p:
            return None
        if first.is_sink:
            return first.id
        if second.is_sink:
            return second.id
        return first.id


@registry.register
class RandomReceiver(DODAAlgorithm):
    """Always transmit, to a uniformly random endpoint of the interaction.

    The sink can never be the sender (the executor forbids it), so when the
    draw designates the sink as sender the algorithm abstains instead.
    """

    name = "random_receiver"
    oblivious = True
    requires = frozenset()

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        receiver = first if self._rng.random() < 0.5 else second
        sender = second if receiver is first else first
        if sender.is_sink:
            return None
        return receiver.id

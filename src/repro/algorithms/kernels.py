"""Vectorized decision kernels: array-form twins of registered algorithms.

The trial-vectorized engine (:class:`~repro.core.vector_execution.
VectorizedExecutor`) does not call ``algorithm.decide`` once per
interaction.  Instead, each supported algorithm registers a **decision
kernel**: a pure-array function that, given dense index arrays ``(iu, iv)``
(canonically ordered, lower rank first) and the interaction times ``t``,
returns a *direction* per interaction:

* :data:`FIRST_RECEIVES` (0) — the canonically-first node receives,
* :data:`SECOND_RECEIVES` (1) — the canonically-second node receives,
* :data:`NO_TRANSMISSION` (-1) — the algorithm abstains.

Two kernel flavours exist:

* **vectorized** kernels (``vectorized = True``) are pure functions of the
  interaction and per-trial precomputed tables; the engine evaluates them on
  whole candidate blocks with one numpy call (``decide_block``).
* **sequential** kernels (``vectorized = False``) consume per-decision
  state — the randomized baselines draw from their ``random.Random`` stream
  once per decision, exactly like their object form.  The engine calls
  ``decide_one`` scalar-by-scalar on exactly the interactions whose
  endpoints both own data at execution time, in time order, so the RNG
  stream (and therefore the run) is identical to the reference engine's,
  seed for seed.

A kernel validates its preconditions in :meth:`DecisionKernel.prepare` and
raises :class:`KernelUnsupported` when the trial's source or knowledge shape
is not one it can reproduce **exactly**; the engine then falls back to
:class:`~repro.core.fast_execution.FastExecutor` for that trial and reports
the reason (see ``VectorizedExecutor.last_fallbacks``).  **Every registered
algorithm has a kernel** — :func:`get_kernel` raises on a miss — so a
fallback is an observable exception, never a routine code path.  Equality
with the object form is enforced by the differential tests in
``tests/test_vector_execution.py`` across every committed adversary family.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.algorithm import DODAAlgorithm, KNOWLEDGE_MEET_TIME

__all__ = [
    "NO_TRANSMISSION",
    "FIRST_RECEIVES",
    "SECOND_RECEIVES",
    "DecisionKernel",
    "KernelUnsupported",
    "KERNELS",
    "get_kernel",
    "register_kernel",
]

#: Direction codes returned by decision kernels.
NO_TRANSMISSION = -1
FIRST_RECEIVES = 0
SECOND_RECEIVES = 1
#: A vectorized kernel may return this for interactions it chose not to
#: decide yet; the engine calls :meth:`DecisionKernel.resolve_one` when (and
#: only when) such a candidate turns out to be live at execution time.
#: Deferral is exactness-preserving — a resolved decision is a pure function
#: of the committed future — and is what keeps oracle-backed kernels from
#: scanning the future for interactions the reference engine never queries.
PENDING = -2


class KernelUnsupported(Exception):
    """This kernel cannot exactly reproduce the trial; fall back.

    Raised by :meth:`DecisionKernel.prepare` when the interaction source or
    the knowledge bundle is not of a shape the kernel can mirror exactly
    (e.g. a ``meetTime`` oracle whose backing source is not the trial's
    committed adversary).  The vectorized engine treats it as a routing
    signal, never as an error.
    """


class DecisionKernel:
    """Base class for array-form decision kernels.

    Subclasses set ``algorithm_name`` (the registered algorithm they mirror)
    and ``vectorized``, and implement :meth:`prepare` plus
    :meth:`decide_block` (vectorized) or :meth:`decide_one` (sequential).
    """

    algorithm_name: str = "abstract"
    vectorized: bool = True
    #: Sparse kernels have a rare non-abstain set and an ownership-free,
    #: order-insensitive pure decision (e.g. Waiting's sink-only rule).
    #: The engine then runs ``decide_block`` on the raw draw order over the
    #: whole block — direction 0 names the ``iu`` argument positionally —
    #: and skips the block-level ownership mask entirely, leaving the
    #: ownership guard to the walk's scalar re-check.
    sparse: bool = False

    def prepare(
        self,
        algorithm: DODAAlgorithm,
        source: Any,
        knowledge: Any,
        horizon: int,
        n: int,
        sink_index: int,
        translate: Optional[np.ndarray] = None,
        sink_node: Any = None,
        index_of: Optional[Dict[Any, int]] = None,
    ) -> Any:
        """Build the per-trial kernel state (tables, parameters, RNG refs).

        ``index_of`` is the executor's node -> dense-index map (insertion
        order is the dense order); plan-building kernels need it to express
        node identifiers in array form.

        Raises:
            KernelUnsupported: when the trial cannot be reproduced exactly.
        """
        raise NotImplementedError

    def decide_block(
        self, state: Any, iu: np.ndarray, iv: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Directions for a block of interactions (vectorized kernels).

        ``iu``/``iv`` are dense node indices in canonical order (``iu`` has
        the lower identifier rank); ``t`` the interaction times.  Must be a
        pure function of its inputs and ``state``'s precomputed tables.
        """
        raise NotImplementedError

    def decide_one(self, state: Any, iu: int, iv: int, t: int) -> int:
        """Direction for one interaction (sequential kernels).

        Called on exactly the interactions whose endpoints both own data at
        execution time, in time order — the same call sites, in the same
        order, as the object algorithm's ``decide`` under the reference
        engine, so stateful kernels (RNG streams) stay seed-for-seed equal.
        """
        raise NotImplementedError

    def resolve_one(self, state: Any, iu: int, iv: int, t: int) -> int:
        """Late-resolve one :data:`PENDING` decision (vectorized kernels)."""
        raise NotImplementedError


#: algorithm name -> kernel instance.
KERNELS: Dict[str, DecisionKernel] = {}


def register_kernel(kernel_cls: type) -> type:
    """Register a kernel class under its ``algorithm_name`` (decorator)."""
    kernel = kernel_cls()
    KERNELS[kernel.algorithm_name] = kernel
    return kernel_cls


def get_kernel(algorithm_name: str) -> DecisionKernel:
    """The decision kernel mirroring ``algorithm_name``.

    Every registered algorithm ships a kernel, so a miss here is a
    programming error (an algorithm registered without its kernel, or a
    typo), not a routing signal.

    Raises:
        KeyError: naming the algorithm and listing the registered kernels.
    """
    try:
        return KERNELS[algorithm_name]
    except KeyError:
        registered = ", ".join(sorted(KERNELS))
        raise KeyError(
            f"no decision kernel is registered for algorithm "
            f"{algorithm_name!r}; registered kernels: {registered}"
        ) from None


# --------------------------------------------------------------------- #
# Oblivious knowledge-free kernels
# --------------------------------------------------------------------- #
class _SinkState:
    """Shared state shape for the knowledge-free kernels."""

    __slots__ = ("sink_index",)

    def __init__(self, sink_index: int) -> None:
        self.sink_index = sink_index


@register_kernel
class GatheringKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.gathering.Gathering`."""

    algorithm_name = "gathering"
    vectorized = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        return _SinkState(sink_index)

    def decide_block(self, state, iu, iv, t):
        # Receiver defaults to the first (lower-identifier) node; the sink
        # receives whenever it is part of the interaction.
        dirs = np.full(iu.shape[0], FIRST_RECEIVES, dtype=np.int8)
        dirs[iv == state.sink_index] = SECOND_RECEIVES
        return dirs


@register_kernel
class WaitingKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.waiting.Waiting`.

    Declared ``sparse``: only the ~2/n sink-involving interactions can ever
    transmit and the rule is ownership-free and order-insensitive (the
    receiver is the sink, whichever side it is on), so the engine feeds the
    raw draw order and skips the block-level ownership mask.
    """

    algorithm_name = "waiting"
    vectorized = True
    sparse = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        return _SinkState(sink_index)

    def decide_block(self, state, iu, iv, t):
        dirs = np.full(iu.shape[0], NO_TRANSMISSION, dtype=np.int8)
        dirs[iu == state.sink_index] = FIRST_RECEIVES
        dirs[iv == state.sink_index] = SECOND_RECEIVES
        return dirs


# --------------------------------------------------------------------- #
# meetTime-based kernel (Waiting Greedy)
# --------------------------------------------------------------------- #
class SinkMeetTable:
    """Lazily extended next-sink-meeting lookup over a committed future.

    Mirrors :class:`~repro.knowledge.meet_time.MeetTimeKnowledge` backed by
    a committed-block adversary with ``strict=False``: a *known*
    :meth:`lookup` answer is, per ``(node, t)`` pair, the smallest committed
    meeting time with the sink strictly greater than ``t``, or
    ``horizon + 1`` when there is none at or below ``horizon`` (the
    oracle's "never within the horizon" sentinel).  The committed future is
    scanned in growing prefixes — the scan extends (chunk-aligned, so the
    committed draws are untouched by the access pattern) only as far as the
    decisions actually require.

    All indices are in the *executor's* dense node order; ``translate`` maps
    the adversary's dense indices onto it when the orders differ.
    """

    def __init__(
        self,
        adversary: Any,
        sink_index: int,
        horizon: int,
        translate: Optional[np.ndarray] = None,
        gap: int = 4096,
    ) -> None:
        self._adversary = adversary
        self._sink = sink_index
        self._horizon = horizon
        self._translate = translate
        # Expected committed distance between two meetings of a fixed pair;
        # the scan extends by at least this much per resolution round so the
        # amortised cost per unresolved query stays O(1).
        self._gap = max(4096, int(gap))
        self._covered = 0  # committed prefix scanned so far
        self._complete = False  # no meetings can exist beyond _covered
        self._partners: List[np.ndarray] = []
        self._times: List[np.ndarray] = []
        # Flat (node, time) meeting list sorted by node then time, encoded
        # as keys node * stride + time for one-searchsorted-per-block
        # lookups.
        self._stride = horizon + 2
        self._keys = np.empty(0, dtype=np.int64)
        self._flat_nodes = np.empty(0, dtype=np.int64)
        self._flat_times = np.empty(0, dtype=np.int64)
        # Plain-list copies for the scalar lookup path (python bisect beats
        # numpy searchsorted by an order of magnitude on single keys).
        self._keys_list: List[int] = []
        self._flat_times_list: List[int] = []

    # ------------------------------------------------------------------ #
    def _extend(self, target: int) -> None:
        """Scan the committed future up to ``target`` interactions."""
        target = min(target, self._horizon + 1)
        if self._complete or target <= self._covered:
            return
        requested = target - self._covered
        i, j = self._adversary.committed_index_block(self._covered, target)
        count = i.shape[0]
        if self._translate is not None and count:
            i = self._translate[i]
            j = self._translate[j]
        hit = (i == self._sink) | (j == self._sink)
        if hit.any():
            offsets = np.nonzero(hit)[0]
            self._partners.append((i[offsets] + j[offsets]) - self._sink)
            self._times.append(offsets + self._covered)
            partners = np.concatenate(self._partners)
            times = np.concatenate(self._times)
            order = np.argsort(partners, kind="stable")
            self._flat_nodes = partners[order]
            self._flat_times = times[order]
            self._keys = self._flat_nodes * self._stride + self._flat_times
            self._keys_list = self._keys.tolist()
            self._flat_times_list = self._flat_times.tolist()
        self._covered += count
        if count < requested or self._covered >= self._horizon + 1:
            # Short block: the committed future is exhausted (finite trace
            # or max_horizon cap) — or the scan reached the sentinel bound.
            self._complete = True

    # ------------------------------------------------------------------ #
    def ensure_scanned(self, length: int) -> None:
        """Guarantee the scan covers at least ``length`` interactions."""
        while self._covered < min(length, self._horizon + 1) and not self._complete:
            self._extend(
                max(
                    self._covered + self._gap,
                    self._covered * 3 // 2,
                    length,
                )
            )

    def extend_round(self) -> bool:
        """One more scan round (at least one expected inter-meeting gap).

        Returns False when the scan cannot make further progress (the
        committed future is exhausted or the sentinel bound was reached).
        """
        if self._complete:
            return False
        self._extend(max(self._covered + self._gap, self._covered * 3 // 2))
        return True

    @property
    def covered(self) -> int:
        """How much of the committed future the scan has consumed."""
        return self._covered

    def lookup(self, nodes: np.ndarray, t: np.ndarray):
        """Per pair ``(node, t)``: next sink meeting, if currently decidable.

        Returns ``(values, known)``: where ``known`` is True the value is
        final — either the exact next meeting time (a found meeting inside
        the scanned prefix is always the global next one) or the
        ``horizon + 1`` sentinel (the scan is complete and found nothing).
        Where ``known`` is False, all that is certain is that the node's
        next sink meeting is strictly beyond the scanned prefix
        (``> covered - 1``).  Nodes equal to the sink get the identity
        ``meetTime`` (``t``), always known.
        """
        count = nodes.shape[0]
        values = np.full(count, self._horizon + 1, dtype=np.int64)
        sink_rows = nodes == self._sink
        if self._keys.shape[0]:
            keys = nodes * self._stride + t
            idx = np.searchsorted(self._keys, keys, side="right")
            found = idx < self._keys.shape[0]
            safe = np.where(found, idx, 0)
            found &= self._flat_nodes[safe] == nodes
            values[found] = self._flat_times[safe[found]]
        else:
            found = np.zeros(count, dtype=bool)
        known = found | self._complete | sink_rows
        if sink_rows.any():
            values[sink_rows] = t[sink_rows]
        return values, known

    def lookup_one(self, node: int, t: int) -> Tuple[int, bool]:
        """Scalar :meth:`lookup` for walk-time late resolution."""
        if node == self._sink:
            return t, True
        key = node * self._stride + t
        keys = self._keys_list
        idx = bisect_right(keys, key)
        if idx < len(keys) and keys[idx] < (node + 1) * self._stride:
            return self._flat_times_list[idx], True
        return self._horizon + 1, self._complete


class _WaitingGreedyState:
    __slots__ = ("tau", "table")

    def __init__(self, tau: int, table: SinkMeetTable) -> None:
        self.tau = tau
        self.table = table


@register_kernel
class WaitingGreedyKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.waiting_greedy.WaitingGreedy`.

    Supported exactly when the trial's ``meetTime`` oracle is a
    non-strict :class:`~repro.knowledge.meet_time.MeetTimeKnowledge` backed
    by the trial's own committed-block source — the shape every sim-layer
    runner builds — so the kernel's precomputed meeting tables are provably
    the same function the object algorithm would query.
    """

    algorithm_name = "waiting_greedy"
    vectorized = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        from ..knowledge.meet_time import MeetTimeKnowledge

        oracle = None
        if knowledge is not None and hasattr(knowledge, "oracle"):
            try:
                oracle = knowledge.oracle(KNOWLEDGE_MEET_TIME)
            except Exception:
                oracle = None
        elif isinstance(knowledge, MeetTimeKnowledge):
            oracle = knowledge
        if not isinstance(oracle, MeetTimeKnowledge):
            raise KernelUnsupported("no meetTime oracle to mirror")
        if oracle.strict or oracle.horizon is None:
            raise KernelUnsupported("strict/unbounded meetTime oracle")
        if oracle.source is not source:
            raise KernelUnsupported("meetTime oracle not backed by the source")
        if oracle.sink != sink_node:
            # An oracle answering about a *different* sink cannot be
            # mirrored by the executor-sink meeting tables.
            raise KernelUnsupported("meetTime oracle queries a different sink")
        if not hasattr(source, "committed_index_block"):
            raise KernelUnsupported("source is not a committed-block adversary")
        table = SinkMeetTable(
            source,
            sink_index,
            oracle.horizon,
            translate=translate,
            gap=n * (n - 1) // 2,
        )
        return _WaitingGreedyState(int(algorithm.tau), table)

    def decide_block(self, state, iu, iv, t):
        table = state.table
        tau = state.tau
        # Meetings at or below tau must be exact for the abstain decision,
        # so the scan runs out to tau + 1 once; afterwards every *unknown*
        # meet time is > covered >= tau + 1, i.e. automatically both beyond
        # tau and beyond any known (in-prefix) partner value: with one side
        # known the comparison and the tau threshold are both decided.
        # Pairs whose meet times are BOTH unknown are returned as PENDING
        # and resolved lazily (:meth:`resolve_one`) only if they are still
        # live when the engine's walk reaches them — this keeps the scan
        # depth bounded by the meetings the *realized* run actually
        # compares, never by stale candidates the reference engine would
        # not have queried either.
        table.ensure_scanned(tau + 1)
        m1, k1 = table.lookup(iu, t)
        m2, k2 = table.lookup(iv, t)
        dirs = np.full(iu.shape[0], PENDING, dtype=np.int8)
        both = k1 & k2
        # The object form abstains exactly when max(m1, m2) <= tau;
        # otherwise the side with the later sink meeting transmits
        # (ties go to the first node, which also covers the sink itself).
        dirs[both & (m1 <= tau) & (m2 <= tau)] = NO_TRANSMISSION
        dirs[both & (m1 <= m2) & (tau < m2)] = FIRST_RECEIVES
        dirs[both & (m1 > m2) & (tau < m1)] = SECOND_RECEIVES
        dirs[k1 & ~k2] = FIRST_RECEIVES
        dirs[~k1 & k2] = SECOND_RECEIVES
        return dirs

    def resolve_one(self, state, iu, iv, t):
        table = state.table
        tau = state.tau
        while True:
            m1, k1 = table.lookup_one(iu, t)
            m2, k2 = table.lookup_one(iv, t)
            if k1 and k2:
                if m1 <= m2:
                    return FIRST_RECEIVES if tau < m2 else NO_TRANSMISSION
                return SECOND_RECEIVES if tau < m1 else NO_TRANSMISSION
            if k1:
                return FIRST_RECEIVES
            if k2:
                return SECOND_RECEIVES
            table.extend_round()


# --------------------------------------------------------------------- #
# Sequential kernels: the randomized oblivious baselines
# --------------------------------------------------------------------- #
class _RngState:
    __slots__ = ("sink_index", "random", "p")

    def __init__(self, sink_index: int, random: Callable[[], float], p: float = 0.0) -> None:
        self.sink_index = sink_index
        self.random = random
        self.p = p


@register_kernel
class CoinFlipGatheringKernel(DecisionKernel):
    """Sequential twin of :class:`~repro.algorithms.random_baseline.CoinFlipGathering`.

    Shares the algorithm instance's ``random.Random`` stream, so decisions —
    and therefore the whole run — are identical to the object form as long
    as the engine calls :meth:`decide_one` on exactly the reference
    engine's ``decide`` call sites (both endpoints owning data, time order).
    """

    algorithm_name = "coin_flip_gathering"
    vectorized = False

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        return _RngState(sink_index, algorithm._rng.random, p=algorithm.p)

    def decide_one(self, state, iu, iv, t):
        if state.random() >= state.p:
            return NO_TRANSMISSION
        if iu == state.sink_index:
            return FIRST_RECEIVES
        if iv == state.sink_index:
            return SECOND_RECEIVES
        return FIRST_RECEIVES


@register_kernel
class RandomReceiverKernel(DecisionKernel):
    """Sequential twin of :class:`~repro.algorithms.random_baseline.RandomReceiver`."""

    algorithm_name = "random_receiver"
    vectorized = False

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        return _RngState(sink_index, algorithm._rng.random)

    def decide_one(self, state, iu, iv, t):
        if state.random() < 0.5:
            # First receives, second sends — unless the sender is the sink.
            return NO_TRANSMISSION if iv == state.sink_index else FIRST_RECEIVES
        return NO_TRANSMISSION if iu == state.sink_index else SECOND_RECEIVES


# --------------------------------------------------------------------- #
# Plan-lookup kernels: the knowledge-heavy algorithms
# --------------------------------------------------------------------- #
class _PlanState:
    """A materialised ``time -> (sender, receiver)`` plan in array form.

    ``times`` is sorted and unique (a plan is a dict keyed by time);
    ``senders``/``receivers`` hold executor-dense indices aligned with it.
    Plan nodes outside the executor's node set are encoded as ``-2``, which
    never equals a dense index — such entries simply never fire, exactly
    like the object form's pair-match test failing for every view pair.
    """

    __slots__ = ("times", "senders", "receivers")

    def __init__(
        self, times: np.ndarray, senders: np.ndarray, receivers: np.ndarray
    ) -> None:
        self.times = times
        self.senders = senders
        self.receivers = receivers


def _empty_plan_state() -> _PlanState:
    """A plan with no entries: the kernel never transmits."""
    empty = np.empty(0, dtype=np.int64)
    return _PlanState(empty, empty.copy(), empty.copy())


def _plan_state(plan: Dict[int, Tuple[Any, Any]], index_of: Dict[Any, int]) -> _PlanState:
    """Densify a ``time -> (sender, receiver)`` plan into a :class:`_PlanState`."""
    count = len(plan)
    times = np.fromiter(sorted(plan), dtype=np.int64, count=count)
    senders = np.fromiter(
        (index_of.get(plan[int(t)][0], -2) for t in times), dtype=np.int64, count=count
    )
    receivers = np.fromiter(
        (index_of.get(plan[int(t)][1], -2) for t in times), dtype=np.int64, count=count
    )
    return _PlanState(times, senders, receivers)


def _plan_decide_block(
    state: _PlanState, iu: np.ndarray, iv: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Directions for a raw-order block against a materialised plan.

    Pure and order-insensitive: an interaction transmits iff the plan names
    exactly its pair at exactly its time, with the direction given by the
    plan's receiver — the array form of the object algorithms'
    ``plan.get(time)`` + pair-match test.  Ownership is left to the walk's
    scalar re-check (the kernels are ``sparse``), mirroring the reference
    engine's guard that never calls ``decide`` unless both endpoints own
    data.
    """
    dirs = np.full(iu.shape[0], NO_TRANSMISSION, dtype=np.int8)
    if not state.times.shape[0]:
        return dirs
    idx = np.searchsorted(state.times, t)
    found = idx < state.times.shape[0]
    safe = np.where(found, idx, 0)
    found &= state.times[safe] == t
    senders = state.senders[safe]
    receivers = state.receivers[safe]
    dirs[found & (senders == iv) & (receivers == iu)] = FIRST_RECEIVES
    dirs[found & (senders == iu) & (receivers == iv)] = SECOND_RECEIVES
    return dirs


def _bundle_oracle(knowledge: Any, name: str) -> Any:
    """The raw oracle registered under ``name``, however ``knowledge`` is shaped.

    Accepts a knowledge bundle (the sim-layer shape) or a raw oracle object
    passed directly (the unit-test shape); returns None when neither yields
    an oracle.
    """
    if knowledge is None:
        return None
    if hasattr(knowledge, "oracle"):
        try:
            return knowledge.oracle(name)
        except Exception:
            return None
    return knowledge


@register_kernel
class FullKnowledgeKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.full_knowledge.FullKnowledge`.

    The object algorithm's decisions are a pure function of the optimal
    convergecast plan computed from its oracle's committed sequence plus a
    pair-match against the realized interaction, so the kernel needs no
    source-identity precondition: it materialises the same plan (via the
    shared :func:`~repro.algorithms.full_knowledge.convergecast_plan`
    builder) and decides by array lookup.  ``sparse`` because at most
    ``n - 1`` plan entries exist over the whole horizon.
    """

    algorithm_name = "full_knowledge"
    vectorized = True
    sparse = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        from .full_knowledge import convergecast_plan

        oracle = _bundle_oracle(knowledge, "full_knowledge")
        if oracle is None or not hasattr(oracle, "full_sequence"):
            raise KernelUnsupported("no full-knowledge oracle to mirror")
        if index_of is None:
            raise KernelUnsupported("engine did not supply the dense node order")
        plan = convergecast_plan(
            oracle.full_sequence(), list(index_of), sink_node, start=0
        )
        if plan is None:
            # No convergecast fits: the object form never transmits either.
            return _empty_plan_state()
        return _plan_state(plan, index_of)

    def decide_block(self, state, iu, iv, t):
        return _plan_decide_block(state, iu, iv, t)


@register_kernel
class FutureBroadcastKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.future_broadcast.FutureBroadcast`.

    Supported exactly when the trial's ``future`` oracle is backed by the
    very sequence the trial executes: then no node transmits before the
    canonical gossip completion time ``T_bcast`` (the convergecast plan
    starts strictly after it), so every node still owns data throughout the
    gossip phase, the realized table merges equal the unconditional gossip
    simulation, and every decision from ``T_bcast + 1`` on reduces to the
    same plan lookup the object form performs — which the kernel
    materialises once per trial via the shared
    :func:`~repro.algorithms.future_broadcast.broadcast_then_convergecast_plan`.
    (The object reconstructs the sequence from gossiped futures rather than
    reading it whole; reconstruction can orient pairs differently, but both
    the gossip simulation and the convergecast builder are
    orientation-insensitive, so the plans coincide.)
    """

    algorithm_name = "future_broadcast"
    vectorized = True
    sparse = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        from ..knowledge.future import FutureKnowledge
        from .future_broadcast import broadcast_then_convergecast_plan

        oracle = _bundle_oracle(knowledge, "future")
        if not isinstance(oracle, FutureKnowledge):
            raise KernelUnsupported("no future oracle to mirror")
        if oracle.sequence is not source:
            # Gossip dynamics depend on the interactions that actually
            # occur; only an oracle backed by the trial's own sequence is
            # provably mirrored by the offline simulation.
            raise KernelUnsupported(
                "future oracle is not backed by the trial's own sequence"
            )
        if index_of is None:
            raise KernelUnsupported("engine did not supply the dense node order")
        _, plan = broadcast_then_convergecast_plan(
            oracle.sequence, list(index_of), sink_node
        )
        if plan is None:
            # Gossip never completes (or no convergecast fits after it):
            # the object form never transmits either.
            return _empty_plan_state()
        return _plan_state(plan, index_of)

    def decide_block(self, state, iu, iv, t):
        return _plan_decide_block(state, iu, iv, t)


class _TreeState:
    """Per-trial spanning-tree bookkeeping in dense-index form.

    ``parent``/``parent_list`` are the tree in array and list form (``-1``
    for the root and unreachable nodes); ``needed[i]`` counts node ``i``'s
    tree children and ``received[i]`` how many have reported in.  Because
    ownership is monotone a child transmits at most once, so the counter is
    equivalent to the object form's received-children *set*.
    """

    __slots__ = ("parent", "parent_list", "needed", "received")

    def __init__(self, parent: List[int], needed: List[int]) -> None:
        self.parent = np.asarray(parent, dtype=np.int64)
        self.parent_list = list(parent)
        self.needed = list(needed)
        self.received = [0] * len(parent)


@register_kernel
class SpanningTreeKernel(DecisionKernel):
    """Array form of :class:`~repro.algorithms.spanning_tree.SpanningTreeAggregation`.

    The BFS tree of G-bar is deterministic, so the candidate set is exactly
    the tree edges — ``sparse``, since a tree has ``n - 1`` edges out of
    ~``n²/2`` possible pairs.  Whether a child may transmit depends on how
    many of its children have already reported, which is running state, so
    tree-edge candidates are returned :data:`PENDING` and resolved scalar-
    side in time order on live candidates only — the exact call sites where
    the reference engine queries the object algorithm.  Tree antisymmetry
    (``parent[u] == v`` and ``parent[v] == u`` cannot both hold) makes the
    raw-order branch test safe.
    """

    algorithm_name = "spanning_tree"
    vectorized = True
    sparse = True

    def prepare(self, algorithm, source, knowledge, horizon, n, sink_index,
                translate=None, sink_node=None, index_of=None):
        from .spanning_tree import dense_bfs_tree

        oracle = _bundle_oracle(knowledge, "underlying_graph")
        if oracle is None or not hasattr(oracle, "underlying_graph"):
            raise KernelUnsupported("no underlying-graph oracle to mirror")
        if index_of is None:
            raise KernelUnsupported("engine did not supply the dense node order")
        graph = oracle.underlying_graph()
        if sink_node not in graph:
            # The object form would crash computing the BFS tree; the
            # fallback engine reproduces that behaviour faithfully.
            raise KernelUnsupported("sink is not a node of the underlying graph")
        parent, needed = dense_bfs_tree(graph, sink_node, index_of)
        return _TreeState(parent, needed)

    def decide_block(self, state, iu, iv, t):
        parent = state.parent
        dirs = np.full(iu.shape[0], NO_TRANSMISSION, dtype=np.int8)
        dirs[(parent[iu] == iv) | (parent[iv] == iu)] = PENDING
        return dirs

    def resolve_one(self, state, iu, iv, t):
        if state.parent_list[iu] == iv:
            child, parent, direction = iu, iv, SECOND_RECEIVES
        else:
            child, parent, direction = iv, iu, FIRST_RECEIVES
        if state.received[child] == state.needed[child]:
            state.received[parent] += 1
            return direction
        return NO_TRANSMISSION

"""The paper's DODA algorithms plus baselines, all registered by name.

* :class:`Waiting` — transmit only to the sink (Theorem 9: O(n² log n)).
* :class:`Gathering` — always transmit (Theorem 9 / Corollary 2: O(n²),
  optimal without knowledge).
* :class:`WaitingGreedy` — meetTime-based (Theorem 10/11: optimal with
  ``tau = Θ(n^{3/2} √log n)``).
* :class:`SpanningTreeAggregation` — nodes know G-bar (Theorems 4 and 5).
* :class:`FutureBroadcast` — nodes know their own future (Theorem 6,
  Corollary 1).
* :class:`FullKnowledge` — nodes know the whole sequence (Theorem 8).
* :class:`CoinFlipGathering`, :class:`RandomReceiver` — randomized baselines
  used by the Theorem 2 construction and the comparison benches.
"""

from ..core.algorithm import registry
from .full_knowledge import FullKnowledge
from .future_broadcast import FutureBroadcast
from .gathering import Gathering
from .random_baseline import CoinFlipGathering, RandomReceiver
from .spanning_tree import SpanningTreeAggregation, build_bfs_tree
from .waiting import Waiting
from .waiting_greedy import WaitingGreedy, optimal_tau

__all__ = [
    "CoinFlipGathering",
    "FullKnowledge",
    "FutureBroadcast",
    "Gathering",
    "RandomReceiver",
    "SpanningTreeAggregation",
    "Waiting",
    "WaitingGreedy",
    "build_bfs_tree",
    "optimal_tau",
    "registry",
]

"""Spanning-tree aggregation when nodes know the underlying graph (Section 3.2).

Every node deterministically computes the same spanning tree of G-bar rooted
at the sink (a BFS tree with neighbours visited in identifier order), waits
until it has received the data of all its children, and then transmits to
its parent at the first opportunity.

* Theorem 4: if every interaction of G-bar occurs infinitely often, the
  algorithm terminates, hence has finite cost — but the cost is unbounded in
  general (the adversary can starve the one tree edge the algorithm waits
  for while offering convergecasts through another spanning tree).
* Theorem 5: if G-bar is a tree, the algorithm is optimal (cost 1): the tree
  is the only spanning tree, and transmitting as soon as a subtree is
  complete is exactly what the optimal offline schedule does.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..core.algorithm import (
    DODAAlgorithm,
    KNOWLEDGE_UNDERLYING_GRAPH,
    registry,
)
from ..core.data import NodeId
from ..core.node import NodeView

_RECEIVED_KEY = "spanning_tree/received_from"


@registry.register
class SpanningTreeAggregation(DODAAlgorithm):
    """Aggregate bottom-up along a deterministic spanning tree of G-bar."""

    name = "spanning_tree"
    oblivious = False
    requires = frozenset({KNOWLEDGE_UNDERLYING_GRAPH})

    def __init__(self) -> None:
        self._parent: Optional[Dict[NodeId, Optional[NodeId]]] = None
        self._children: Optional[Dict[NodeId, Set[NodeId]]] = None
        self._sink: Optional[NodeId] = None

    def on_run_start(self, nodes: Iterable[NodeId], sink: NodeId) -> None:
        """Forget the tree computed for a previous run."""
        self._parent = None
        self._children = None
        self._sink = sink

    # ------------------------------------------------------------------ #
    def _ensure_tree(self, view: NodeView) -> None:
        """Compute the deterministic BFS spanning tree once per run."""
        if self._parent is not None:
            return
        graph: nx.Graph = view.knowledge.underlying_graph()
        sink = self._sink
        if sink is None:
            # Fallback: the sink is identifiable from the views at decide time;
            # on_run_start normally sets it.
            raise RuntimeError("on_run_start was not called before decide")
        parent, children = build_bfs_tree(graph, sink)
        self._parent = parent
        self._children = children

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        self._ensure_tree(first if first.knowledge is not None else second)
        assert self._parent is not None and self._children is not None
        for child_view, parent_view in ((first, second), (second, first)):
            if self._parent.get(child_view.id) != parent_view.id:
                continue
            expected = self._children.get(child_view.id, set())
            received = child_view.memory.get(_RECEIVED_KEY, set())
            if expected <= received:
                # The child's subtree is fully aggregated: send it upward and
                # record the reception at the parent.
                parent_received = parent_view.memory.setdefault(
                    _RECEIVED_KEY, set()
                )
                parent_received.add(child_view.id)
                return parent_view.id
        return None


def dense_bfs_tree(
    graph: nx.Graph, root: NodeId, index_of: Dict[NodeId, int]
) -> Tuple[List[int], List[int]]:
    """The deterministic BFS tree in dense-index form for the array engine.

    Returns ``(parent, needed)`` lists indexed by ``index_of`` position:
    ``parent[i]`` is the dense index of node ``i``'s tree parent (``-1`` for
    the root, unreachable nodes, and parents outside ``index_of``) and
    ``needed[i]`` counts *all* tree children of node ``i`` — including
    children outside ``index_of``, which can never report in and therefore
    keep the node waiting forever, exactly like the object algorithm's
    never-satisfiable ``expected`` set.
    """
    parent_map, children_map = build_bfs_tree(graph, root)
    size = len(index_of)
    parent = [-1] * size
    needed = [0] * size
    for node, position in index_of.items():
        tree_parent = parent_map.get(node)
        if tree_parent is not None:
            parent[position] = index_of.get(tree_parent, -1)
        needed[position] = len(children_map.get(node, ()))
    return parent, needed


def build_bfs_tree(
    graph: nx.Graph, root: NodeId
) -> Tuple[Dict[NodeId, Optional[NodeId]], Dict[NodeId, Set[NodeId]]]:
    """Deterministic BFS tree of ``graph`` rooted at ``root``.

    Neighbours are visited in ascending ``repr`` order of their identifier so
    that every node computes the same tree, as the paper requires ("they
    compute the same tree, using node identifiers").

    Returns:
        ``(parent, children)`` maps.  Nodes unreachable from the root are
        absent from both maps (no aggregation can include them anyway).
    """
    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    children: Dict[NodeId, Set[NodeId]] = {root: set()}
    frontier: List[NodeId] = [root]
    while frontier:
        next_frontier: List[NodeId] = []
        for node in frontier:
            neighbours = sorted(graph.neighbors(node), key=repr)
            for neighbour in neighbours:
                if neighbour in parent:
                    continue
                parent[neighbour] = node
                children.setdefault(neighbour, set())
                children.setdefault(node, set()).add(neighbour)
                next_frontier.append(neighbour)
        frontier = next_frontier
    return parent, children

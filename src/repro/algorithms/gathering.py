"""The Gathering algorithm (Section 4).

A node transmits whenever it can: to the sink if the sink is met, and
otherwise to its peer (the node with the smaller identifier receives, per
the paper's tie-breaking convention).  Under the randomized adversary it
terminates in O(n²) interactions in expectation (Theorem 9) and this is
optimal for algorithms without knowledge (Theorem 7 / Corollary 2).
"""

from __future__ import annotations

from typing import Optional

from ..core.algorithm import DODAAlgorithm, registry
from ..core.data import NodeId
from ..core.node import NodeView


@registry.register
class Gathering(DODAAlgorithm):
    """Always transmit: to the sink if present, otherwise to the lower-ID node."""

    name = "gathering"
    oblivious = True
    requires = frozenset()

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        if first.is_sink:
            return first.id
        if second.is_sink:
            return second.id
        # Both nodes own data (the executor already checked); the first node
        # (smaller identifier) receives, the second transmits.
        return first.id

"""The Waiting Greedy algorithm (Section 4.3).

Waiting Greedy is parameterised by a time threshold ``tau`` and uses the
``meetTime`` oracle: during an interaction, the node whose next meeting with
the sink is the *latest* transmits, but only if that meeting is later than
``tau``.  After time ``tau`` the behaviour degenerates to Gathering (every
meet time exceeds ``tau``).

With ``tau = Θ(n^{3/2} √log n)`` the algorithm terminates within ``tau``
interactions with high probability (Theorem 10 / Corollary 3) and this is
optimal among algorithms knowing only ``meetTime`` (Theorem 11).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.algorithm import DODAAlgorithm, KNOWLEDGE_MEET_TIME, registry
from ..core.data import NodeId
from ..core.node import NodeView


def optimal_tau(n: int, constant: float = 1.0) -> int:
    """The parameter of Corollary 3: ``tau = constant * n^{3/2} sqrt(log n)``."""
    if n < 2:
        raise ValueError("n must be at least 2")
    return max(1, int(math.ceil(constant * n ** 1.5 * math.sqrt(math.log(n)))))


@registry.register
class WaitingGreedy(DODAAlgorithm):
    """Transmit away from the node whose sink meeting is farthest beyond ``tau``."""

    name = "waiting_greedy"
    oblivious = True
    requires = frozenset({KNOWLEDGE_MEET_TIME})

    def __init__(self, tau: int) -> None:
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.tau = tau

    @classmethod
    def with_optimal_tau(cls, n: int, constant: float = 1.0) -> "WaitingGreedy":
        """Instantiate with the optimal ``tau`` of Corollary 3 for ``n`` nodes."""
        return cls(tau=optimal_tau(n, constant=constant))

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        m1 = first.meet_time(time)
        m2 = second.meet_time(time)
        if m1 <= m2 and self.tau < m2:
            # The second node will not meet the sink before tau: it hands its
            # data to the first node (which meets the sink sooner).
            return first.id
        if m1 > m2 and self.tau < m1:
            return second.id
        return None

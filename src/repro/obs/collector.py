"""Collector protocol, the no-op default, and the in-memory recorder.

The hot-path contract is the invariant this module exists to protect:
instrumented code fetches the current collector once per run, checks its
``enabled`` flag, and only pays for telemetry when a recording collector
is installed.  With the default :data:`NOOP` collector every ``span()``
call returns one shared null handle and every ``counter()``/``event()``
call is a constant-time no-op, so instrumentation never spends the
recorded engine speedups (``benchmarks/test_bench_obs.py`` gates this).

``RecordingCollector`` snapshots are plain picklable dataclasses so the
fork-pool can ship per-worker recordings back to the parent and
``merge()`` them into one trace.  ``time.perf_counter`` is
``CLOCK_MONOTONIC`` on Linux and therefore comparable across forked
processes, which is what makes cross-process span timelines line up.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

ArgValue = Union[str, int, float, bool, None]


def now() -> float:
    """Monotonic timestamp in seconds (the only sanctioned timing call).

    Every timing measurement in ``src/`` goes through this helper so the
    reprolint RPL004 allowlist for ``time.perf_counter`` can stay
    confined to ``repro.obs``.
    """

    return time.perf_counter()  # reprolint: disable=RPL004


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named interval with structured arguments."""

    name: str
    start: float
    end: float
    pid: int
    tid: int
    args: Tuple[Tuple[str, ArgValue], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CounterRecord:
    """A sampled numeric series point (Chrome-trace ``C`` phase)."""

    name: str
    ts: float
    value: float
    pid: int
    tid: int


@dataclass(frozen=True)
class EventRecord:
    """An instant event (Chrome-trace ``i`` phase), e.g. an engine fallback."""

    name: str
    ts: float
    pid: int
    tid: int
    args: Tuple[Tuple[str, ArgValue], ...] = ()


@dataclass
class CollectorSnapshot:
    """Picklable dump of a recording: shipped from fork workers to parent."""

    spans: List[SpanRecord] = field(default_factory=list)
    counters: List[CounterRecord] = field(default_factory=list)
    events: List[EventRecord] = field(default_factory=list)


def _freeze_args(args: Dict[str, ArgValue]) -> Tuple[Tuple[str, ArgValue], ...]:
    return tuple(sorted(args.items()))


class _NullSpan:
    """The shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None

    def set(self, **args: ArgValue) -> None:
        """Ignore late-bound span arguments."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span on a :class:`RecordingCollector`; closes on ``__exit__``."""

    __slots__ = ("_collector", "_name", "_start", "_args")

    def __init__(
        self, collector: "RecordingCollector", name: str, args: Dict[str, ArgValue]
    ) -> None:
        self._collector = collector
        self._name = name
        self._args = args
        self._start = now()

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._collector.add_span(self._name, self._start, now(), **self._args)
        return None

    def set(self, **args: ArgValue) -> None:
        """Attach arguments discovered while the span was running."""

        self._args.update(args)


SpanHandle = Union[_NullSpan, _LiveSpan]


class NoopCollector:
    """Default collector: disabled, constant-time, allocation-free."""

    enabled: bool = False

    def span(self, name: str, **args: ArgValue) -> SpanHandle:
        return _NULL_SPAN

    def counter(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **args: ArgValue) -> None:
        return None

    def add_span(
        self, name: str, start: float, end: float, **args: ArgValue
    ) -> None:
        return None


class RecordingCollector(NoopCollector):
    """In-memory collector capturing spans, counters, and instant events."""

    enabled: bool = True

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._spans: List[SpanRecord] = []
        self._counters: List[CounterRecord] = []
        self._events: List[EventRecord] = []

    def _ids(self) -> Tuple[int, int]:
        # Re-read the pid so a collector inherited through fork() records
        # under the worker's pid, not the parent's.
        return os.getpid(), threading.get_ident()

    def span(self, name: str, **args: ArgValue) -> SpanHandle:
        return _LiveSpan(self, name, dict(args))

    def counter(self, name: str, value: float) -> None:
        pid, tid = self._ids()
        self._counters.append(CounterRecord(name, now(), float(value), pid, tid))

    def event(self, name: str, **args: ArgValue) -> None:
        pid, tid = self._ids()
        self._events.append(EventRecord(name, now(), pid, tid, _freeze_args(args)))

    def add_span(
        self, name: str, start: float, end: float, **args: ArgValue
    ) -> None:
        """Record a pre-measured interval (for phases timed out-of-band)."""

        pid, tid = self._ids()
        self._spans.append(
            SpanRecord(name, start, end, pid, tid, _freeze_args(args))
        )

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        return tuple(self._spans)

    @property
    def counters(self) -> Tuple[CounterRecord, ...]:
        return tuple(self._counters)

    @property
    def events(self) -> Tuple[EventRecord, ...]:
        return tuple(self._events)

    def snapshot(self) -> CollectorSnapshot:
        """Dump the recording as a picklable value (worker → parent)."""

        return CollectorSnapshot(
            spans=list(self._spans),
            counters=list(self._counters),
            events=list(self._events),
        )

    def merge(self, snapshot: CollectorSnapshot) -> None:
        """Fold a worker snapshot into this collector's timeline."""

        self._spans.extend(snapshot.spans)
        self._counters.extend(snapshot.counters)
        self._events.extend(snapshot.events)


Collector = NoopCollector
"""Alias: any collector is substitutable for the no-op base."""

NOOP = NoopCollector()

_ACTIVE: List[NoopCollector] = [NOOP]


def current_collector() -> NoopCollector:
    """Return the collector instrumented code should emit to."""

    return _ACTIVE[-1]


@contextmanager
def use_collector(collector: NoopCollector) -> Iterator[NoopCollector]:
    """Install ``collector`` as current for the duration of the block."""

    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.pop()

"""Observability: hierarchical spans, counters, and run telemetry.

``repro.obs`` is the measurement substrate for every layer above it:
engines emit spans around committed-draw generation and kernel blocks,
sweeps and the campaign runner wrap cells, the fork-pool merges
per-worker collectors into the parent, and the search loop reports
per-generation progress.  A pluggable :class:`Collector` makes all of
it opt-in: the default :data:`NOOP` collector reduces every
instrumentation site to a single attribute check, the
:class:`RecordingCollector` captures spans/counters/events in memory,
and :mod:`repro.obs.chrome` exports recordings as Chrome-trace
(Perfetto ``traceEvents``) JSON.

Invariant: telemetry is never result-determining.  Collectors observe
wall-clock time and counters but cannot influence seeds, draws,
metrics, or store bytes; campaign telemetry lands in a *sidecar*
``telemetry.jsonl`` (:mod:`repro.obs.sidecar`) next to the store so
content-addressed shards and manifests stay byte-identical whether or
not tracing is enabled.  This module is the only place in ``src/``
where ``time.perf_counter``/``time.monotonic`` may be called —
reprolint's RPL004 enforces that confinement.
"""

from .collector import (
    Collector,
    CollectorSnapshot,
    CounterRecord,
    EventRecord,
    NoopCollector,
    NOOP,
    RecordingCollector,
    SpanHandle,
    SpanRecord,
    current_collector,
    now,
    use_collector,
)
from .chrome import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .sidecar import (
    TelemetryWriter,
    latest_cell_records,
    read_telemetry,
    summarize_run,
    telemetry_path_for_store,
)

__all__ = [
    "Collector",
    "CollectorSnapshot",
    "CounterRecord",
    "EventRecord",
    "NoopCollector",
    "NOOP",
    "RecordingCollector",
    "SpanHandle",
    "SpanRecord",
    "current_collector",
    "now",
    "use_collector",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "TelemetryWriter",
    "latest_cell_records",
    "read_telemetry",
    "summarize_run",
    "telemetry_path_for_store",
]

"""Telemetry sidecar: append-only ``telemetry.jsonl`` next to a store.

The campaign store's shards and manifest are content-addressed and must
stay byte-identical across fresh and resumed runs — so anything
wall-clock-flavoured (per-cell elapsed seconds, trials/sec, resume
skips) is written *here*, to a sibling ``telemetry.jsonl`` the store
never reads.  Each line is one JSON object with a ``type`` field:

- ``{"type": "cell", "cell": key, "elapsed_seconds": s,
  "trials": t, "trials_per_second": r, "fallbacks": f, "engine": e,
  "ts": epoch}`` — one executed cell;
- ``{"type": "skip", "cell": key, "ts": epoch}`` — a cell skipped on
  resume because the manifest already holds it;
- ``{"type": "run", "elapsed_seconds": s, "cells": c, "skipped": k,
  "ts": epoch}`` — a completed ``campaign run`` invocation.

Invariant: the sidecar is observe-only.  Deleting it never changes what
a resumed campaign computes, and two runs that differ only in telemetry
produce byte-identical shards and manifests (tested in
``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

TELEMETRY_FILENAME = "telemetry.jsonl"


def telemetry_path_for_store(store_dir: Union[str, Path]) -> Path:
    """Sidecar location for a campaign store directory."""

    return Path(store_dir) / TELEMETRY_FILENAME


class TelemetryWriter:
    """Append-only writer for the telemetry sidecar."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def _append(self, record: Dict[str, Any]) -> None:
        record.setdefault("ts", time.time())  # reprolint: disable=RPL004
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def cell(
        self,
        cell: str,
        *,
        elapsed_seconds: float,
        trials: int,
        fallbacks: int,
        engine: str,
    ) -> None:
        """Record one executed campaign cell."""

        rate = trials / elapsed_seconds if elapsed_seconds > 0 else 0.0
        self._append(
            {
                "type": "cell",
                "cell": cell,
                "elapsed_seconds": elapsed_seconds,
                "trials": trials,
                "trials_per_second": rate,
                "fallbacks": fallbacks,
                "engine": engine,
            }
        )

    def skip(self, cell: str) -> None:
        """Record a cell skipped on resume (already in the manifest)."""

        self._append({"type": "skip", "cell": cell})

    def run(
        self, *, elapsed_seconds: float, cells: int, skipped: int
    ) -> None:
        """Record a completed ``campaign run`` invocation."""

        self._append(
            {
                "type": "run",
                "elapsed_seconds": elapsed_seconds,
                "cells": cells,
                "skipped": skipped,
            }
        )


def read_telemetry(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load sidecar records; missing file reads as no telemetry."""

    target = Path(path)
    if not target.is_file():
        return []
    records: List[Dict[str, Any]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            loaded = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn tail line from an interrupted run is fine
        if isinstance(loaded, dict):
            records.append(loaded)
    return records


def latest_cell_records(
    records: List[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Index ``cell`` records by cell key, keeping the most recent."""

    latest: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "cell":
            continue
        cell = record.get("cell")
        if isinstance(cell, str):
            latest[cell] = record
    return latest


def summarize_run(
    records: List[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Return the most recent ``run`` record, if any."""

    runs = [r for r in records if r.get("type") == "run"]
    return runs[-1] if runs else None

"""Chrome-trace (Perfetto ``traceEvents``) export and validation.

Converts a :class:`~repro.obs.collector.RecordingCollector` (or a
snapshot) into the Trace Event JSON format that ``ui.perfetto.dev`` and
``chrome://tracing`` load directly: spans become complete (``"X"``)
events with microsecond ``ts``/``dur``, counters become ``"C"`` series,
and instant events become ``"i"`` marks.  ``validate_chrome_trace``
re-checks the schema (used by CI on the traced campaign smoke), so an
exporter regression fails the pipeline rather than producing a file
Perfetto silently refuses.

Invariant: export is read-only — it serializes what a collector already
recorded and never feeds anything back into the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .collector import CollectorSnapshot, RecordingCollector

_US = 1_000_000.0

Recording = Union[RecordingCollector, CollectorSnapshot]


def _records(recording: Recording) -> CollectorSnapshot:
    if isinstance(recording, RecordingCollector):
        return recording.snapshot()
    return recording


def to_chrome_trace(recording: Recording) -> Dict[str, Any]:
    """Render a recording as a ``{"traceEvents": [...]}`` payload."""

    snapshot = _records(recording)
    events: List[Dict[str, Any]] = []
    for span in sorted(snapshot.spans, key=lambda s: (s.start, s.name)):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "cat": span.name.split(".", 1)[0],
                "ts": span.start * _US,
                "dur": max(span.end - span.start, 0.0) * _US,
                "pid": span.pid,
                "tid": span.tid,
                "args": dict(span.args),
            }
        )
    for counter in snapshot.counters:
        events.append(
            {
                "name": counter.name,
                "ph": "C",
                "cat": counter.name.split(".", 1)[0],
                "ts": counter.ts * _US,
                "pid": counter.pid,
                "tid": counter.tid,
                "args": {"value": counter.value},
            }
        )
    for event in snapshot.events:
        events.append(
            {
                "name": event.name,
                "ph": "i",
                "s": "t",
                "cat": event.name.split(".", 1)[0],
                "ts": event.ts * _US,
                "pid": event.pid,
                "tid": event.tid,
                "args": dict(event.args),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recording: Recording, path: Union[str, Path]) -> Path:
    """Serialize a recording to ``path`` as Chrome-trace JSON."""

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(to_chrome_trace(recording), indent=None, sort_keys=True),
        encoding="utf-8",
    )
    return target


_VALID_PHASES = {"X", "C", "i"}


def validate_chrome_trace(
    payload: Dict[str, Any], require_spans: bool = True
) -> List[str]:
    """Return schema problems in a trace payload (empty list == valid)."""

    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    span_count = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"event {index}: name is not a string")
        if phase == "X":
            span_count += 1
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: bad dur {dur!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event {index}: counter without args")
    if require_spans and span_count == 0:
        problems.append("trace contains no spans")
    return problems

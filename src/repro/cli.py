"""Command-line interface: run experiments and single trials from a shell.

Usage examples::

    # list the experiments of DESIGN.md
    python -m repro list

    # run one experiment and print its markdown report
    python -m repro run E11

    # run every experiment (the content of EXPERIMENTS.md)
    python -m repro run-all --output experiments.md

    # one-off trial of an algorithm against the randomized adversary
    python -m repro trial gathering --n 100 --seed 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.algorithm import registry
from .experiments.registry import EXPERIMENTS, run_experiment
from .sim.runner import run_random_trial


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-doda`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-doda",
        description="Reproduction of 'Distributed Online Data Aggregation in "
        "Dynamic Graphs' (Bramas, Masuzawa, Tixeuil, ICDCS 2016)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments and algorithms")

    run_parser = subparsers.add_parser("run", help="run one experiment by id (e.g. E11)")
    run_parser.add_argument("experiment_id", help="experiment identifier from DESIGN.md")
    run_parser.add_argument(
        "--output", help="write the markdown report to this file", default=None
    )

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument(
        "--output", help="write the combined markdown report to this file", default=None
    )

    trial_parser = subparsers.add_parser(
        "trial", help="run one trial of an algorithm against the randomized adversary"
    )
    trial_parser.add_argument("algorithm", help="registered algorithm name")
    trial_parser.add_argument("--n", type=int, default=50, help="number of nodes")
    trial_parser.add_argument("--seed", type=int, default=0, help="adversary seed")
    trial_parser.add_argument(
        "--tau", type=int, default=None, help="tau parameter (waiting_greedy only)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Experiments:")
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            print(f"  {experiment_id:4s} {EXPERIMENTS[experiment_id].claim}")
        print("Algorithms:")
        for name in registry.names():
            print(f"  {name}")
        return 0

    if args.command == "run":
        report = run_experiment(args.experiment_id)
        text = report.to_markdown()
        _emit(text, args.output)
        return 0 if report.verdict else 1

    if args.command == "run-all":
        sections = []
        all_ok = True
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            report = EXPERIMENTS[experiment_id].runner()
            sections.append(report.to_markdown())
            all_ok = all_ok and report.verdict
        _emit("\n\n".join(sections), args.output)
        return 0 if all_ok else 1

    if args.command == "trial":
        kwargs = {}
        if args.algorithm == "waiting_greedy":
            from .algorithms.waiting_greedy import optimal_tau

            kwargs["tau"] = args.tau if args.tau is not None else optimal_tau(args.n)
        algorithm = registry.create(args.algorithm, **kwargs)
        metrics = run_random_trial(algorithm, args.n, args.seed)
        print(
            f"algorithm={metrics.algorithm} n={metrics.n} terminated={metrics.terminated} "
            f"duration={metrics.duration} transmissions={metrics.transmissions}"
        )
        return 0 if metrics.terminated else 1

    parser.error(f"unknown command {args.command!r}")
    return 2


def _emit(text: str, output: Optional[str]) -> None:
    """Print the text or write it to a file."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

"""Command-line interface: run experiments and single trials from a shell.

Usage examples::

    # list the experiments of DESIGN.md
    python -m repro list

    # run one experiment and print its markdown report
    python -m repro run E11

    # run every experiment (the content of EXPERIMENTS.md)
    python -m repro run-all --output experiments.md

    # one-off trial of an algorithm against the randomized adversary
    python -m repro trial gathering --n 100 --seed 3

    # fast-engine n sweep across 4 worker processes
    python -m repro sweep gathering --ns 50,100,200 --trials 20 \
        --engine fast --workers 4
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from .adversaries.factory import ADVERSARY_FAMILIES
from .core.algorithm import registry
from .experiments.registry import EXPERIMENTS, run_experiment
from .sim.parallel import sweep_random_adversary
from .sim.runner import (
    ENGINES,
    resolve_engine,
    run_random_trial,
    validate_sweep_parameters,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-doda`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-doda",
        description="Reproduction of 'Distributed Online Data Aggregation in "
        "Dynamic Graphs' (Bramas, Masuzawa, Tixeuil, ICDCS 2016)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="reference",
            help="execution engine: 'reference' is the semantics oracle, "
            "'fast' removes per-interaction overhead, 'vectorized' runs "
            "whole sweep cells as numpy arrays (kernel-less algorithms "
            "fall back to the fast engine) — all three produce identical "
            "results seed for seed (default: reference)",
        )

    def add_workers_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes for trial sweeps; results are identical "
            "for any worker count (default: 1)",
        )

    def add_adversary_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--adversary",
            choices=sorted(ADVERSARY_FAMILIES),
            default="uniform",
            help="committed adversary family: 'uniform' is the paper's "
            "Section 4 randomized adversary; 'zipf'/'hub' skew the pair "
            "distribution; 'waypoint'/'community' are mobility models "
            "(default: uniform)",
        )

    subparsers.add_parser("list", help="list available experiments and algorithms")

    run_parser = subparsers.add_parser("run", help="run one experiment by id (e.g. E11)")
    run_parser.add_argument("experiment_id", help="experiment identifier from DESIGN.md")
    run_parser.add_argument(
        "--output", help="write the markdown report to this file", default=None
    )
    add_engine_option(run_parser)
    add_workers_option(run_parser)

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument(
        "--output", help="write the combined markdown report to this file", default=None
    )
    add_engine_option(all_parser)
    add_workers_option(all_parser)

    trial_parser = subparsers.add_parser(
        "trial", help="run one trial of an algorithm against the randomized adversary"
    )
    trial_parser.add_argument("algorithm", help="registered algorithm name")
    trial_parser.add_argument("--n", type=int, default=50, help="number of nodes")
    trial_parser.add_argument("--seed", type=int, default=0, help="adversary seed")
    trial_parser.add_argument(
        "--tau", type=int, default=None, help="tau parameter (waiting_greedy only)"
    )
    add_engine_option(trial_parser)
    add_adversary_option(trial_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="sweep n for one algorithm against a committed adversary",
    )
    sweep_parser.add_argument("algorithm", help="registered algorithm name")
    sweep_parser.add_argument(
        "--ns",
        default="16,24,36,54,80",
        help="comma-separated values of n (default: 16,24,36,54,80)",
    )
    sweep_parser.add_argument(
        "--trials", type=int, default=12, help="trials per n (default: 12)"
    )
    sweep_parser.add_argument(
        "--master-seed", type=int, default=0, help="master seed (default: 0)"
    )
    sweep_parser.add_argument(
        "--output", help="write the markdown table to this file", default=None
    )
    add_engine_option(sweep_parser)
    add_workers_option(sweep_parser)
    add_adversary_option(sweep_parser)
    sweep_parser.add_argument(
        "--batched",
        action="store_true",
        help="run each sweep cell as one batched engine invocation "
        "(fast or vectorized engine; composes with --workers, which then "
        "distributes whole cells; results identical to the per-trial path)",
    )
    sweep_parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="committed-future window consumed per batched-engine step "
        "(tuning knob for --engine fast/vectorized; default: the engine's "
        "benchmarked default)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Experiments:")
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            print(f"  {experiment_id:4s} {EXPERIMENTS[experiment_id].claim}")
        print("Algorithms:")
        for name in registry.names():
            print(f"  {name}")
        return 0

    if args.command == "run":
        spec = EXPERIMENTS.get(args.experiment_id)
        kwargs = _engine_kwargs(spec.runner, args) if spec is not None else {}
        # Unknown identifiers fall through to run_experiment's KeyError.
        report = run_experiment(args.experiment_id, **kwargs)
        text = report.to_markdown()
        _emit(text, args.output)
        return 0 if report.verdict else 1

    if args.command == "run-all":
        sections = []
        all_ok = True
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            runner = EXPERIMENTS[experiment_id].runner
            report = runner(**_engine_kwargs(runner, args))
            sections.append(report.to_markdown())
            all_ok = all_ok and report.verdict
        _emit("\n\n".join(sections), args.output)
        return 0 if all_ok else 1

    if args.command == "trial":
        algorithm = _create_algorithm(args.algorithm, args.n, tau=args.tau)
        metrics = run_random_trial(
            algorithm, args.n, args.seed, engine=args.engine,
            adversary=args.adversary,
        )
        print(
            f"algorithm={metrics.algorithm} n={metrics.n} "
            f"adversary={args.adversary} terminated={metrics.terminated} "
            f"duration={metrics.duration} transmissions={metrics.transmissions}"
        )
        return 0 if metrics.terminated else 1

    if args.command == "sweep":
        try:
            ns = [int(value) for value in args.ns.split(",") if value.strip()]
        except ValueError:
            parser.error(f"--ns must be a comma-separated list of integers, got {args.ns!r}")
        try:
            validate_sweep_parameters(ns, args.trials)
            resolve_engine(args.engine)
            if args.workers < 1:
                raise ValueError(f"workers must be >= 1, got {args.workers}")
            if args.algorithm not in registry.names():
                raise ValueError(
                    f"unknown algorithm {args.algorithm!r}; "
                    f"available: {', '.join(registry.names())}"
                )
        except ValueError as error:
            parser.error(str(error))
        if args.batched and args.engine == "reference":
            print(
                "note: --batched is a batched-engine feature; engine "
                "'reference' falls back to per-trial execution "
                "(identical results, none of the batching)",
                file=sys.stderr,
            )
        if args.block_size is not None and not args.batched:
            print(
                "note: --block-size only affects batched engine "
                "invocations; pass --batched to use it",
                file=sys.stderr,
            )
        sweep = sweep_random_adversary(
            lambda n: _create_algorithm(args.algorithm, n),
            ns,
            args.trials,
            master_seed=args.master_seed,
            engine=args.engine,
            workers=args.workers,
            adversary=args.adversary,
            batched=args.batched,
            block_size=args.block_size if args.batched else None,
        )
        _emit(sweep.to_table().to_markdown(), args.output)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


def _create_algorithm(name: str, n: int, tau: Optional[int] = None):
    """Instantiate a registered algorithm, filling in per-``n`` parameters."""
    kwargs = {}
    if name == "waiting_greedy":
        from .algorithms.waiting_greedy import optimal_tau

        kwargs["tau"] = tau if tau is not None else optimal_tau(n)
    return registry.create(name, **kwargs)


def _engine_kwargs(runner, args) -> dict:
    """The subset of ``--engine`` / ``--workers`` the runner understands.

    Experiment runners opt into the knobs by declaring ``engine`` /
    ``workers`` parameters; the others (offline/impossibility experiments)
    run as before, and a note is printed when a non-default flag had to be
    dropped so the user is never silently surprised.
    """
    parameters = inspect.signature(runner).parameters
    kwargs = {}
    if "engine" in parameters:
        kwargs["engine"] = args.engine
    elif args.engine != "reference":
        print(
            f"note: experiment {runner.__name__} is not wired for engine "
            "selection; --engine ignored",
            file=sys.stderr,
        )
    if "workers" in parameters:
        kwargs["workers"] = args.workers
    elif args.workers != 1:
        print(
            f"note: experiment {runner.__name__} is not wired for parallel "
            "sweeps; --workers ignored",
            file=sys.stderr,
        )
    return kwargs


def _emit(text: str, output: Optional[str]) -> None:
    """Print the text or write it to a file."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

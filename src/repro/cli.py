"""Command-line interface: run experiments and single trials from a shell.

Usage examples::

    # list the experiments of DESIGN.md
    python -m repro list

    # run one experiment and print its markdown report
    python -m repro run E11

    # run every experiment (the content of EXPERIMENTS.md)
    python -m repro run-all --output experiments.md

    # one-off trial of an algorithm against the randomized adversary
    python -m repro trial gathering --n 100 --seed 3

    # fast-engine n sweep across 4 worker processes
    python -m repro sweep gathering --ns 50,100,200 --trials 20 \
        --engine fast --workers 4

    # adversarial worst-case search, persisting the find as a replayable corpus
    python -m repro search gathering --family uniform --n 60 --budget 192 \
        --store corpora/gathering-uniform

    # declarative campaign: run (resumable), inspect, report
    python -m repro campaign run examples/campaign_paper.toml --workers 4
    python -m repro campaign status campaigns/paper-grid
    python -m repro campaign report campaigns/paper-grid --output report.md

Knob composition (details in ``docs/engines.md``): ``--engine`` selects the
executor everywhere it appears; ``--workers`` fans trials (or, with
``--batched``, whole sweep cells) over processes; ``--block-size`` tunes
the batched engines' committed window and therefore requires ``--batched``
on the sweep subcommand.  ``--ratio`` (on ``run``, ``run-all``, ``trial``
and ``sweep``) additionally captures the offline-optimum baseline per
trial, adding ``opt_cost``/``competitive_ratio`` metrics and ratio table
columns (``docs/metrics.md``); campaign specs opt in with ``ratio = true``
and their reports then carry ratio columns automatically.  Every
combination produces identical results — the knobs trade wall-clock time
only, and ``--ratio`` only *adds* metrics without changing any existing
one.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from .adversaries.factory import ADVERSARY_FAMILIES
from .core.algorithm import registry
from .experiments.registry import EXPERIMENTS, run_experiment
from .sim.parallel import sweep_random_adversary
from .sim.runner import (
    ENGINES,
    resolve_engine,
    run_random_trial,
    validate_sweep_parameters,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-doda`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-doda",
        description="Reproduction of 'Distributed Online Data Aggregation in "
        "Dynamic Graphs' (Bramas, Masuzawa, Tixeuil, ICDCS 2016)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="reference",
            help="execution engine: 'reference' is the semantics oracle, "
            "'fast' removes per-interaction overhead, 'vectorized' runs "
            "whole sweep cells as numpy arrays (kernel-less algorithms "
            "fall back to the fast engine) — all three produce identical "
            "results seed for seed (default: reference)",
        )

    def add_workers_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes for trial sweeps; composes with --engine "
            "and (on sweep/campaign) with --batched, which switches the "
            "task unit from single trials to whole cells; results are "
            "identical for any worker count (default: 1)",
        )

    def add_ratio_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--ratio",
            action="store_true",
            help="also evaluate the offline-optimum baseline (the paper's "
            "opt) on the committed window each trial consumed, reporting "
            "per-trial opt_cost and competitive_ratio (>= 1 whenever "
            "finite) and ratio table columns; identical values on every "
            "engine and execution path (see docs/metrics.md)",
        )

    def add_adversary_option(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--adversary",
            choices=sorted(ADVERSARY_FAMILIES),
            default="uniform",
            help="committed adversary family: 'uniform' is the paper's "
            "Section 4 randomized adversary; 'zipf'/'hub' skew the pair "
            "distribution; 'waypoint'/'community' are mobility models "
            "(default: uniform)",
        )

    subparsers.add_parser("list", help="list available experiments and algorithms")

    run_parser = subparsers.add_parser("run", help="run one experiment by id (e.g. E11)")
    run_parser.add_argument("experiment_id", help="experiment identifier from DESIGN.md")
    run_parser.add_argument(
        "--output", help="write the markdown report to this file", default=None
    )
    add_engine_option(run_parser)
    add_workers_option(run_parser)
    add_ratio_option(run_parser)

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument(
        "--output", help="write the combined markdown report to this file", default=None
    )
    add_engine_option(all_parser)
    add_workers_option(all_parser)
    add_ratio_option(all_parser)

    trial_parser = subparsers.add_parser(
        "trial", help="run one trial of an algorithm against the randomized adversary"
    )
    trial_parser.add_argument("algorithm", help="registered algorithm name")
    trial_parser.add_argument("--n", type=int, default=50, help="number of nodes")
    trial_parser.add_argument("--seed", type=int, default=0, help="adversary seed")
    trial_parser.add_argument(
        "--tau", type=int, default=None, help="tau parameter (waiting_greedy only)"
    )
    add_engine_option(trial_parser)
    add_adversary_option(trial_parser)
    add_ratio_option(trial_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="sweep n for one algorithm against a committed adversary",
    )
    sweep_parser.add_argument("algorithm", help="registered algorithm name")
    sweep_parser.add_argument(
        "--ns",
        default="16,24,36,54,80",
        help="comma-separated values of n (default: 16,24,36,54,80)",
    )
    sweep_parser.add_argument(
        "--trials", type=int, default=12, help="trials per n (default: 12)"
    )
    sweep_parser.add_argument(
        "--master-seed", type=int, default=0, help="master seed (default: 0)"
    )
    sweep_parser.add_argument(
        "--output", help="write the markdown table to this file", default=None
    )
    add_engine_option(sweep_parser)
    add_workers_option(sweep_parser)
    add_adversary_option(sweep_parser)
    add_ratio_option(sweep_parser)
    sweep_parser.add_argument(
        "--batched",
        action="store_true",
        help="run each sweep cell as one batched engine invocation "
        "(fast or vectorized engine; composes with --workers, which then "
        "distributes whole cells; results identical to the per-trial path)",
    )
    sweep_parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="committed-future window consumed per batched-engine step "
        "(tuning knob for --engine fast/vectorized; only effective "
        "together with --batched; default: the engine's benchmarked "
        "default)",
    )

    search_parser = subparsers.add_parser(
        "search",
        help="adversarial worst-case search: mutate committed schedules to "
        "hunt high-competitive-ratio instances (docs/search.md)",
        description="Seeded elitist search over committed schedules "
        "(docs/search.md): materialize family draws, mutate them through "
        "invariant-preserving operators, score each generation in one "
        "batched engine call with the offline-optimum baseline, and "
        "optionally persist the hardest finds into a replayable "
        "worst-case corpus.  Deterministic per --seed.",
    )
    search_parser.add_argument("algorithm", help="registered algorithm name")
    search_parser.add_argument(
        "--family",
        choices=sorted(ADVERSARY_FAMILIES),
        default="uniform",
        help="adversary family whose schedules are searched (default: uniform)",
    )
    search_parser.add_argument("--n", type=int, default=60, help="number of nodes (default: 60)")
    search_parser.add_argument(
        "--budget",
        type=int,
        default=192,
        help="total candidate evaluations, initial samples included (default: 192)",
    )
    search_parser.add_argument("--seed", type=int, default=0, help="master seed (default: 0)")
    search_parser.add_argument(
        "--pool-size", type=int, default=6, help="elitist pool size (default: 6)"
    )
    search_parser.add_argument(
        "--generation-size",
        type=int,
        default=16,
        help="children per generation — one engine call each (default: 16)",
    )
    search_parser.add_argument(
        "--initial", type=int, default=32, help="initial family draws (default: 32)"
    )
    search_parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="schedule length in interactions (default: the algorithm's "
        "default horizon at n)",
    )
    search_parser.add_argument(
        "--tau", type=int, default=None, help="tau parameter (waiting_greedy only)"
    )
    search_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="vectorized",
        help="scoring engine; under 'vectorized' any fallback aborts the "
        "search instead of silently downgrading (default: vectorized)",
    )
    search_parser.add_argument(
        "--store",
        default=None,
        help="persist the top finds into this worst-case corpus directory "
        "(content-addressed; replayable via TraceReplayAdversary)",
    )
    search_parser.add_argument(
        "--top",
        type=int,
        default=1,
        help="how many pool members to persist with --store (default: 1)",
    )
    search_parser.add_argument(
        "--output", help="write the markdown summary to this file", default=None
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="declarative experiment campaigns: sharded resumable runs "
        "with a checkpointed on-disk store and paper-figure reports",
        description="Run, inspect and report declarative campaigns "
        "(docs/campaigns.md).  A campaign spec (TOML/JSON) names "
        "algorithms x adversary families x n x trials; 'run' executes it "
        "cell by cell with checkpointing and resumes interrupted "
        "campaigns; 'status' verifies the store; 'report' aggregates it "
        "into the paper's comparison tables and figures.",
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run",
        help="run (or resume) a campaign spec; completed cells are "
        "skipped, so re-running after an interrupt finishes the grid",
    )
    campaign_run.add_argument("spec", help="path to a .toml/.json campaign spec")
    campaign_run.add_argument(
        "--store",
        default=None,
        help="store directory (default: campaigns/<campaign name>)",
    )
    campaign_run.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="override the spec's engine for this run; results are "
        "engine-invariant, so a campaign may be resumed under a "
        "different engine (default: the spec's engine)",
    )
    add_workers_option(campaign_run)
    campaign_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="execute at most this many pending cells, then stop (the "
        "store stays resumable; mainly for smoke tests and budgeted runs)",
    )
    campaign_run.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="override the spec's committed-window block size for the "
        "batched engines (campaign cells always run batched)",
    )

    campaign_status_parser = campaign_sub.add_parser(
        "status",
        help="verify a campaign store: complete / pending / corrupt cells",
    )
    campaign_status_parser.add_argument(
        "target", help="store directory, or a spec file (resolves its default store)"
    )

    campaign_report = campaign_sub.add_parser(
        "report",
        help="aggregate a campaign store into markdown tables "
        "(+ figures when matplotlib is available)",
    )
    campaign_report.add_argument(
        "target", help="store directory, or a spec file (resolves its default store)"
    )
    campaign_report.add_argument(
        "--output", default=None, help="write the markdown report to this file"
    )
    campaign_report.add_argument(
        "--figures",
        default=None,
        help="also write duration-vs-n figures into this directory "
        "(skipped with a note when matplotlib is not installed)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="wrap any repro command with span capture and write a "
        "Chrome-trace (Perfetto) JSON of where the time went",
        description="Run any repro subcommand under the recording "
        "collector (docs/observability.md) and export the captured "
        "engine/sweep/campaign/search spans as Chrome-trace JSON, "
        "loadable at ui.perfetto.dev or chrome://tracing.  Telemetry is "
        "observe-only: the wrapped command's results, stores and exit "
        "code are identical with and without tracing.",
    )
    trace_parser.add_argument(
        "--trace-out",
        default="trace.json",
        help="write the Chrome-trace JSON here (default: trace.json)",
    )
    trace_parser.add_argument(
        "wrapped",
        nargs=argparse.REMAINDER,
        help="the repro command line to trace, e.g. "
        "'campaign run examples/campaign_smoke.toml'",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="inspect the recorded benchmark trajectory "
        "(benchmarks/BENCH_*.json)",
        description="Render the benchmark history the perf gate floors: "
        "'trajectory' tabulates BENCH_engine.json (per-record engine "
        "speedups vs the reference) and BENCH_blocksize.json (committed-"
        "window tuning) so regressions and improvements are visible "
        "without scraping JSON.",
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    bench_trajectory = bench_sub.add_parser(
        "trajectory",
        help="tabulate the recorded BENCH_engine / BENCH_blocksize history",
    )
    bench_trajectory.add_argument(
        "--dir",
        default="benchmarks",
        help="directory holding BENCH_engine.json / BENCH_blocksize.json "
        "(default: benchmarks)",
    )
    bench_trajectory.add_argument(
        "--output", default=None, help="write the markdown tables to this file"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Experiments:")
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            print(f"  {experiment_id:4s} {EXPERIMENTS[experiment_id].claim}")
        print("Algorithms:")
        for name in registry.names():
            print(f"  {name}")
        return 0

    if args.command == "run":
        spec = EXPERIMENTS.get(args.experiment_id)
        kwargs = _engine_kwargs(spec.runner, args) if spec is not None else {}
        # Unknown identifiers fall through to run_experiment's KeyError.
        report = run_experiment(args.experiment_id, **kwargs)
        text = report.to_markdown()
        _emit(text, args.output)
        return 0 if report.verdict else 1

    if args.command == "run-all":
        sections = []
        all_ok = True
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            runner = EXPERIMENTS[experiment_id].runner
            report = runner(**_engine_kwargs(runner, args))
            sections.append(report.to_markdown())
            all_ok = all_ok and report.verdict
        _emit("\n\n".join(sections), args.output)
        return 0 if all_ok else 1

    if args.command == "trial":
        algorithm = _create_algorithm(args.algorithm, args.n, tau=args.tau)
        metrics = run_random_trial(
            algorithm, args.n, args.seed, engine=args.engine,
            adversary=args.adversary, capture_opt=args.ratio,
        )
        line = (
            f"algorithm={metrics.algorithm} n={metrics.n} "
            f"adversary={args.adversary} terminated={metrics.terminated} "
            f"duration={metrics.duration} transmissions={metrics.transmissions}"
        )
        if args.ratio:
            ratio = metrics.competitive_ratio
            line += (
                f" opt_cost={metrics.opt_cost} "
                f"competitive_ratio={'undefined' if ratio is None else ratio}"
            )
        print(line)
        return 0 if metrics.terminated else 1

    if args.command == "sweep":
        try:
            ns = [int(value) for value in args.ns.split(",") if value.strip()]
        except ValueError:
            parser.error(f"--ns must be a comma-separated list of integers, got {args.ns!r}")
        try:
            validate_sweep_parameters(ns, args.trials)
            resolve_engine(args.engine)
            if args.workers < 1:
                raise ValueError(f"workers must be >= 1, got {args.workers}")
            if args.algorithm not in registry.names():
                raise ValueError(
                    f"unknown algorithm {args.algorithm!r}; "
                    f"available: {', '.join(registry.names())}"
                )
        except ValueError as error:
            parser.error(str(error))
        if args.batched and args.engine == "reference":
            print(
                "note: --batched is a batched-engine feature; engine "
                "'reference' falls back to per-trial execution "
                "(identical results, none of the batching)",
                file=sys.stderr,
            )
        if args.block_size is not None and not args.batched:
            print(
                "note: --block-size only affects batched engine "
                "invocations; pass --batched to use it",
                file=sys.stderr,
            )
        sweep = sweep_random_adversary(
            lambda n: _create_algorithm(args.algorithm, n),
            ns,
            args.trials,
            master_seed=args.master_seed,
            engine=args.engine,
            workers=args.workers,
            adversary=args.adversary,
            batched=args.batched,
            block_size=args.block_size if args.batched else None,
            capture_opt=args.ratio,
        )
        _emit(sweep.to_table().to_markdown(), args.output)
        return 0

    if args.command == "search":
        return _search_main(parser, args)

    if args.command == "campaign":
        return _campaign_main(parser, args)

    if args.command == "trace":
        return _trace_main(parser, args)

    if args.command == "bench":
        return _bench_main(parser, args)

    parser.error(f"unknown command {args.command!r}")
    return 2


def _search_main(parser: argparse.ArgumentParser, args) -> int:
    """Dispatch the ``search`` subcommand (adversarial worst-case search)."""
    import math

    from .search import (
        SearchConfig,
        SearchEngineFallbackError,
        SearchError,
        WorstCaseCorpus,
        instance_from_candidate,
        run_search,
    )
    from .sim.results import ResultTable

    config = SearchConfig(
        algorithm=args.algorithm,
        family=args.family,
        n=args.n,
        budget=args.budget,
        seed=args.seed,
        engine=args.engine,
        pool_size=args.pool_size,
        generation_size=args.generation_size,
        initial_samples=args.initial,
        horizon=args.horizon,
        tau=args.tau,
    )
    try:
        outcome = run_search(config)
    except (SearchError, SearchEngineFallbackError) as error:
        parser.error(str(error))

    digests = {}
    if args.store is not None:
        corpus = WorstCaseCorpus(args.store)
        for rank, candidate in enumerate(outcome.pool[: max(args.top, 1)]):
            if math.isfinite(candidate.score):
                digests[rank] = corpus.add(
                    instance_from_candidate(config, candidate)
                )

    table = ResultTable(
        title=(
            f"Adversarial search: {args.algorithm} × {args.family} "
            f"(n={args.n}, budget={outcome.evaluations}, seed={args.seed})"
        ),
        columns=[
            "rank",
            "competitive_ratio",
            "duration",
            "opt_cost",
            "lineage_depth",
            "base_seed",
            "digest",
        ],
    )
    for rank, candidate in enumerate(outcome.pool):
        metrics = candidate.metrics
        table.add_row(
            rank=rank,
            competitive_ratio=(
                round(candidate.score, 3)
                if math.isfinite(candidate.score)
                else None
            ),
            duration=(
                int(metrics.duration) if metrics.terminated else None
            ),
            opt_cost=metrics.opt_cost,
            lineage_depth=len(candidate.lineage),
            base_seed=candidate.base_seed,
            digest=digests.get(rank, ""),
        )
    table.add_note(
        "best-so-far per generation: "
        + ", ".join(
            f"{value:.2f}" if math.isfinite(value) else "n/a"
            for value in outcome.history
        )
    )
    if args.store is not None:
        table.add_note(f"persisted {len(digests)} instance(s) to {args.store}")
    _emit(table.to_markdown(), args.output)
    return 0 if math.isfinite(outcome.best_ratio) else 1


def _trace_main(parser: argparse.ArgumentParser, args) -> int:
    """Dispatch ``trace``: run a wrapped command under span capture.

    The wrapped command runs through :func:`main` recursively with a
    :class:`~repro.obs.RecordingCollector` installed; its exit code is
    passed through unchanged and the recording is written as Chrome-trace
    JSON afterwards.  ``--trace-out`` is accepted on either side of the
    wrapped command (argparse's REMAINDER captures everything after the
    first positional, so the flag may land inside ``wrapped``).
    """
    from .obs import RecordingCollector, use_collector, write_chrome_trace

    wrapped = list(args.wrapped)
    trace_out = args.trace_out
    # Allow `repro trace sweep ... --trace-out f.json`: pull the flag
    # back out of the remainder if argparse swallowed it.
    while "--trace-out" in wrapped:
        position = wrapped.index("--trace-out")
        if position + 1 >= len(wrapped):
            parser.error("--trace-out requires a path argument")
        trace_out = wrapped[position + 1]
        del wrapped[position : position + 2]
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        parser.error("trace requires a repro command to wrap")
    if wrapped[0] == "trace":
        parser.error("trace cannot wrap itself")

    collector = RecordingCollector()
    with use_collector(collector):
        exit_code = main(wrapped)
    path = write_chrome_trace(collector, trace_out)
    print(
        f"trace: {len(collector.spans)} spans, {len(collector.events)} "
        f"events -> {path} (load at ui.perfetto.dev)",
        file=sys.stderr,
    )
    return exit_code


def _bench_main(parser: argparse.ArgumentParser, args) -> int:
    """Dispatch ``bench trajectory``: tabulate the BENCH_*.json history."""
    import json
    from pathlib import Path

    from .sim.results import ResultTable

    if args.bench_command != "trajectory":
        parser.error(f"unknown bench command {args.bench_command!r}")

    bench_dir = Path(args.dir)
    sections = []

    engine_path = bench_dir / "BENCH_engine.json"
    if engine_path.is_file():
        try:
            records = json.loads(engine_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            print(f"bench error: {engine_path}: {error}", file=sys.stderr)
            return 2
        table = ResultTable(
            title="Engine speedup trajectory (BENCH_engine.json)",
            columns=[
                "engine", "baseline", "adversary", "n", "trials",
                "speedup", "seconds", "baseline_seconds", "host",
            ],
        )
        for record in records:
            table.add_row(
                engine=record.get("engine"),
                baseline=record.get("baseline"),
                adversary=record.get("adversary"),
                n=record.get("n"),
                trials=record.get("trials"),
                speedup=record.get("speedup"),
                seconds=record.get("seconds"),
                baseline_seconds=record.get("baseline_seconds"),
                host=record.get("host"),
            )
        sections.append(table.to_markdown())

    blocksize_path = bench_dir / "BENCH_blocksize.json"
    if blocksize_path.is_file():
        try:
            records = json.loads(blocksize_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            print(f"bench error: {blocksize_path}: {error}", file=sys.stderr)
            return 2
        table = ResultTable(
            title="Committed-window tuning trajectory (BENCH_blocksize.json)",
            columns=[
                "n", "trials", "best_block_size", "default_block_size",
                "best_ms", "default_ms",
            ],
        )
        for record in records:
            timings = record.get("timings_ms", {})
            best = record.get("best_block_size")
            default = record.get("default_block_size")
            table.add_row(
                n=record.get("n"),
                trials=record.get("trials"),
                best_block_size=best,
                default_block_size=default,
                best_ms=timings.get(str(best)),
                default_ms=timings.get(str(default)),
            )
        sections.append(table.to_markdown())

    if not sections:
        print(
            f"bench error: no BENCH_engine.json or BENCH_blocksize.json "
            f"under {bench_dir}",
            file=sys.stderr,
        )
        return 2
    _emit("\n\n".join(sections), args.output)
    return 0


def _campaign_store_dir(target: str):
    """Resolve a campaign CLI target: a store directory or a spec file."""
    from pathlib import Path

    from .campaign import default_store_dir, load_campaign_spec

    path = Path(target)
    if path.suffix.lower() in (".toml", ".json") and path.is_file():
        return default_store_dir(load_campaign_spec(path))
    return path


def _campaign_main(parser: argparse.ArgumentParser, args) -> int:
    """Dispatch the ``campaign run|status|report`` subcommands."""
    from .campaign import (
        CampaignSpecError,
        CampaignStoreError,
        build_campaign_report,
        campaign_status,
        default_store_dir,
        load_campaign_spec,
        run_campaign,
        write_campaign_figures,
    )

    try:
        if args.campaign_command == "run":
            spec = load_campaign_spec(args.spec)
            store_dir = args.store or default_store_dir(spec)
            summary = run_campaign(
                spec,
                store_dir,
                engine=args.engine,
                workers=args.workers,
                max_cells=args.max_cells,
                block_size=args.block_size,
                echo=lambda line: print(line, file=sys.stderr),
            )
            print(summary.to_text())
            return 0 if summary.complete else 3

        if args.campaign_command == "status":
            print(campaign_status(_campaign_store_dir(args.target)))
            return 0

        if args.campaign_command == "report":
            store_dir = _campaign_store_dir(args.target)
            report = build_campaign_report(store_dir)
            if args.figures is not None:
                figures = write_campaign_figures(store_dir, args.figures)
                if figures is None:
                    report.notes.append(
                        "figures skipped: matplotlib is not installed"
                    )
                elif not figures:
                    report.notes.append(
                        "no figures written: the store holds no complete "
                        "cells with terminated trials yet"
                    )
                else:
                    report.notes.append(
                        "figures: " + ", ".join(str(path) for path in figures)
                    )
            _emit(report.to_markdown(), args.output)
            return 0
    except (CampaignSpecError, CampaignStoreError) as error:
        # Mirrors the perf_gate.py hardening: a missing, empty or corrupt
        # store (or a broken spec) is an operator-facing condition, so it
        # exits 2 with one clear actionable line — never a traceback, and
        # no argparse usage noise drowning the message.
        print(f"campaign error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown campaign command {args.campaign_command!r}")
    return 2


def _create_algorithm(name: str, n: int, tau: Optional[int] = None):
    """Instantiate a registered algorithm, filling in per-``n`` parameters."""
    kwargs = {}
    if name == "waiting_greedy":
        from .algorithms.waiting_greedy import optimal_tau

        kwargs["tau"] = tau if tau is not None else optimal_tau(n)
    return registry.create(name, **kwargs)


def _engine_kwargs(runner, args) -> dict:
    """The subset of ``--engine`` / ``--workers`` the runner understands.

    Experiment runners opt into the knobs by declaring ``engine`` /
    ``workers`` parameters; the others (offline/impossibility experiments)
    run as before, and a note is printed when a non-default flag had to be
    dropped so the user is never silently surprised.
    """
    parameters = inspect.signature(runner).parameters
    kwargs = {}
    if "engine" in parameters:
        kwargs["engine"] = args.engine
    elif args.engine != "reference":
        print(
            f"note: experiment {runner.__name__} is not wired for engine "
            "selection; --engine ignored",
            file=sys.stderr,
        )
    if "workers" in parameters:
        kwargs["workers"] = args.workers
    elif args.workers != 1:
        print(
            f"note: experiment {runner.__name__} is not wired for parallel "
            "sweeps; --workers ignored",
            file=sys.stderr,
        )
    ratio = getattr(args, "ratio", False)
    if "capture_opt" in parameters:
        kwargs["capture_opt"] = ratio
    elif ratio:
        print(
            f"note: experiment {runner.__name__} is not wired for "
            "offline-baseline capture; --ratio ignored",
            file=sys.stderr,
        )
    return kwargs


def _emit(text: str, output: Optional[str]) -> None:
    """Print the text or write it to a file."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())

"""Conversion between the interaction-sequence model and evolving graphs.

The paper notes that its model is a simplification of the *evolving graph*
model [Casteigts et al.] in which each static snapshot has a single edge.
This module provides both directions of the conversion:

* :func:`to_evolving_graph` — the sequence as a list of single-edge static
  graphs (networkx), one per time step;
* :func:`from_evolving_graph` — flatten a general evolving graph (a list of
  static graphs with arbitrarily many edges) into an interaction sequence by
  serialising each snapshot's edges in a deterministic order.  This is the
  standard reduction used when feeding contact traces (which report several
  simultaneous contacts) to the pairwise-interaction model.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import networkx as nx

from ..core.data import NodeId
from ..core.interaction import InteractionSequence


def to_evolving_graph(
    sequence: InteractionSequence, nodes: Iterable[NodeId]
) -> List[nx.Graph]:
    """Represent ``sequence`` as one single-edge static graph per time step."""
    node_list = list(nodes)
    snapshots: List[nx.Graph] = []
    for interaction in sequence:
        graph = nx.Graph()
        graph.add_nodes_from(node_list)
        graph.add_edge(interaction.u, interaction.v, time=interaction.time)
        snapshots.append(graph)
    return snapshots


def from_evolving_graph(
    snapshots: Sequence[nx.Graph],
    edge_order: str = "sorted",
) -> InteractionSequence:
    """Flatten an evolving graph into a pairwise interaction sequence.

    Each snapshot's edges are emitted consecutively; ``edge_order`` controls
    the order within a snapshot:

    * ``"sorted"`` — deterministic order by the canonical representation of
      the endpoints (default);
    * ``"insertion"`` — the order networkx reports them.

    The flattening preserves reachability: any journey in the evolving graph
    that uses at most one edge per snapshot maps to a journey in the
    flattened sequence.
    """
    pairs: List[Tuple[NodeId, NodeId]] = []
    for graph in snapshots:
        edges = list(graph.edges())
        if edge_order == "sorted":
            edges.sort(key=lambda edge: (repr(edge[0]), repr(edge[1])))
        elif edge_order != "insertion":
            raise ValueError(f"unknown edge_order {edge_order!r}")
        pairs.extend(edges)
    return InteractionSequence.from_pairs(pairs)


def snapshot_at(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    time: int,
) -> nx.Graph:
    """The single-edge static graph of the interaction occurring at ``time``."""
    graph = nx.Graph()
    graph.add_nodes_from(list(nodes))
    if 0 <= time < len(sequence):
        interaction = sequence[time]
        graph.add_edge(interaction.u, interaction.v, time=time)
    return graph


def aggregate_window(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    start: int,
    stop: int,
) -> nx.Graph:
    """The union of all edges appearing at times in ``[start, stop)``."""
    graph = nx.Graph()
    graph.add_nodes_from(list(nodes))
    stop = min(stop, len(sequence))
    for index in range(max(start, 0), stop):
        interaction = sequence[index]
        graph.add_edge(interaction.u, interaction.v)
    return graph

"""Structural properties of dynamic graphs used across the experiments.

These helpers classify a finite interaction sequence along the axes the
paper's theorems care about: recurrence of interactions (Theorem 4), tree
footprints (Theorem 5), temporal connectivity towards the sink (feasibility
of any aggregation at all), and simple summary statistics used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from ..core.data import NodeId
from .dynamic_graph import DynamicGraph
from .journeys import is_temporally_connected_to


@dataclass(frozen=True)
class SequenceStatistics:
    """Summary statistics of an interaction sequence."""

    node_count: int
    interaction_count: int
    distinct_pairs: int
    footprint_edges: int
    footprint_is_tree: bool
    footprint_is_connected: bool
    recurrent: bool
    sink_contact_count: int
    mean_intercontact_with_sink: Optional[float]


def footprint_is_tree(graph: DynamicGraph) -> bool:
    """True if the underlying graph G-bar is a tree (Theorem 5's hypothesis)."""
    footprint = graph.underlying_graph()
    return footprint.number_of_nodes() > 0 and nx.is_tree(footprint)


def aggregation_feasible(graph: DynamicGraph) -> bool:
    """True if an offline aggregation towards the sink exists at all.

    Equivalent to every node having a time-respecting journey to the sink.
    """
    return is_temporally_connected_to(
        graph.sequence, graph.nodes, graph.sink
    )


def sink_contact_times(graph: DynamicGraph) -> List[int]:
    """Times of all interactions involving the sink."""
    return [
        interaction.time
        for interaction in graph.sequence
        if interaction.involves(graph.sink)
    ]


def mean_intercontact_time(times: List[int]) -> Optional[float]:
    """Mean gap between consecutive contact times (None with < 2 contacts)."""
    if len(times) < 2:
        return None
    gaps = [b - a for a, b in zip(times, times[1:])]
    return sum(gaps) / len(gaps)


def summarize(graph: DynamicGraph, recurrence_threshold: int = 2) -> SequenceStatistics:
    """Compute the :class:`SequenceStatistics` of a dynamic graph."""
    footprint = graph.underlying_graph()
    contacts = sink_contact_times(graph)
    return SequenceStatistics(
        node_count=graph.size,
        interaction_count=graph.length,
        distinct_pairs=len(graph.sequence.footprint_edges()),
        footprint_edges=footprint.number_of_edges(),
        footprint_is_tree=footprint.number_of_edges() > 0 and nx.is_tree(footprint),
        footprint_is_connected=graph.is_footprint_connected(),
        recurrent=graph.is_recurrent(min_occurrences=recurrence_threshold),
        sink_contact_count=len(contacts),
        mean_intercontact_with_sink=mean_intercontact_time(contacts),
    )


def distinct_sink_contacts_within(
    graph: DynamicGraph, horizon: int
) -> int:
    """Number of distinct non-sink nodes meeting the sink within ``horizon``.

    This is the quantity analysed by Lemma 1 of the paper.
    """
    seen = set()
    for interaction in graph.sequence.window(0, horizon):
        if interaction.involves(graph.sink):
            seen.add(interaction.other(graph.sink))
    return len(seen)


def temporal_eccentricity_to_sink(graph: DynamicGraph) -> Dict[NodeId, float]:
    """Foremost arrival time to the sink for every node (inf if unreachable).

    Computed through the reverse sweep of the offline module; exposed here
    for analysis convenience.
    """
    from ..offline.convergecast import foremost_arrival_times

    return foremost_arrival_times(graph.sequence, graph.nodes, graph.sink)

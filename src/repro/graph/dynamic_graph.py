"""The dynamic graph ``(V, I)`` of the paper and its footprint.

A :class:`DynamicGraph` couples a node set with a finite interaction
sequence.  It offers the queries used throughout the reproduction: the
underlying graph (footprint) G-bar, recurrence of interactions, and per-node
meeting statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

import networkx as nx

from ..core.data import NodeId
from ..core.exceptions import InvalidInteractionError
from ..core.interaction import InteractionSequence


@dataclass(frozen=True)
class DynamicGraph:
    """A dynamic graph ``(V, I)`` with a designated sink.

    Attributes:
        nodes: the node set ``V`` (as an ordered tuple for determinism).
        sink: the sink node ``s``.
        sequence: the finite interaction sequence ``I``.
    """

    nodes: Tuple[NodeId, ...]
    sink: NodeId
    sequence: InteractionSequence

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise InvalidInteractionError("node identifiers must be unique")
        if self.sink not in node_set:
            raise InvalidInteractionError(
                f"sink {self.sink!r} is not part of the node set"
            )
        stray = self.sequence.nodes() - node_set
        if stray:
            raise InvalidInteractionError(
                f"sequence references nodes outside V: {sorted(map(repr, stray))}"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        nodes: Iterable[NodeId],
        sink: NodeId,
        interactions: Iterable[Tuple[NodeId, NodeId]] | InteractionSequence,
    ) -> "DynamicGraph":
        """Build a dynamic graph from node identifiers and pairs."""
        if not isinstance(interactions, InteractionSequence):
            interactions = InteractionSequence.from_pairs(interactions)
        return cls(nodes=tuple(nodes), sink=sink, sequence=interactions)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of nodes ``n``."""
        return len(self.nodes)

    @property
    def length(self) -> int:
        """Number of interactions in the sequence."""
        return len(self.sequence)

    def non_sink_nodes(self) -> Tuple[NodeId, ...]:
        """All nodes except the sink."""
        return tuple(node for node in self.nodes if node != self.sink)

    # ------------------------------------------------------------------ #
    # Footprint / recurrence
    # ------------------------------------------------------------------ #
    def underlying_graph(self) -> nx.Graph:
        """The footprint G-bar: an edge per pair interacting at least once."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        for pair in self.sequence.footprint_edges():
            u, v = tuple(pair)
            graph.add_edge(u, v)
        return graph

    def is_footprint_connected(self) -> bool:
        """True if G-bar is connected (a necessary condition for aggregation)."""
        graph = self.underlying_graph()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    def interaction_counts(self) -> Dict[FrozenSet[NodeId], int]:
        """Number of occurrences of every interacting pair."""
        counts: Dict[FrozenSet[NodeId], int] = {}
        for interaction in self.sequence:
            counts[interaction.pair] = counts.get(interaction.pair, 0) + 1
        return counts

    def is_recurrent(self, min_occurrences: int = 2) -> bool:
        """True if every edge of G-bar occurs at least ``min_occurrences`` times.

        Theorem 4 assumes that interactions occurring at least once occur
        infinitely often; on a finite prefix we approximate recurrence by a
        minimum occurrence count.
        """
        return all(
            count >= min_occurrences for count in self.interaction_counts().values()
        )

    def meeting_times_with_sink(self, node: NodeId) -> List[int]:
        """Times at which ``node`` interacts with the sink."""
        return [
            interaction.time
            for interaction in self.sequence
            if interaction.pair == frozenset((node, self.sink))
        ]

    def degree_in_footprint(self, node: NodeId) -> int:
        """Degree of ``node`` in G-bar."""
        return self.underlying_graph().degree(node)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def prefix(self, length: int) -> "DynamicGraph":
        """The dynamic graph restricted to the first ``length`` interactions."""
        return DynamicGraph(
            nodes=self.nodes,
            sink=self.sink,
            sequence=self.sequence.slice(0, length),
        )

    def with_sequence(self, sequence: InteractionSequence) -> "DynamicGraph":
        """Same node set and sink, different interaction sequence."""
        return DynamicGraph(nodes=self.nodes, sink=self.sink, sequence=sequence)

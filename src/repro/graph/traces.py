"""Synthetic contact-trace substrates.

The paper's introduction motivates the model with "sensors deployed on a
human body, cars evolving in a city that communicate with each other in an
ad hoc manner".  No real traces accompany the paper, so this module builds
the closest synthetic equivalents: mobility and contact generators whose
output is reduced to the paper's pairwise-interaction sequence.  They are
used by the example applications and by the robustness experiments (how the
algorithms behave when the adversary is *not* uniformly random).

Three substrates are provided:

* :class:`BodyAreaNetworkTrace` — a small set of on-body sensors with a hub
  (the sink); contacts follow a periodic schedule perturbed by posture
  changes (some links are unavailable during certain activity phases).
* :class:`RandomWaypointTrace` — nodes move in a square arena following the
  random-waypoint mobility model; two nodes interact when they come within
  communication range, and simultaneous contacts are serialised.
* :class:`VehicularGridTrace` — vehicles move along a Manhattan grid;
  contacts happen between vehicles on the same road segment, plus with
  a road-side unit (the sink) at a fixed intersection.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from .dynamic_graph import DynamicGraph


@dataclass
class BodyAreaNetworkTrace:
    """Periodic on-body sensor contacts with activity-dependent outages.

    Args:
        sensor_count: number of sensors excluding the hub.
        phases: number of activity phases; during phase ``p`` the sensors
            with ``index % phases == p`` cannot reach the hub directly and
            must relay through a neighbouring sensor.
        cycles: how many full activity cycles to generate.
        seed: RNG seed for the small jitter applied to contact order.
    """

    sensor_count: int = 8
    phases: int = 3
    cycles: int = 20
    seed: Optional[int] = None

    HUB: NodeId = "hub"

    def nodes(self) -> List[NodeId]:
        """The hub plus the sensors ``sensor-0 .. sensor-k``."""
        return [self.HUB] + [f"sensor-{i}" for i in range(self.sensor_count)]

    def build(self) -> DynamicGraph:
        """Generate the contact sequence and wrap it as a dynamic graph."""
        if self.sensor_count < 2:
            raise ConfigurationError("need at least two sensors")
        rng = random.Random(self.seed)
        sensors = [f"sensor-{i}" for i in range(self.sensor_count)]
        pairs: List[Tuple[NodeId, NodeId]] = []
        for cycle in range(self.cycles):
            phase = cycle % self.phases
            contacts: List[Tuple[NodeId, NodeId]] = []
            for index, sensor in enumerate(sensors):
                blocked = index % self.phases == phase
                if blocked:
                    # Relay through the next sensor instead of the hub.
                    relay = sensors[(index + 1) % self.sensor_count]
                    contacts.append((sensor, relay))
                else:
                    contacts.append((sensor, self.HUB))
            rng.shuffle(contacts)
            pairs.extend(contacts)
        return DynamicGraph.create(self.nodes(), self.HUB, pairs)


@dataclass
class RandomWaypointTrace:
    """Random-waypoint mobility in a unit square reduced to contacts.

    Nodes pick a random destination and speed, move towards it, and repeat.
    At every sampling step, each pair of nodes within ``radio_range`` is in
    contact; contacts of a step are serialised in random order (the standard
    reduction from evolving graphs to the pairwise-interaction model).
    The sink is node 0, which is static at the centre of the arena
    (modelling a collection point).
    """

    node_count: int = 20
    steps: int = 300
    radio_range: float = 0.18
    speed_range: Tuple[float, float] = (0.02, 0.06)
    seed: Optional[int] = None
    sink_static: bool = True

    def nodes(self) -> List[int]:
        """Node identifiers ``0..node_count-1`` (0 is the sink)."""
        return list(range(self.node_count))

    def build(self) -> DynamicGraph:
        """Simulate the mobility and return the contact dynamic graph."""
        if self.node_count < 2:
            raise ConfigurationError("need at least two nodes")
        rng = random.Random(self.seed)
        positions: Dict[int, Tuple[float, float]] = {}
        destinations: Dict[int, Tuple[float, float]] = {}
        speeds: Dict[int, float] = {}
        for node in self.nodes():
            positions[node] = (rng.random(), rng.random())
            destinations[node] = (rng.random(), rng.random())
            speeds[node] = rng.uniform(*self.speed_range)
        if self.sink_static:
            positions[0] = (0.5, 0.5)
            destinations[0] = (0.5, 0.5)
            speeds[0] = 0.0

        pairs: List[Tuple[int, int]] = []
        for _ in range(self.steps):
            self._advance(positions, destinations, speeds, rng)
            contacts = self._contacts(positions)
            rng.shuffle(contacts)
            pairs.extend(contacts)
        return DynamicGraph.create(self.nodes(), 0, pairs)

    def _advance(
        self,
        positions: Dict[int, Tuple[float, float]],
        destinations: Dict[int, Tuple[float, float]],
        speeds: Dict[int, float],
        rng: random.Random,
    ) -> None:
        """Move every node one step towards its destination."""
        for node in positions:
            if self.sink_static and node == 0:
                continue
            x, y = positions[node]
            dx, dy = destinations[node]
            distance = math.hypot(dx - x, dy - y)
            step = speeds[node]
            # distance >= 0 and step > 0, so this also catches the
            # already-arrived (distance 0) case without a float equality.
            if distance <= step:
                positions[node] = destinations[node]
                destinations[node] = (rng.random(), rng.random())
                speeds[node] = rng.uniform(*self.speed_range)
            else:
                ratio = step / distance
                positions[node] = (x + (dx - x) * ratio, y + (dy - y) * ratio)

    def _contacts(
        self, positions: Dict[int, Tuple[float, float]]
    ) -> List[Tuple[int, int]]:
        """All pairs currently within radio range."""
        contacts: List[Tuple[int, int]] = []
        nodes = sorted(positions)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                ux, uy = positions[u]
                vx, vy = positions[v]
                if math.hypot(ux - vx, uy - vy) <= self.radio_range:
                    contacts.append((u, v))
        return contacts


@dataclass
class VehicularGridTrace:
    """Vehicles on a Manhattan grid with a road-side unit as the sink.

    Vehicles move one grid cell per step along the streets (random turns at
    intersections).  Two vehicles in the same cell are in contact; the
    road-side unit sits at the central intersection and contacts every
    vehicle passing through it.
    """

    vehicle_count: int = 15
    grid_size: int = 6
    steps: int = 400
    seed: Optional[int] = None

    RSU: NodeId = "rsu"

    def nodes(self) -> List[NodeId]:
        """The road-side unit plus vehicles ``car-0 .. car-k``."""
        return [self.RSU] + [f"car-{i}" for i in range(self.vehicle_count)]

    def build(self) -> DynamicGraph:
        """Simulate the grid mobility and return the contact dynamic graph."""
        if self.vehicle_count < 2:
            raise ConfigurationError("need at least two vehicles")
        if self.grid_size < 2:
            raise ConfigurationError("grid must be at least 2x2")
        rng = random.Random(self.seed)
        vehicles = [f"car-{i}" for i in range(self.vehicle_count)]
        center = (self.grid_size // 2, self.grid_size // 2)
        positions: Dict[NodeId, Tuple[int, int]] = {
            vehicle: (rng.randrange(self.grid_size), rng.randrange(self.grid_size))
            for vehicle in vehicles
        }
        pairs: List[Tuple[NodeId, NodeId]] = []
        for _ in range(self.steps):
            for vehicle in vehicles:
                positions[vehicle] = self._move(positions[vehicle], rng)
            contacts: List[Tuple[NodeId, NodeId]] = []
            cells: Dict[Tuple[int, int], List[NodeId]] = {}
            for vehicle, cell in positions.items():
                cells.setdefault(cell, []).append(vehicle)
            for cell, occupants in cells.items():
                occupants.sort()
                for i, u in enumerate(occupants):
                    for v in occupants[i + 1 :]:
                        contacts.append((u, v))
                if cell == center:
                    for vehicle in occupants:
                        contacts.append((vehicle, self.RSU))
            rng.shuffle(contacts)
            pairs.extend(contacts)
        return DynamicGraph.create(self.nodes(), self.RSU, pairs)

    def _move(
        self, cell: Tuple[int, int], rng: random.Random
    ) -> Tuple[int, int]:
        """Move to a uniformly random neighbouring grid cell."""
        x, y = cell
        options = []
        if x > 0:
            options.append((x - 1, y))
        if x < self.grid_size - 1:
            options.append((x + 1, y))
        if y > 0:
            options.append((x, y - 1))
        if y < self.grid_size - 1:
            options.append((x, y + 1))
        return options[rng.randrange(len(options))]

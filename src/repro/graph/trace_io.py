"""Reading and writing contact traces.

Real deployments (the body-area and vehicular networks the paper's
introduction motivates) record contacts as CSV-like event logs.  This module
converts between such logs and the library's interaction-sequence model so
that downstream users can replay their own traces through the executor:

* :func:`load_contact_csv` — read ``time,u,v`` rows (header optional),
  serialise simultaneous contacts deterministically, and return a
  :class:`~repro.graph.dynamic_graph.DynamicGraph`;
* :func:`save_contact_csv` — write a dynamic graph back to the same format;
* :func:`sequence_from_contact_events` — the in-memory equivalent of the
  loader, used by both the CSV path and programmatic callers.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import InteractionSequence
from .dynamic_graph import DynamicGraph

ContactEvent = Tuple[float, NodeId, NodeId]


def sequence_from_contact_events(
    events: Iterable[ContactEvent],
) -> InteractionSequence:
    """Convert timestamped contact events to a pairwise interaction sequence.

    Events are sorted by timestamp; events sharing a timestamp are ordered
    deterministically by their endpoints (the standard serialisation from
    evolving graphs to the paper's one-interaction-per-step model).  The
    original timestamps are discarded — in the paper's model the time of an
    interaction *is* its index.
    """
    ordered = sorted(
        ((float(t), u, v) for t, u, v in events),
        key=lambda event: (event[0], repr(event[1]), repr(event[2])),
    )
    pairs = [(u, v) for _, u, v in ordered]
    return InteractionSequence.from_pairs(pairs)


def load_contact_csv(
    source: Union[str, Path, TextIO],
    sink: NodeId,
    delimiter: str = ",",
    nodes: Optional[Sequence[NodeId]] = None,
) -> DynamicGraph:
    """Load a contact trace from a CSV file or file-like object.

    The expected columns are ``time, u, v`` (a header row whose first field
    is not numeric is skipped).  Node identifiers are kept as strings unless
    they parse as integers.

    Args:
        source: path or open text file.
        sink: identifier of the sink node (must appear in the trace or in
            ``nodes``).
        delimiter: CSV delimiter.
        nodes: optional explicit node set (e.g. to include nodes that never
            interact); defaults to the nodes appearing in the trace plus the
            sink.

    Raises:
        ConfigurationError: if a row is malformed or the sink is unknown.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return load_contact_csv(handle, sink, delimiter=delimiter, nodes=nodes)

    events: List[ContactEvent] = []
    reader = csv.reader(source, delimiter=delimiter)
    for row_number, row in enumerate(reader):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) < 3:
            raise ConfigurationError(
                f"row {row_number} has {len(row)} columns, expected time,u,v"
            )
        time_cell = row[0].strip()
        if row_number == 0 and not _is_number(time_cell):
            continue  # header row
        if not _is_number(time_cell):
            raise ConfigurationError(
                f"row {row_number}: time {time_cell!r} is not numeric"
            )
        events.append(
            (float(time_cell), _parse_node(row[1]), _parse_node(row[2]))
        )

    sequence = sequence_from_contact_events(events)
    node_set = set(sequence.nodes())
    node_set.add(sink)
    if nodes is not None:
        missing = node_set - set(nodes)
        if missing:
            raise ConfigurationError(
                f"trace references nodes outside the declared node set: "
                f"{sorted(map(repr, missing))}"
            )
        node_list: List[NodeId] = list(nodes)
    else:
        node_list = sorted(node_set, key=repr)
    return DynamicGraph.create(node_list, sink, sequence)


def save_contact_csv(
    graph: DynamicGraph, destination: Union[str, Path, TextIO]
) -> None:
    """Write a dynamic graph as ``time,u,v`` CSV rows (with a header)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            save_contact_csv(graph, handle)
            return
    writer = csv.writer(destination)
    writer.writerow(["time", "u", "v"])
    for interaction in graph.sequence:
        writer.writerow([interaction.time, interaction.u, interaction.v])


def _parse_node(cell: str) -> NodeId:
    """Node identifiers: integers when they look like integers, else strings."""
    text = cell.strip()
    try:
        return int(text)
    except ValueError:
        return text


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True

"""Generators of interaction sequences.

These produce the workloads used by the experiments:

* :func:`uniform_random_sequence` — the randomized adversary's distribution
  (each interaction drawn uniformly among all ``n(n-1)/2`` pairs);
* :func:`round_robin_sequence` and :func:`periodic_sequence` — deterministic
  recurrent sequences used for Theorems 4 and 5;
* :func:`star_with_sink_sequence`, :func:`line_sequence`,
  :func:`ring_sequence`, :func:`tree_recurrent_sequence` — sequences whose
  footprint is a fixed topology;
* :func:`edge_markov_sequence` — a temporally-correlated random sequence (an
  extension beyond the paper's adversaries, useful as an ablation of the
  uniform-randomness assumption);
* :func:`random_tree` — a uniformly random labelled tree, used as the
  footprint for Theorem 5 experiments.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import InteractionSequence


def default_nodes(n: int) -> List[int]:
    """The canonical node set ``0..n-1`` with node 0 used as the sink."""
    if n < 2:
        raise ConfigurationError("need at least two nodes")
    return list(range(n))


def all_pairs(nodes: Sequence[NodeId]) -> List[Tuple[NodeId, NodeId]]:
    """Every unordered pair of distinct nodes."""
    return list(combinations(nodes, 2))


def uniform_random_sequence(
    nodes: Sequence[NodeId],
    length: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> InteractionSequence:
    """Draw ``length`` interactions uniformly at random among all pairs.

    This is exactly the randomized adversary of Section 4: every interaction
    occurs with probability ``2 / (n (n-1))`` independently of the past.
    """
    rng = _resolve_rng(rng, seed)
    pairs = all_pairs(nodes)
    if not pairs:
        raise ConfigurationError("need at least two nodes to draw interactions")
    drawn = [pairs[rng.randrange(len(pairs))] for _ in range(length)]
    return InteractionSequence.from_pairs(drawn)


def round_robin_sequence(
    nodes: Sequence[NodeId], rounds: int = 1
) -> InteractionSequence:
    """Cycle deterministically through every pair, ``rounds`` times.

    The resulting sequence is recurrent (every footprint edge appears once
    per round) and its footprint is the complete graph.
    """
    pairs = all_pairs(nodes)
    return InteractionSequence.from_pairs(pairs * rounds)


def periodic_sequence(
    pattern: Sequence[Tuple[NodeId, NodeId]], repetitions: int
) -> InteractionSequence:
    """Repeat a fixed pattern of pairs ``repetitions`` times."""
    return InteractionSequence.from_pairs(list(pattern) * repetitions)


def star_with_sink_sequence(
    nodes: Sequence[NodeId], sink: NodeId, rounds: int = 1
) -> InteractionSequence:
    """Every non-sink node interacts with the sink once per round."""
    others = [node for node in nodes if node != sink]
    pattern = [(node, sink) for node in others]
    return InteractionSequence.from_pairs(pattern * rounds)


def line_sequence(
    nodes: Sequence[NodeId], rounds: int = 1, reverse: bool = False
) -> InteractionSequence:
    """Consecutive nodes of the given order interact, once per round.

    With ``reverse=False`` the pattern is ``(v0,v1), (v1,v2), ...`` which
    forms a journey from ``v0`` towards the end of the line inside a single
    round; with ``reverse=True`` the pattern is reversed, which requires a
    full round per hop for data moving towards ``v0``.
    """
    ordered = list(nodes)
    pattern = [(ordered[i], ordered[i + 1]) for i in range(len(ordered) - 1)]
    if reverse:
        pattern = list(reversed(pattern))
    return InteractionSequence.from_pairs(pattern * rounds)


def ring_sequence(nodes: Sequence[NodeId], rounds: int = 1) -> InteractionSequence:
    """Consecutive nodes around a ring interact, once per round."""
    ordered = list(nodes)
    count = len(ordered)
    pattern = [(ordered[i], ordered[(i + 1) % count]) for i in range(count)]
    return InteractionSequence.from_pairs(pattern * rounds)


def tree_recurrent_sequence(
    tree: nx.Graph, rounds: int = 1, order: str = "bottom_up",
    root: Optional[NodeId] = None,
) -> InteractionSequence:
    """A recurrent sequence whose footprint is exactly ``tree``.

    ``order`` controls the order of edges within a round:

    * ``"bottom_up"`` — edges sorted by decreasing depth of their lower
      endpoint (requires ``root``); a single round then suffices for an
      optimal convergecast towards the root;
    * ``"sorted"`` — canonical edge order (depth-agnostic).
    """
    if not nx.is_tree(tree):
        raise ConfigurationError("tree_recurrent_sequence requires a tree")
    edges = list(tree.edges())
    if order == "bottom_up":
        if root is None:
            raise ConfigurationError("bottom_up order requires a root")
        depth = nx.shortest_path_length(tree, source=root)
        edges.sort(key=lambda edge: -max(depth[edge[0]], depth[edge[1]]))
    elif order == "sorted":
        edges.sort(key=lambda edge: (repr(edge[0]), repr(edge[1])))
    else:
        raise ConfigurationError(f"unknown order {order!r}")
    return InteractionSequence.from_pairs(edges * rounds)


def edge_markov_sequence(
    nodes: Sequence[NodeId],
    length: int,
    persistence: float = 0.7,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> InteractionSequence:
    """A temporally-correlated random sequence.

    With probability ``persistence`` the next interaction re-uses one of the
    endpoints of the previous interaction (paired with a uniformly random
    other node); otherwise it is drawn uniformly.  This models the locality
    of real contact traces and serves as an ablation of the uniform
    randomness assumed by the paper's randomized adversary.
    """
    if not 0.0 <= persistence <= 1.0:
        raise ConfigurationError("persistence must be in [0, 1]")
    rng = _resolve_rng(rng, seed)
    node_list = list(nodes)
    if len(node_list) < 2:
        raise ConfigurationError("need at least two nodes")
    pairs = all_pairs(node_list)
    drawn: List[Tuple[NodeId, NodeId]] = []
    previous: Optional[Tuple[NodeId, NodeId]] = None
    for _ in range(length):
        if previous is not None and rng.random() < persistence:
            anchor = previous[rng.randrange(2)]
            peer = anchor
            while peer == anchor:
                peer = node_list[rng.randrange(len(node_list))]
            pair = (anchor, peer)
        else:
            pair = pairs[rng.randrange(len(pairs))]
        drawn.append(pair)
        previous = pair
    return InteractionSequence.from_pairs(drawn)


def random_tree(
    n: int, rng: Optional[random.Random] = None, seed: Optional[int] = None
) -> nx.Graph:
    """A uniformly random labelled tree on nodes ``0..n-1`` (Prüfer decoding)."""
    rng = _resolve_rng(rng, seed)
    if n < 2:
        raise ConfigurationError("a tree needs at least two nodes")
    if n == 2:
        tree = nx.Graph()
        tree.add_edge(0, 1)
        return tree
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(sequence)


def sequence_with_footprint(
    graph: nx.Graph,
    rounds: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    shuffle_each_round: bool = True,
) -> InteractionSequence:
    """A recurrent sequence whose footprint equals the edges of ``graph``."""
    rng = _resolve_rng(rng, seed)
    edges = list(graph.edges())
    if not edges:
        raise ConfigurationError("graph has no edges")
    pattern: List[Tuple[NodeId, NodeId]] = []
    for _ in range(rounds):
        round_edges = list(edges)
        if shuffle_each_round:
            rng.shuffle(round_edges)
        pattern.extend(round_edges)
    return InteractionSequence.from_pairs(pattern)


def _resolve_rng(
    rng: Optional[random.Random], seed: Optional[int]
) -> random.Random:
    """Return the provided RNG, or a fresh one seeded with ``seed``."""
    if rng is not None:
        return rng
    return random.Random(seed)

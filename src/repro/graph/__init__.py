"""Dynamic graph model, generators, journeys and contact-trace substrates."""

from .dynamic_graph import DynamicGraph
from .evolving_graph import (
    aggregate_window,
    from_evolving_graph,
    snapshot_at,
    to_evolving_graph,
)
from .generators import (
    all_pairs,
    default_nodes,
    edge_markov_sequence,
    line_sequence,
    periodic_sequence,
    random_tree,
    ring_sequence,
    round_robin_sequence,
    sequence_with_footprint,
    star_with_sink_sequence,
    tree_recurrent_sequence,
    uniform_random_sequence,
)
from .journeys import (
    Journey,
    earliest_arrivals_from,
    foremost_journey,
    is_temporally_connected_to,
    journey_exists,
    temporal_reachability_matrix,
)
from .properties import (
    SequenceStatistics,
    aggregation_feasible,
    distinct_sink_contacts_within,
    footprint_is_tree,
    mean_intercontact_time,
    sink_contact_times,
    summarize,
    temporal_eccentricity_to_sink,
)
from .trace_io import (
    load_contact_csv,
    save_contact_csv,
    sequence_from_contact_events,
)
from .traces import BodyAreaNetworkTrace, RandomWaypointTrace, VehicularGridTrace

__all__ = [
    "BodyAreaNetworkTrace",
    "DynamicGraph",
    "Journey",
    "RandomWaypointTrace",
    "SequenceStatistics",
    "VehicularGridTrace",
    "aggregate_window",
    "aggregation_feasible",
    "all_pairs",
    "default_nodes",
    "distinct_sink_contacts_within",
    "earliest_arrivals_from",
    "edge_markov_sequence",
    "footprint_is_tree",
    "foremost_journey",
    "from_evolving_graph",
    "is_temporally_connected_to",
    "journey_exists",
    "line_sequence",
    "load_contact_csv",
    "mean_intercontact_time",
    "periodic_sequence",
    "random_tree",
    "ring_sequence",
    "round_robin_sequence",
    "save_contact_csv",
    "sequence_from_contact_events",
    "sequence_with_footprint",
    "sink_contact_times",
    "snapshot_at",
    "star_with_sink_sequence",
    "summarize",
    "temporal_eccentricity_to_sink",
    "temporal_reachability_matrix",
    "to_evolving_graph",
    "tree_recurrent_sequence",
    "uniform_random_sequence",
]

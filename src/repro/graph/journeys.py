"""Time-respecting journeys in interaction sequences.

A *journey* from ``u`` to ``v`` is a sequence of interactions with strictly
increasing times whose endpoints chain from ``u`` to ``v``.  Journeys are the
temporal analogue of paths and underpin both the offline optimum (a
convergecast within a window exists iff every node has a journey to the sink
inside the window) and several impossibility arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.data import NodeId
from ..core.interaction import Interaction, InteractionSequence


@dataclass(frozen=True)
class Journey:
    """An explicit time-respecting path: the hops in chronological order."""

    source: NodeId
    target: NodeId
    hops: Tuple[Interaction, ...]

    @property
    def departure(self) -> Optional[int]:
        """Time of the first hop (None for the empty journey)."""
        return self.hops[0].time if self.hops else None

    @property
    def arrival(self) -> Optional[int]:
        """Time of the last hop (None for the empty journey)."""
        return self.hops[-1].time if self.hops else None

    def __len__(self) -> int:
        return len(self.hops)

    def is_valid(self) -> bool:
        """Check the chaining and strict time increase of the hops."""
        current = self.source
        last_time = -1
        for hop in self.hops:
            if not hop.involves(current):
                return False
            if hop.time <= last_time:
                return False
            last_time = hop.time
            current = hop.other(current)
        return current == self.target or (not self.hops and self.source == self.target)


def earliest_arrivals_from(
    sequence: InteractionSequence,
    source: NodeId,
    nodes: Iterable[NodeId],
    start: int = 0,
) -> Dict[NodeId, float]:
    """Foremost (earliest-arrival) journey times from ``source`` to every node.

    A single forward sweep: when the interaction ``{u, v}`` occurs at time
    ``t`` and ``u`` is already reachable strictly before ``t`` (or is the
    source), then ``v`` becomes reachable at ``t`` (and vice versa).  The
    source is reachable at ``start - 1`` by convention.
    """
    arrivals: Dict[NodeId, float] = {node: math.inf for node in nodes}
    arrivals[source] = start - 1
    for index in range(start, len(sequence)):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        time = interaction.time
        if arrivals.get(u, math.inf) < time and arrivals.get(v, math.inf) > time:
            arrivals[v] = time
        if arrivals.get(v, math.inf) < time and arrivals.get(u, math.inf) > time:
            arrivals[u] = time
    return arrivals


def foremost_journey(
    sequence: InteractionSequence,
    source: NodeId,
    target: NodeId,
    start: int = 0,
) -> Optional[Journey]:
    """An explicit foremost journey from ``source`` to ``target`` (or None).

    The journey is reconstructed by recording, for every node, the hop that
    first reached it during the forward sweep.
    """
    if source == target:
        return Journey(source=source, target=target, hops=())
    best_time: Dict[NodeId, float] = {source: start - 1}
    via: Dict[NodeId, Tuple[NodeId, Interaction]] = {}
    for index in range(start, len(sequence)):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        time = interaction.time
        for a, b in ((u, v), (v, u)):
            if best_time.get(a, math.inf) < time and time < best_time.get(b, math.inf):
                best_time[b] = time
                via[b] = (a, interaction)
                if b == target:
                    hops: List[Interaction] = []
                    node = target
                    while node != source:
                        parent, hop = via[node]
                        hops.append(hop)
                        node = parent
                    hops.reverse()
                    return Journey(source=source, target=target, hops=tuple(hops))
    return None


def journey_exists(
    sequence: InteractionSequence,
    source: NodeId,
    target: NodeId,
    start: int = 0,
    end: Optional[int] = None,
) -> bool:
    """True if a journey from ``source`` to ``target`` exists in ``[start, end]``."""
    limit = len(sequence) if end is None else min(end + 1, len(sequence))
    best_time: Dict[NodeId, float] = {source: start - 1}
    for index in range(start, limit):
        interaction = sequence[index]
        u, v = interaction.u, interaction.v
        time = interaction.time
        for a, b in ((u, v), (v, u)):
            if best_time.get(a, math.inf) < time and time < best_time.get(b, math.inf):
                best_time[b] = time
                if b == target:
                    return True
    return target == source


def temporal_reachability_matrix(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    start: int = 0,
) -> Dict[NodeId, Set[NodeId]]:
    """For every node, the set of nodes its data could reach via a journey."""
    node_list = list(nodes)
    reachable: Dict[NodeId, Set[NodeId]] = {}
    for source in node_list:
        arrivals = earliest_arrivals_from(sequence, source, node_list, start=start)
        reachable[source] = {
            node for node, time in arrivals.items() if not math.isinf(time)
        }
    return reachable


def is_temporally_connected_to(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    target: NodeId,
    start: int = 0,
) -> bool:
    """True if every node has a journey to ``target`` within the sequence.

    This is exactly the condition for an offline convergecast towards
    ``target`` (the sink) to exist.
    """
    node_list = list(nodes)
    return all(
        journey_exists(sequence, node, target, start=start)
        for node in node_list
        if node != target
    )

"""Configuration of the reprolint analyzer (``[tool.reprolint]``).

The config answers exactly three questions:

* which files are linted at all (``exclude`` path globs);
* which rules are active (``disable`` — a list of rule codes);
* where a rule's construct is *legitimately* used (``allow`` — per-code
  path globs, e.g. the frozen ``random.Random`` streams documented in
  ``docs/determinism.md``).

Configuration lives in ``pyproject.toml``::

    [tool.reprolint]
    exclude = ["tests/lint_fixtures/*"]
    disable = []

    [tool.reprolint.allow]
    RPL001 = ["src/repro/graph/generators.py", ...]
    RPL004 = ["src/repro/campaign/store.py"]

Path globs are matched with :func:`fnmatch.fnmatch` against paths
normalized relative to the directory holding the config file (posix
separators), so the same pyproject works from any working directory.
When no config file is found, built-in defaults (:data:`DEFAULT_ALLOW`)
keep the linter useful out of the box — the repository's own pyproject
*replaces* the defaults wholesale, so the file is the single source of
truth once it exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_ALLOW",
    "LintConfig",
    "LintConfigError",
    "discover_config",
    "load_config",
]


class LintConfigError(ValueError):
    """The ``[tool.reprolint]`` block is malformed or unreadable."""


#: Built-in per-rule allowlists used when no ``pyproject.toml`` is found.
#: Each entry mirrors (and is superseded by) the repository config; the
#: rationale for every path lives in ``docs/determinism.md``.
DEFAULT_ALLOW: Mapping[str, Tuple[str, ...]] = {
    # Frozen stdlib-random streams (byte-compat pinned by tests/kernels).
    "RPL001": (
        "src/repro/graph/generators.py",
        "src/repro/graph/traces.py",
        "src/repro/algorithms/random_baseline.py",
        "src/repro/experiments/extensions.py",
        "src/repro/experiments/knowledge.py",
    ),
    # Seeded Generator construction sites (seeds derived via sim/seeding).
    "RPL003": (
        "src/repro/adversaries/randomized.py",
        "src/repro/adversaries/nonuniform.py",
        "src/repro/adversaries/mobility.py",
        "src/repro/search/loop.py",
    ),
    # Manifest bookkeeping timestamps (deliberately outside result bytes)
    # and the observability layer (the one sanctioned home for
    # perf_counter/monotonic — everything else uses repro.obs.now).
    "RPL004": ("src/repro/campaign/store.py", "src/repro/obs/*"),
    # The sentinel owner modules themselves.
    "RPL005": (
        "src/repro/offline/convergecast.py",
        "src/repro/ratio/semantics.py",
    ),
}


def _as_str_tuple(value: Any, where: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{where} must be a list of strings, got {value!r}")
    return tuple(value)


@dataclass(frozen=True)
class LintConfig:
    """Immutable, validated reprolint configuration.

    Attributes:
        root: directory the path globs are relative to (the config file's
            directory, or the current directory for the default config).
        exclude: path globs of files skipped entirely.
        disable: rule codes switched off globally.
        allow: per-rule path globs where the rule does not fire.
    """

    root: Path = field(default_factory=Path)
    exclude: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    allow: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )

    def normalize(self, path: "str | Path") -> str:
        """``path`` relative to :attr:`root` when possible, posix separators."""
        resolved = Path(path).resolve()
        try:
            return resolved.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return Path(path).as_posix()

    def is_excluded(self, path: "str | Path") -> bool:
        """Whether ``path`` is skipped entirely (``exclude`` globs)."""
        normalized = self.normalize(path)
        return any(fnmatch(normalized, pattern) for pattern in self.exclude)

    def is_rule_disabled(self, code: str) -> bool:
        """Whether rule ``code`` is globally off."""
        return code in self.disable

    def is_allowed(self, code: str, path: "str | Path") -> bool:
        """Whether ``path`` is on rule ``code``'s allowlist."""
        normalized = self.normalize(path)
        return any(
            fnmatch(normalized, pattern) for pattern in self.allow.get(code, ())
        )


def _parse_tool_table(table: Mapping[str, Any], root: Path) -> LintConfig:
    known = {"exclude", "disable", "allow"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise LintConfigError(
            f"unknown [tool.reprolint] keys: {unknown}; known: {sorted(known)}"
        )
    exclude = _as_str_tuple(table.get("exclude", ()), "[tool.reprolint] exclude")
    disable = _as_str_tuple(table.get("disable", ()), "[tool.reprolint] disable")
    allow_raw = table.get("allow", {})
    if not isinstance(allow_raw, Mapping):
        raise LintConfigError("[tool.reprolint.allow] must be a table")
    allow: Dict[str, Tuple[str, ...]] = {}
    for code, patterns in allow_raw.items():
        allow[str(code)] = _as_str_tuple(
            patterns, f"[tool.reprolint.allow] {code}"
        )
    return LintConfig(root=root, exclude=exclude, disable=disable, allow=allow)


def load_config(pyproject_path: "str | Path") -> LintConfig:
    """Load ``[tool.reprolint]`` from one ``pyproject.toml`` file.

    A pyproject without a ``[tool.reprolint]`` block yields an empty
    config rooted at the file's directory (no allowlists — the presence
    of the file makes it the source of truth).

    Raises:
        LintConfigError: when the file is missing, unparseable, or the
            block is malformed.
    """
    path = Path(pyproject_path)
    if not path.is_file():
        raise LintConfigError(f"config file not found: {path}")
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11 fallback
        raise LintConfigError(
            "reading pyproject.toml needs the standard-library tomllib "
            "(Python >= 3.11)"
        ) from None
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as error:
        raise LintConfigError(f"could not parse {path}: {error}") from None
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, Mapping):
        raise LintConfigError("[tool.reprolint] must be a table")
    return _parse_tool_table(table, root=path.parent)


def discover_config(start: Optional["str | Path"] = None) -> LintConfig:
    """Find and load the nearest ``pyproject.toml`` at or above ``start``.

    Walks from ``start`` (default: the current directory) to the
    filesystem root; returns the built-in default config when no
    pyproject exists on the way up.
    """
    directory = Path(start) if start is not None else Path.cwd()
    directory = directory.resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate_dir in (directory, *directory.parents):
        candidate = candidate_dir / "pyproject.toml"
        if candidate.is_file():
            return load_config(candidate)
    return LintConfig(root=directory)


def paths_from_args(paths: Sequence[str]) -> Tuple[Path, ...]:
    """Validated, deduplicated lint targets from CLI arguments."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintConfigError(f"no such file or directory: {raw}")
        seen.setdefault(path, None)
    return tuple(seen)

"""Inline suppression comments (``# reprolint: disable=RPLxxx``).

Two escape hatches, both grep-able and reviewable:

* **Line scope** — a trailing comment on the offending line::

      if ending == INFINITY:  # reprolint: disable=RPL007  (inf is exact)

  ``disable`` takes a comma-separated code list, or no ``=`` part to
  disable every rule on that line.

* **File scope** — a comment line anywhere in the file::

      # reprolint: disable-file=RPL001

  disables the listed codes (or all rules, without ``=``) for the whole
  module.  Reserved for generated files; prefer the pyproject
  allowlists for real modules so the exception is visible in one place.

Suppression is applied by the driver after rules run, so rule
implementations stay oblivious to it.  Trailing text after the code
list (a short justification) is encouraged and ignored by the parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List

from .framework import Finding

__all__ = ["SuppressionMap", "parse_suppressions"]

#: Matches both scopes; group 1 is ``disable``/``disable-file``, group 2
#: the optional comma-separated code list.
_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)\b\s*(?:=\s*([A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every rule" for a scope without an explicit code list.
ALL_CODES: FrozenSet[str] = frozenset({"*"})


def _parse_codes(raw: "str | None") -> FrozenSet[str]:
    if raw is None:
        return ALL_CODES
    codes = frozenset(code.strip() for code in raw.split(",") if code.strip())
    return codes or ALL_CODES


@dataclass(frozen=True)
class SuppressionMap:
    """Parsed suppression directives of one module."""

    #: 1-based line number -> codes disabled on that line ("*" = all).
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: Codes disabled for the whole file ("*" = all).
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a directive."""
        if "*" in self.file_wide or finding.code in self.file_wide:
            return True
        codes = self.by_line.get(finding.line)
        if codes is None:
            return False
        return "*" in codes or finding.code in codes

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        """``findings`` with every suppressed entry removed (order kept)."""
        return [finding for finding in findings if not self.is_suppressed(finding)]


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract the :class:`SuppressionMap` of one module's source text.

    The scan is purely line-based: directives inside string literals are
    honoured too, which is deliberate — an over-eager suppression is
    visible in review, whereas a tokenizer dependency would be a heavier
    contract for no real gain on this codebase.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: FrozenSet[str] = frozenset()
    for number, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(line)
        if match is None:
            continue
        codes = _parse_codes(match.group(2))
        if match.group(1) == "disable-file":
            file_wide = file_wide | codes
        else:
            by_line[number] = by_line.get(number, frozenset()) | codes
    return SuppressionMap(by_line=by_line, file_wide=file_wide)

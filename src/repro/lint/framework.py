"""Rule framework of the reprolint static analyzer.

The analyzer is a thin orchestration layer over small, self-contained
*rules*.  A rule is a class with a stable code (``RPL001`` …), a
one-line summary, a rationale, and a :meth:`Rule.check` method that
walks a parsed module and yields :class:`Finding` objects.  Rules are
registered in a module-level registry keyed by code, so the CLI, the
config layer, and the test-suite all enumerate exactly the same set.

Design invariants:

* **Findings are data.**  A :class:`Finding` is a frozen, ordered
  dataclass — runs over the same tree produce identical, sortable output
  regardless of rule evaluation order (the linter must itself satisfy the
  determinism discipline it enforces).
* **Rules never read the filesystem.**  They see a
  :class:`ModuleContext` (path, source, parsed AST, config) prepared by
  the driver, which keeps them trivially unit-testable from strings.
* **Suppression is handled centrally** (see :mod:`repro.lint.suppress`):
  rules yield every violation; the driver filters findings disabled by
  ``# reprolint: disable=RPLxxx`` comments or config allowlists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, Iterator, List, Tuple, Type

from .config import LintConfig

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "register",
    "rule_table",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One violation: a location, a rule code and a human-readable message."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The canonical one-line rendering ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may look at for one module.

    Attributes:
        path: the module path as reported in findings — already
            normalized relative to the config root (posix separators).
        source: the raw module source text.
        tree: the parsed ``ast.Module``.
        config: the active :class:`~repro.lint.config.LintConfig`.
    """

    path: str
    source: str
    tree: ast.Module
    config: LintConfig = field(default_factory=LintConfig)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s source location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule:
    """Base class of all reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    registration happens through the :func:`register` decorator so that
    defining a rule and exposing it to the CLI are one step.
    """

    #: Stable rule code, ``RPL`` + three digits.  Codes are append-only:
    #: a retired rule's code is never reused.
    code: ClassVar[str] = "RPL000"
    #: Short kebab-case name used in ``--list-rules`` output.
    name: ClassVar[str] = "base-rule"
    #: One-line description of what the rule flags.
    summary: ClassVar[str] = ""
    #: Why the repo bans the flagged construct (shown in ``--list-rules``).
    rationale: ClassVar[str] = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation in ``ctx`` (suppression is not the rule's job)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the signature a generator

    # Helpers shared by several rules ---------------------------------- #
    @staticmethod
    def walk(tree: ast.Module) -> Iterator[ast.AST]:
        """Deterministic pre-order walk of ``tree``."""
        return ast.walk(tree)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_class`` to the global registry.

    Raises:
        ValueError: on a duplicate or malformed rule code, so two rules
            can never silently share ``RPLxxx``.
    """
    code = rule_class.code
    if not (code.startswith("RPL") and code[3:].isdigit() and len(code) == 6):
        raise ValueError(f"malformed rule code {code!r} on {rule_class.__name__}")
    if code in _REGISTRY:
        raise ValueError(
            f"duplicate rule code {code}: {rule_class.__name__} vs "
            f"{_REGISTRY[code].__name__}"
        )
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_table() -> List[Tuple[str, str, str]]:
    """``(code, name, summary)`` rows for every registered rule, in code order."""
    return [
        (code, _REGISTRY[code].name, _REGISTRY[code].summary)
        for code in sorted(_REGISTRY)
    ]


def check_module(ctx: ModuleContext, rules: Iterable[Rule]) -> List[Finding]:
    """All findings of ``rules`` on one module, sorted canonically."""
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return sorted(findings)

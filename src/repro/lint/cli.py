"""Command-line driver: ``python -m repro.lint`` (also ``tools/reprolint.py``).

Usage::

    python -m repro.lint [PATHS ...] [--config PYPROJECT] [--no-config]
                         [--format {text,json}] [--list-rules]

Defaults to linting ``src`` and ``tools`` (the repository's lint
surface).  Exit codes follow the usual analyzer convention:

* ``0`` — no findings;
* ``1`` — findings were reported (one ``path:line:col: CODE message``
  line each, plus a summary count);
* ``2`` — usage or configuration error (one clear line on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .api import lint_paths
from .config import LintConfig, LintConfigError, discover_config, load_config
from .framework import Finding, rule_table

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "tools")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: AST-based determinism/invariant linter for this "
            "repository (RNG, clock, sentinel, ordering and float-equality "
            "disciplines)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered upwards from cwd)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and built-in allowlists (bare rules only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (code, name, summary) and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        if args.config:
            raise LintConfigError("--config and --no-config are exclusive")
        return LintConfig(root=Path.cwd(), allow={})
    if args.config:
        return load_config(args.config)
    return discover_config()


def _emit(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        payload = [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in findings
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    for finding in findings:
        print(finding.format())
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"reprolint: {len(findings)} {noun}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code, name, summary in rule_table():
            print(f"{code}  {name:<22}  {summary}")
        return 0
    try:
        config = _resolve_config(args)
        paths = list(args.paths) if args.paths else [
            path for path in _DEFAULT_PATHS if Path(path).exists()
        ]
        if not paths:
            raise LintConfigError(
                "no paths given and neither ./src nor ./tools exists"
            )
        missing = [path for path in paths if not Path(path).exists()]
        if missing:
            raise LintConfigError(
                f"no such file or directory: {', '.join(missing)}"
            )
        findings = lint_paths(paths, config=config)
    except LintConfigError as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return 2
    _emit(findings, args.format)
    return 1 if findings else 0

"""The reprolint rule set: this repository's determinism invariants as AST checks.

Every guarantee the reproduction makes — engines transmission-identical,
fresh ≡ resumed campaigns byte-for-byte, committed futures a pure function
of the seed — is a determinism property.  The differential suites enforce
them dynamically; these rules enforce the *disciplines* that make them
hold statically, at commit time:

======  ====================  ==================================================
code    name                  flags
======  ====================  ==================================================
RPL001  stdlib-random         ``import random`` / ``from random import …``
RPL002  numpy-global-rng      legacy ``np.random.<fn>()`` global-state calls
RPL003  rng-construction      ``default_rng``/``Generator``/bit-generator
                              construction outside the seeded-adversary
                              allowlist
RPL004  wall-clock            ``time.time``/``datetime.now``-style reads in
                              result-determining modules
RPL005  sentinel-redefinition re-defining ``INFINITY``/``UNREACHABLE``/
                              ``RATIO_UNDEFINED`` instead of importing them
RPL006  unordered-iteration   iterating a set-typed expression without
                              ``sorted(…)``
RPL007  float-equality        ``==``/``!=`` against float-typed expressions
======  ====================  ==================================================

The rules are heuristic by design (no type inference): they only fire on
syntactic shapes that are unambiguous in this codebase, and every firing
site has three escapes — fix the code, a per-line
``# reprolint: disable=RPLxxx`` with a justification, or a pyproject
allowlist entry reviewed in one place.  See ``docs/determinism.md`` for
the full rationale table.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .framework import Finding, ModuleContext, Rule, register

__all__ = [
    "FloatEqualityRule",
    "NumpyGlobalRngRule",
    "RngConstructionRule",
    "SentinelRedefinitionRule",
    "StdlibRandomRule",
    "UnorderedIterationRule",
    "WallClockRule",
]


# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #
def _module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to ``module`` by ``import`` statements.

    ``import numpy`` binds ``numpy``; ``import numpy as np`` binds ``np``.
    Submodule imports (``import numpy.random``) bind the top name.
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.startswith(module + "."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _from_import_bindings(tree: ast.Module, module: str) -> Dict[str, str]:
    """``local name -> imported name`` for ``from module import …`` statements."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                bindings[alias.asname or alias.name] = alias.name
    return bindings


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("np", "random", "seed")`` for ``np.random.seed``; None otherwise."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


# --------------------------------------------------------------------- #
# RNG discipline
# --------------------------------------------------------------------- #
@register
class StdlibRandomRule(Rule):
    """RPL001: the stdlib ``random`` module is banned.

    ``random`` is process-global Mersenne-Twister state: any import can
    consume or reseed a stream another module depends on, and its draws
    are not derivable from :func:`repro.sim.seeding.derive_seed`.  Frozen
    legacy streams (byte-compat pinned by tests or RNG-exact kernels)
    live on the pyproject allowlist with a documented rationale.
    """

    code = "RPL001"
    name = "stdlib-random"
    summary = "stdlib `random` import (process-global Mersenne state)"
    rationale = (
        "committed futures must be a pure function of the seed; use a "
        "seeded np.random.Generator derived via repro.sim.seeding"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            node,
                            self.code,
                            "import of stdlib 'random'; draw from a seeded "
                            "np.random.Generator (repro.sim.seeding) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                    node.module and node.module.startswith("random.")
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        "from-import of stdlib 'random'; draw from a seeded "
                        "np.random.Generator (repro.sim.seeding) instead",
                    )


#: numpy.random attributes that touch the *global* legacy RandomState.
_NP_LEGACY = frozenset(
    {
        "seed",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "geometric",
        "beta",
        "gamma",
        "bytes",
        "get_state",
        "set_state",
    }
)

#: numpy.random attributes that construct new generators / bit generators.
_NP_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)


class _NumpyRandomAttrMixin(Rule):
    """Shared detection of ``<numpy alias>.random.<attr>`` references."""

    _attrs: ClassVar[FrozenSet[str]] = frozenset()

    #: When True, only call sites are flagged (type annotations and other
    #: bare references to e.g. ``np.random.Generator`` stay legal).
    _calls_only: ClassVar[bool] = False

    def _matches(self, ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
        numpy_aliases = _module_aliases(ctx.tree, "numpy")
        from_np_random = _from_import_bindings(ctx.tree, "numpy.random")
        from_np = _from_import_bindings(ctx.tree, "numpy")
        # `from numpy import random [as r]` exposes the same attributes.
        random_aliases = {
            local for local, name in from_np.items() if name == "random"
        }
        call_funcs = {
            id(node.func)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if self._calls_only and id(node) not in call_funcs:
                continue
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain is None:
                    continue
                matched = (
                    len(chain) == 3
                    and chain[0] in numpy_aliases
                    and chain[1] == "random"
                    and chain[2] in self._attrs
                ) or (
                    len(chain) == 2
                    and chain[0] in random_aliases
                    and chain[1] in self._attrs
                )
                if matched:
                    yield node, chain[-1]
            elif isinstance(node, ast.Name) and node.id in from_np_random:
                imported = from_np_random[node.id]
                if imported in self._attrs and not isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    yield node, imported


@register
class NumpyGlobalRngRule(_NumpyRandomAttrMixin):
    """RPL002: legacy ``np.random.<fn>()`` global-state calls are banned.

    The module-level numpy RandomState is shared across the whole
    process; a call anywhere perturbs every other consumer, and workers
    forked at different times silently diverge.  There is no allowlist —
    the modern ``Generator`` API covers every use.
    """

    code = "RPL002"
    name = "numpy-global-rng"
    summary = "legacy np.random.<fn> call on the process-global RandomState"
    rationale = (
        "global numpy RNG state breaks seed-purity and worker determinism; "
        "use an explicit np.random.Generator"
    )
    _attrs = _NP_LEGACY

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, attr in self._matches(ctx):
            yield ctx.finding(
                node,
                self.code,
                f"legacy global np.random.{attr}; use an explicit seeded "
                "np.random.Generator",
            )


@register
class RngConstructionRule(_NumpyRandomAttrMixin):
    """RPL003: ``Generator``/bit-generator construction is centralized.

    Constructing a generator is where a seed enters the system; outside
    the allowlisted seeded-adversary modules (whose seeds flow from
    :func:`repro.sim.seeding.derive_seed`) an ad-hoc ``default_rng()``
    is an unseeded — hence unreproducible — entropy source.
    """

    code = "RPL003"
    name = "rng-construction"
    summary = "np.random Generator/bit-generator construction outside the allowlist"
    rationale = (
        "every RNG stream must trace back to a derive_seed()-derived seed; "
        "construction sites are allowlisted and reviewed"
    )
    _attrs = _NP_CONSTRUCTORS
    _calls_only = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node, attr in self._matches(ctx):
            yield ctx.finding(
                node,
                self.code,
                f"np.random.{attr} constructed outside the seeded-RNG "
                "allowlist ([tool.reprolint.allow] RPL003)",
            )


# --------------------------------------------------------------------- #
# Clock discipline
# --------------------------------------------------------------------- #
#: Clock reads on the ``time`` module.  ``perf_counter``/``monotonic`` are
#: banned too: every timing measurement must go through
#: :func:`repro.obs.now` so elapsed-seconds telemetry stays confined to
#: the observability layer (``src/repro/obs/*`` is the only allowlisted
#: home for these calls — see docs/observability.md).
_TIME_BANNED = frozenset(
    {
        "time",
        "time_ns",
        "ctime",
        "localtime",
        "gmtime",
        "asctime",
        "strftime",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
    }
)
#: Wall-clock constructors on ``datetime``/``date`` classes.
_DATETIME_BANNED = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(Rule):
    """RPL004: clock reads are banned in result-determining modules.

    A timestamp that reaches a result file breaks fresh ≡ resumed
    byte-identity, and ad-hoc ``perf_counter`` timing scattered through
    the codebase is how telemetry leaks toward results.  The legitimate
    consumers — manifest bookkeeping in ``campaign/store.py`` (fields the
    equality checks deliberately ignore) and the observability layer
    ``repro.obs`` (all timing flows through :func:`repro.obs.now`) — are
    allowlisted in pyproject.
    """

    code = "RPL004"
    name = "wall-clock"
    summary = "time.time()/perf_counter()/datetime.now()-style clock read"
    rationale = (
        "clock reads in result-determining code break fresh-vs-resumed "
        "byte-identity; route timing through repro.obs and keep "
        "timestamps in allowlisted manifest bookkeeping"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        time_aliases = _module_aliases(ctx.tree, "time")
        datetime_module_aliases = _module_aliases(ctx.tree, "datetime")
        from_time = _from_import_bindings(ctx.tree, "time")
        from_datetime = _from_import_bindings(ctx.tree, "datetime")
        # Class names bound by `from datetime import datetime/date`.
        datetime_classes = {
            local
            for local, name in from_datetime.items()
            if name in {"datetime", "date"}
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain is None:
                    continue
                if (
                    len(chain) == 2
                    and chain[0] in time_aliases
                    and chain[1] in _TIME_BANNED
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read time.{chain[1]}; results must not "
                        "depend on the clock (allowlist: RPL004)",
                    )
                elif (
                    len(chain) == 2
                    and chain[0] in datetime_classes
                    and chain[1] in _DATETIME_BANNED
                ) or (
                    len(chain) == 3
                    and chain[0] in datetime_module_aliases
                    and chain[1] in {"datetime", "date"}
                    and chain[2] in _DATETIME_BANNED
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read {'.'.join(chain)}; results must not "
                        "depend on the clock (allowlist: RPL004)",
                    )
            elif isinstance(node, ast.Name) and not isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if from_time.get(node.id) in _TIME_BANNED:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"wall-clock read time.{from_time[node.id]} (imported "
                        f"as {node.id}); results must not depend on the clock",
                    )


# --------------------------------------------------------------------- #
# Sentinel discipline
# --------------------------------------------------------------------- #
#: Sentinel name -> the one module allowed to define it.
_SENTINEL_OWNERS: Dict[str, str] = {
    "INFINITY": "repro.offline.convergecast",
    "UNREACHABLE": "repro.ratio.semantics",
    "RATIO_UNDEFINED": "repro.ratio.semantics",
}


@register
class SentinelRedefinitionRule(Rule):
    """RPL005: determinism sentinels have exactly one definition site.

    ``INFINITY``, ``UNREACHABLE`` and ``RATIO_UNDEFINED`` carry documented
    comparison semantics (see ``docs/metrics.md``); a re-literal'd copy
    can drift (``1e308``, ``float("inf")`` vs ``math.inf``, NaN identity)
    and silently split the vocabulary.  Import them from their owner
    module instead.
    """

    code = "RPL005"
    name = "sentinel-redefinition"
    summary = "re-definition of INFINITY/UNREACHABLE/RATIO_UNDEFINED"
    rationale = (
        "sentinels are single-definition vocabulary shared by engines, "
        "kernels and stores; import them from the owning module"
    )

    @staticmethod
    def _assigned_names(node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                yield target, target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield element, element.id

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for target, name in self._assigned_names(node):
                owner = _SENTINEL_OWNERS.get(name)
                if owner is not None:
                    yield ctx.finding(
                        target,
                        self.code,
                        f"re-definition of sentinel {name}; import it from "
                        f"{owner} instead",
                    )


# --------------------------------------------------------------------- #
# Ordering discipline
# --------------------------------------------------------------------- #
#: Methods that only exist on set/frozenset and return sets.
_SET_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference"}
)
#: Set-algebra binary operators.
_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)


class _SetExprClassifier:
    """Syntactic 'is this expression a set?' check, with local-variable
    tracking inside a single scope (module / function body)."""

    def __init__(self, set_vars: Set[str]) -> None:
        self._set_vars = set_vars

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_vars
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _direct_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope`` itself (not to nested functions)."""
    body = getattr(scope, "body", [])
    stack: List[ast.stmt] = list(body if isinstance(body, list) else [])
    while stack:
        statement = stack.pop()
        yield statement
        for child in ast.iter_child_nodes(statement):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    grandchild
                    for grandchild in ast.walk(child)
                    if isinstance(grandchild, ast.stmt)
                )


@register
class UnorderedIterationRule(Rule):
    """RPL006: iterating a set must go through ``sorted(…)``.

    Set iteration order depends on insertion history and hash seeding of
    the element types; a loop or comprehension over a bare set expression
    can leak that order into returned collections, error messages or
    shards.  ``sorted(set_expr)`` (or ``min``/``max``/``sum``/``len``
    consumption, which the rule ignores) makes the order explicit.
    The check is scope-local and syntactic: set literals, ``set()`` /
    ``frozenset()`` calls, set-algebra operators/methods over those, and
    local variables directly assigned such an expression.
    """

    code = "RPL006"
    name = "unordered-iteration"
    summary = "iteration over an unordered set expression without sorted()"
    rationale = (
        "set order is insertion/hash dependent; ordering must be explicit "
        "before it can reach results or messages"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # ast.walk from an outer scope descends into nested functions too,
        # which their own scope pass revisits — dedupe by location.
        seen: Set[Tuple[int, int]] = set()
        for scope in _scopes(ctx.tree):
            statements = list(_direct_statements(scope))
            # Pass 1: local names directly bound to a set expression.
            bootstrap = _SetExprClassifier(set())
            set_vars: Set[str] = set()
            for statement in statements:
                if isinstance(statement, ast.Assign) and bootstrap.is_set_expr(
                    statement.value
                ):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            set_vars.add(target.id)
                elif isinstance(statement, ast.AnnAssign) and (
                    statement.value is not None
                    and bootstrap.is_set_expr(statement.value)
                    and isinstance(statement.target, ast.Name)
                ):
                    set_vars.add(statement.target.id)
            classifier = _SetExprClassifier(set_vars)
            # Pass 2: iteration sites.
            for statement in statements:
                for node in ast.walk(statement):
                    iterables: List[ast.expr] = []
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        iterables.append(node.iter)
                    elif isinstance(
                        node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                    ):
                        iterables.extend(gen.iter for gen in node.generators)
                    for iterable in iterables:
                        target = iterable
                        # Look through enumerate()/reversed() wrappers.
                        if (
                            isinstance(target, ast.Call)
                            and isinstance(target.func, ast.Name)
                            and target.func.id in {"enumerate", "reversed"}
                            and target.args
                        ):
                            target = target.args[0]
                        location = (target.lineno, target.col_offset)
                        if classifier.is_set_expr(target) and location not in seen:
                            seen.add(location)
                            yield ctx.finding(
                                target,
                                self.code,
                                "iteration over an unordered set expression; "
                                "wrap it in sorted(...) so the order is "
                                "explicit",
                            )


# --------------------------------------------------------------------- #
# Float equality
# --------------------------------------------------------------------- #
_FLOAT_SENTINEL_NAMES = frozenset({"INFINITY", "UNREACHABLE", "RATIO_UNDEFINED"})


def _is_floaty(node: ast.expr) -> bool:
    """Syntactically certain to be a float: literals, inf/nan, float() calls."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Name):
        return node.id in _FLOAT_SENTINEL_NAMES
    if isinstance(node, ast.Attribute):
        chain = _attr_chain(node)
        return chain is not None and (
            (chain[0] in {"math", "np", "numpy"} and chain[-1] in {"inf", "nan"})
        )
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    return False


@register
class FloatEqualityRule(Rule):
    """RPL007: ``==``/``!=`` against float-typed expressions.

    Exact float equality is either a bug (``x == RATIO_UNDEFINED`` is
    always False — NaN) or an implicit exactness claim that kernels can
    break through re-association.  Use ``math.isinf``/``math.isnan`` for
    sentinels, ``math.isclose`` for tolerances, or compare the underlying
    integers; genuinely-exact comparisons carry a per-line disable with
    the argument why.
    """

    code = "RPL007"
    name = "float-equality"
    summary = "exact ==/!= comparison against a float-typed expression"
    rationale = (
        "float equality hides exactness assumptions; prefer isinf/isnan/"
        "isclose or integer comparison, and justify exact cases inline"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floaty(left) or _is_floaty(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.finding(
                        node,
                        self.code,
                        f"exact float {symbol} comparison; use math.isinf/"
                        "isnan/isclose or compare integers (justify exact "
                        "cases with a disable comment)",
                    )

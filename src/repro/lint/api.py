"""Typed public API of the reprolint analyzer.

Three entry points, layered so each is independently testable:

* :func:`lint_source` — rules over one in-memory module (fixture tests);
* :func:`lint_file` — one file on disk, with suppression comments and
  config allowlists applied;
* :func:`lint_paths` — recursive collection over files/directories in a
  deterministic order (the CLI's engine).

All three return sorted :class:`~repro.lint.framework.Finding` lists and
never print; presentation is the CLI's job.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from . import checks as _checks  # noqa: F401  (importing registers the rules)
from .config import LintConfig
from .framework import Finding, ModuleContext, Rule, all_rules, check_module
from .suppress import parse_suppressions

__all__ = ["PARSE_ERROR_CODE", "collect_files", "lint_file", "lint_paths", "lint_source"]

#: Pseudo-rule code reported when a target file does not parse at all.
#: It deliberately sits outside the RPL001+ range of real rules and cannot
#: be suppressed: an unparseable module is never lint-clean.
PARSE_ERROR_CODE = "RPL900"


def _active_rules(config: LintConfig, rules: Optional[Sequence[Rule]]) -> List[Rule]:
    selected = list(rules) if rules is not None else all_rules()
    return [rule for rule in selected if not config.is_rule_disabled(rule.code)]


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Findings for one module given as source text.

    Suppression comments and per-rule allowlists are honoured exactly as
    for on-disk files; a syntax error yields a single
    :data:`PARSE_ERROR_CODE` finding instead of raising.
    """
    active_config = config if config is not None else LintConfig()
    display_path = (
        active_config.normalize(path) if path != "<string>" else path
    )
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as error:
        return [
            Finding(
                path=display_path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                code=PARSE_ERROR_CODE,
                message=f"module does not parse: {error.msg}",
            )
        ]
    ctx = ModuleContext(
        path=display_path, source=source, tree=tree, config=active_config
    )
    findings = check_module(ctx, _active_rules(active_config, rules))
    findings = [
        finding
        for finding in findings
        if not active_config.is_allowed(finding.code, path)
    ]
    return parse_suppressions(source).filter(findings)


def lint_file(
    path: "str | Path",
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Findings for one file on disk (empty when the file is excluded)."""
    active_config = config if config is not None else LintConfig()
    if active_config.is_excluded(path):
        return []
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), config=active_config, rules=rules)


def collect_files(paths: Iterable["str | Path"]) -> List[Path]:
    """All ``.py`` files under ``paths``, deduplicated, in sorted order."""
    collected: List[Path] = []
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                collected.append(candidate)
    return collected


def lint_paths(
    paths: Iterable["str | Path"],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Findings over files and directory trees, in deterministic order."""
    active_config = config if config is not None else LintConfig()
    findings: List[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, config=active_config, rules=rules))
    return sorted(findings)

"""reprolint — AST-based determinism/invariant linter for this repository.

The differential and property suites prove the determinism guarantees
*dynamically*; this package enforces the underlying disciplines
*statically*, at commit time, before any engine runs:

* **RNG discipline** (RPL001-RPL003) — no stdlib ``random``, no legacy
  ``np.random`` global state, ``Generator`` construction only in
  allowlisted seeded modules;
* **clock discipline** (RPL004) — no wall-clock reads in
  result-determining code;
* **sentinel discipline** (RPL005) — ``INFINITY`` / ``UNREACHABLE`` /
  ``RATIO_UNDEFINED`` are imported, never re-defined;
* **ordering discipline** (RPL006) — set iteration goes through
  ``sorted(…)``;
* **float-equality** (RPL007) — no bare ``==``/``!=`` on floats.

Run ``python -m repro.lint src tools`` (configuration in
``pyproject.toml`` under ``[tool.reprolint]``), or use the typed API:

>>> from repro.lint import lint_source
>>> [f.code for f in lint_source("import random\\n")]
['RPL001']

Full rule table and rationale: ``docs/determinism.md``.
"""

from __future__ import annotations

from .api import PARSE_ERROR_CODE, collect_files, lint_file, lint_paths, lint_source
from .cli import main
from .config import (
    DEFAULT_ALLOW,
    LintConfig,
    LintConfigError,
    discover_config,
    load_config,
)
from .framework import Finding, ModuleContext, Rule, all_rules, rule_table
from .suppress import SuppressionMap, parse_suppressions

__all__ = [
    "DEFAULT_ALLOW",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "ModuleContext",
    "PARSE_ERROR_CODE",
    "Rule",
    "SuppressionMap",
    "all_rules",
    "collect_files",
    "discover_config",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
    "parse_suppressions",
    "rule_table",
]

"""A fast drop-in execution engine for DODA algorithms.

:class:`FastExecutor` reproduces :class:`~repro.core.execution.Executor`
semantics exactly — same transmission log, same duration, same result fields,
seed for seed — while removing the per-interaction Python overhead that
dominates long randomized-adversary runs:

* node identifiers are mapped to dense integer indices once per run, so the
  hot loop works on plain list indexing instead of hashing identifiers;
* the remaining-owner count is an O(1) counter instead of rebuilding the
  ``owners()`` set after every transmission to test termination;
* the two :class:`~repro.core.node.NodeView` objects handed to the algorithm
  are allocated once and re-pointed at each interaction instead of being
  rebuilt twice per decision — so algorithms must not retain a view object
  beyond the ``decide`` call that received it (none of the registered
  algorithms do; persistent per-node state belongs in ``view.memory``,
  which is stable across the run under both engines);
* interactions from any adversary implementing the committed-block protocol
  of :class:`~repro.adversaries.committed.CommittedBlockAdversary` — the
  uniform and non-uniform randomized adversaries as well as the mobility
  families — are consumed in numpy blocks (``committed_index_block``),
  skipping the per-interaction
  :class:`~repro.core.interaction.Interaction` allocation entirely;
* data tokens are replaced by per-node origin counters and folded payloads,
  which carry exactly the information the result needs.

The reference :class:`Executor` remains the semantics oracle; the
differential tests in ``tests/test_fast_execution.py`` and
``tests/test_differential_adversaries.py`` assert equality of the two
engines across all registered algorithms, seeds and adversary families.

Supported interaction sources: finite
:class:`~repro.core.interaction.InteractionSequence` objects, committed
adversaries (batched, detected through their ``committed_index_block``
method), and any provider whose ``interaction_at`` only uses the read-only
query API of :class:`~repro.core.node.NetworkState` (``owns_data``,
``has_transmitted``, ``owners``, ``remaining_data_count``), which covers
the adaptive adversaries in :mod:`repro.adversaries`.

For sweeps, :meth:`FastExecutor.run_many` executes a whole cell of trials
in one engine invocation (see :mod:`repro.sim.batch`), sharing the
per-instance precomputation across trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Union

from ..obs import current_collector
from .algorithm import DODAAlgorithm
from .data import AggregationFunction, NodeId, SUM
from .exceptions import ConfigurationError, ModelViolationError
from .execution import (
    ExecutionResult,
    InteractionProvider,
    RecordingProvider,
    Transmission,
)
from .interaction import InteractionSequence, _canonical_pair
from .node import NodeView

#: Default number of committed interactions fetched per batch from a
#: committed adversary.  Large enough to amortise the numpy slicing, small
#: enough that an early termination does not force drawing far beyond the
#: duration.  Both batched engines take a per-instance ``block_size``
#: option; the default is pinned by the micro-benchmark in
#: ``benchmarks/test_bench_blocksize.py``.
DEFAULT_BLOCK_SIZE = 4096


def validate_instance(nodes: List[NodeId], sink: NodeId) -> None:
    """The DODA instance checks shared by every optimised engine.

    Raises:
        ModelViolationError: on a sink outside the node set, duplicate
            identifiers, or fewer than two nodes.
    """
    if sink not in nodes:
        raise ModelViolationError(f"sink {sink!r} is not among the nodes")
    if len(set(nodes)) != len(nodes):
        raise ModelViolationError("node identifiers must be unique")
    if len(nodes) < 2:
        raise ModelViolationError("a DODA instance needs at least 2 nodes")


def identifier_ranks(nodes: List[NodeId]) -> Optional[List[int]]:
    """Canonical presentation rank per dense index, or None.

    Mirrors :class:`~repro.core.interaction.Interaction`'s ordering: the
    rank of a node is its position in the sorted identifier order.  Returns
    None when the identifiers are not totally ordered (engines then use a
    per-pair fallback or route to a safer path).  Shared by the fast and
    vectorized engines so the canonical-order convention cannot drift
    between them.
    """
    try:
        rank_of = {node: rank for rank, node in enumerate(sorted(nodes))}
        return [rank_of[node] for node in nodes]
    except TypeError:
        return None


@dataclass
class BatchTrial:
    """One trial of a :meth:`FastExecutor.run_many` batch.

    ``algorithm`` / ``knowledge`` default to the executor's own when None —
    pass per-trial instances when each trial carries its own oracle state
    (e.g. a ``meetTime`` oracle bound to that trial's adversary).
    """

    source: Any
    max_interactions: Optional[int] = None
    algorithm: Optional[Any] = None
    knowledge: Optional[Any] = None
    initial_payloads: Optional[dict] = None


class _StateFacade:
    """Read-only NetworkState-compatible view over the fast engine's arrays.

    Handed to generic interaction providers (adaptive adversaries) so they
    can observe the execution exactly as they would observe the reference
    executor's :class:`~repro.core.node.NetworkState`.
    """

    def __init__(self, run: "_RunState") -> None:
        self._run = run

    @property
    def nodes(self) -> List[NodeId]:
        return self._run.nodes

    @property
    def sink(self) -> NodeId:
        return self._run.nodes[self._run.sink_index]

    def owns_data(self, node: NodeId) -> bool:
        return self._run.owns[self._run.index_of[node]]

    def has_transmitted(self, node: NodeId) -> bool:
        return self._run.transmitted_at[self._run.index_of[node]] is not None

    def owners(self) -> Set[NodeId]:
        run = self._run
        return {node for node, owns in zip(run.nodes, run.owns) if owns}

    def remaining_data_count(self) -> int:
        return self._run.remaining

    def is_aggregation_complete(self) -> bool:
        return self._run.remaining == 0

    def sink_coverage(self) -> int:
        return self._run.coverage[self._run.sink_index]


class _RunState:
    """Dense per-run state: plain lists indexed by node position."""

    __slots__ = (
        "nodes",
        "index_of",
        "sink_index",
        "owns",
        "coverage",
        "payload",
        "memory",
        "transmitted_at",
        "remaining",
    )

    def __init__(
        self,
        nodes: List[NodeId],
        sink: NodeId,
        initial_payloads: Optional[Dict[NodeId, float]],
    ) -> None:
        validate_instance(nodes, sink)
        payloads = initial_payloads or {}
        self.nodes = nodes
        self.index_of = {node: position for position, node in enumerate(nodes)}
        self.sink_index = self.index_of[sink]
        n = len(nodes)
        self.owns = [True] * n
        self.coverage = [1] * n
        self.payload = [float(payloads.get(node, 1.0)) for node in nodes]
        self.memory: List[Dict[str, Any]] = [{} for _ in range(n)]
        self.transmitted_at: List[Optional[int]] = [None] * n
        self.remaining = n - 1  # non-sink owners


class FastExecutor:
    """Run DODA algorithms fast while enforcing the interaction model.

    Construction mirrors :class:`~repro.core.execution.Executor`; the two
    classes are interchangeable wherever the interaction source is a finite
    sequence, a randomized adversary, or a provider that only reads the
    network state through its query methods.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        sink: NodeId,
        algorithm: DODAAlgorithm,
        aggregation: AggregationFunction = SUM,
        knowledge: Any = None,
        enforce_oblivious: bool = False,
        block_size: Optional[int] = None,
        capture_opt: bool = False,
    ) -> None:
        self.nodes = list(nodes)
        self.sink = sink
        self.algorithm = algorithm
        self.aggregation = aggregation
        self.knowledge = knowledge
        self.enforce_oblivious = enforce_oblivious
        # Offline-optimum capture (see Executor): evaluated through the
        # trial-vectorized kernels of repro.ratio on the committed window
        # each run consumed, with zero extra adversary draws.
        self.capture_opt = capture_opt
        if block_size is not None and block_size < 1:
            raise ConfigurationError("block_size must be a positive integer")
        self.block_size = int(block_size or DEFAULT_BLOCK_SIZE)
        available = () if knowledge is None else knowledge.provides()
        algorithm.validate_knowledge(available)
        # Canonical presentation order of interacting pairs (see
        # identifier_ranks), shared by every run of this instance; None
        # selects the per-pair fallback in the hot loop.
        self._rank: Optional[List[int]] = identifier_ranks(self.nodes)

    # ------------------------------------------------------------------ #
    def run(
        self,
        source: Union[InteractionSequence, InteractionProvider],
        max_interactions: Optional[int] = None,
        initial_payloads: Optional[dict] = None,
    ) -> ExecutionResult:
        """Execute the algorithm until termination or ``max_interactions``.

        Same contract as :meth:`repro.core.execution.Executor.run`.
        """
        return self._execute(
            self.algorithm, self.knowledge, source, max_interactions,
            initial_payloads,
        )

    def run_many(self, trials: Iterable[BatchTrial]) -> List[ExecutionResult]:
        """Run a batch of trials in one engine invocation.

        Every trial shares this executor's node set, sink, aggregation and
        per-instance precomputation (dense index map, canonical ranks); the
        algorithm and knowledge may vary per trial (``None`` selects the
        executor's own).  Results are identical to calling :meth:`run` once
        per trial with fresh executors — the batched sweep runner in
        :mod:`repro.sim.batch` differentially tests exactly that.
        """
        batch = list(trials)
        collector = current_collector()
        with collector.span(
            "engine.run_many", engine="fast", trials=len(batch)
        ):
            return self._run_batch(batch)

    def _run_batch(self, batch: List[BatchTrial]) -> List[ExecutionResult]:
        results: List[ExecutionResult] = []
        for trial in batch:
            algorithm = (
                trial.algorithm if trial.algorithm is not None else self.algorithm
            )
            knowledge = (
                trial.knowledge if trial.knowledge is not None else self.knowledge
            )
            available = () if knowledge is None else knowledge.provides()
            algorithm.validate_knowledge(available)
            results.append(
                self._execute(
                    algorithm,
                    knowledge,
                    trial.source,
                    trial.max_interactions,
                    trial.initial_payloads,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def _execute(
        self,
        algorithm: DODAAlgorithm,
        knowledge: Any,
        source: Union[InteractionSequence, InteractionProvider],
        max_interactions: Optional[int],
        initial_payloads: Optional[dict],
    ) -> ExecutionResult:
        """One execution with an explicit algorithm/knowledge binding."""
        if isinstance(source, InteractionSequence):
            if max_interactions is None:
                max_interactions = len(source)
        elif max_interactions is None:
            raise ConfigurationError(
                "max_interactions is required when running against an "
                "unbounded interaction provider"
            )
        if (
            self.capture_opt
            and not isinstance(source, InteractionSequence)
            and not hasattr(source, "committed_index_block")
        ):
            # Generic providers cannot be read back in blocks afterwards;
            # record the played window for the offline baseline.
            source = RecordingProvider(source)

        run = _RunState(self.nodes, self.sink, initial_payloads)
        algorithm.on_run_start(self.nodes, self.sink)

        ctx = _LoopContext(self, algorithm, knowledge, run, self._rank, max_interactions)
        if isinstance(source, InteractionSequence):
            ctx.consume_sequence(source)
        elif hasattr(source, "committed_index_block"):
            ctx.consume_batched_adversary(source)
        else:
            ctx.consume_provider(source)

        sink_index = run.sink_index
        return ExecutionResult(
            terminated=ctx.terminated,
            duration=ctx.duration,
            interactions_used=ctx.time,
            transmissions=ctx.transmissions,
            sink_coverage=run.coverage[sink_index],
            node_count=len(self.nodes),
            remaining_owners=tuple(
                sorted(
                    (
                        node
                        for position, node in enumerate(run.nodes)
                        if run.owns[position] and position != sink_index
                    ),
                    key=repr,
                )
            ),
            sink_payload=run.payload[sink_index],
            opt_cost=(
                self._captured_opt_cost(source, run, ctx.time)
                if self.capture_opt
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    def _captured_opt_cost(self, source: Any, run: _RunState, used: int) -> float:
        """Offline-optimum duration on the window ``[0, used)`` just played.

        Reads the consumed window back as dense index blocks (committed
        adversaries hand them out without drawing; sequences and recorded
        providers are converted) and evaluates the paper's ``opt(0)``
        through the single-row case of the trial-vectorized kernel —
        differential-equal to the reference engine's pure-Python oracle.
        """
        import numpy as np

        from ..ratio.kernels import opt_end_matrix, sequence_index_blocks
        from ..ratio.semantics import opt_cost_from_end

        if isinstance(source, InteractionSequence):
            i, j = sequence_index_blocks(source, run.index_of, length=used)
        elif hasattr(source, "committed_index_block"):
            i, j = source.committed_index_block(0, used)
            adversary_nodes = source.nodes()
            if adversary_nodes != run.nodes:
                translate = np.fromiter(
                    (run.index_of[node] for node in adversary_nodes),
                    dtype=np.int64,
                    count=len(adversary_nodes),
                )
                i = translate[i]
                j = translate[j]
        else:
            assert isinstance(source, RecordingProvider)
            i, j = sequence_index_blocks(
                source.recorded_sequence(), run.index_of, length=used
            )
        lengths = np.asarray([i.shape[0]], dtype=np.int64)
        ends = opt_end_matrix(
            i[None, :], j[None, :], lengths, len(run.nodes), run.sink_index
        )
        return opt_cost_from_end(float(ends[0]))


class _LoopContext:
    """The hot loop, shared by the three interaction-source shapes."""

    def __init__(
        self,
        executor: FastExecutor,
        algorithm: DODAAlgorithm,
        knowledge: Any,
        run: _RunState,
        rank: Optional[List[int]],
        max_interactions: int,
    ) -> None:
        self.executor = executor
        self.algorithm = algorithm
        self.run = run
        self.rank = rank
        self.max_interactions = max_interactions
        self.transmissions: List[Transmission] = []
        self.terminated = run.remaining == 0
        self.duration: Optional[int] = 0 if self.terminated else None
        self.time = 0
        # The two views are allocated once and re-pointed per interaction.
        self._first = NodeView(
            id=None, is_sink=False, owns_data=True, memory={},
            knowledge=knowledge,
        )
        self._second = NodeView(
            id=None, is_sink=False, owns_data=True, memory={},
            knowledge=knowledge,
        )

    # ------------------------------------------------------------------ #
    def _step(self, iu: int, iv: int, time: int) -> bool:
        """Decide and apply one interaction whose endpoints both own data.

        Returns True when the aggregation completed at ``time``.
        """
        run = self.run
        executor = self.executor
        nodes = run.nodes
        u = nodes[iu]
        v = nodes[iv]
        rank = self.rank
        if rank is not None:
            if rank[iu] > rank[iv]:
                iu, iv = iv, iu
                u, v = v, u
        else:
            a, _ = _canonical_pair(u, v)
            if a is not u:
                iu, iv = iv, iu
                u, v = v, u
        first = self._first
        second = self._second
        sink_index = run.sink_index
        first.id = u
        first.is_sink = iu == sink_index
        first.memory = run.memory[iu]
        second.id = v
        second.is_sink = iv == sink_index
        second.memory = run.memory[iv]
        algorithm = self.algorithm
        enforce = executor.enforce_oblivious and algorithm.oblivious
        if enforce:
            before = (dict(first.memory), dict(second.memory))
        decision = algorithm.decide(first, second, time)
        if enforce:
            if before[0] != first.memory or before[1] != second.memory:
                raise ModelViolationError(
                    f"oblivious algorithm {algorithm.name!r} modified node memory"
                )
        if decision is None:
            return False
        if decision == u:
            receiver_index, sender_index = iu, iv
            receiver, sender = u, v
        elif decision == v:
            receiver_index, sender_index = iv, iu
            receiver, sender = v, u
        else:
            raise ModelViolationError(
                f"algorithm {algorithm.name!r} returned {decision!r} which is "
                f"not part of the interaction {{{u!r}, {v!r}}} at t={time}"
            )
        if sender_index == sink_index:
            raise ModelViolationError(
                f"algorithm {algorithm.name!r} ordered the sink to transmit "
                f"at t={time}"
            )
        run.payload[receiver_index] = executor.aggregation.fold(
            run.payload[receiver_index], run.payload[sender_index]
        )
        run.coverage[receiver_index] += run.coverage[sender_index]
        run.owns[sender_index] = False
        run.transmitted_at[sender_index] = time
        run.remaining -= 1
        self.transmissions.append(
            Transmission(time=time, sender=sender, receiver=receiver)
        )
        return run.remaining == 0

    # ------------------------------------------------------------------ #
    def consume_sequence(self, sequence: InteractionSequence) -> None:
        """Fast path over a committed finite sequence."""
        if self.terminated:
            return
        run = self.run
        index_of = run.index_of
        owns = run.owns
        limit = min(len(sequence), self.max_interactions)
        for time in range(limit):
            interaction = sequence[time]
            iu = index_of[interaction.u]
            iv = index_of[interaction.v]
            if owns[iu] and owns[iv] and self._step(iu, iv, time):
                self.terminated = True
                self.duration = time + 1
                self.time = time + 1
                return
        self.time = limit

    def consume_batched_adversary(self, adversary: Any) -> None:
        """Batched path over a committed randomized adversary."""
        if self.terminated:
            return
        run = self.run
        owns = run.owns
        adversary_nodes = adversary.nodes()
        if adversary_nodes == run.nodes:
            translate = None
        else:
            index_of = run.index_of
            translate = [index_of[node] for node in adversary_nodes]
        time = 0
        block = self.executor.block_size
        while time < self.max_interactions:
            stop = min(self.max_interactions, time + block)
            requested = stop - time
            block_i, block_j = adversary.committed_index_block(time, stop)
            li = block_i.tolist()
            lj = block_j.tolist()
            if translate is not None:
                li = [translate[i] for i in li]
                lj = [translate[j] for j in lj]
            for offset, iu in enumerate(li):
                iv = lj[offset]
                if owns[iu] and owns[iv] and self._step(iu, iv, time + offset):
                    self.terminated = True
                    self.duration = time + offset + 1
                    self.time = time + offset + 1
                    return
            count = len(li)
            time += count
            if count < requested:
                break  # the adversary's safety horizon is exhausted
        self.time = time

    def consume_provider(self, provider: InteractionProvider) -> None:
        """Generic path: per-interaction queries against a provider."""
        if self.terminated:
            return
        run = self.run
        index_of = run.index_of
        owns = run.owns
        facade = _StateFacade(run)
        time = 0
        while time < self.max_interactions:
            interaction = provider.interaction_at(time, facade)
            if interaction is None:
                break
            iu = index_of[interaction.u]
            iv = index_of[interaction.v]
            if owns[iu] and owns[iv] and self._step(iu, iv, time):
                self.terminated = True
                self.duration = time + 1
                self.time = time + 1
                return
            time += 1
        self.time = time

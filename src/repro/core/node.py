"""Node state and the network state manipulated by the executor.

Nodes in the paper have unique identifiers, unlimited memory and unlimited
computational power; the special node ``s`` is the sink.  A node *owns data*
until the (unique) moment it transmits; once it has transmitted it can
neither send nor receive anymore.

Two classes are provided:

* :class:`NetworkState` — the authoritative state held by the executor:
  which node owns which :class:`~repro.core.data.DataToken`, who has already
  transmitted, and every node's private memory.
* :class:`NodeView` — the restricted view handed to a DODA algorithm during
  an interaction: identifier, ``isSink`` flag, data-ownership flag, the
  node's private memory (mutable, to model persistent-memory nodes) and the
  knowledge oracles granted to the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from .data import AggregationFunction, DataToken, NodeId, SUM
from .exceptions import ModelViolationError


class NetworkState:
    """Authoritative per-run state of every node.

    The executor is the only writer.  Algorithms interact with the state
    only through :class:`NodeView` objects.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        sink: NodeId,
        aggregation: AggregationFunction = SUM,
        initial_payloads: Optional[Dict[NodeId, float]] = None,
    ) -> None:
        self.nodes: List[NodeId] = list(nodes)
        if sink not in self.nodes:
            raise ModelViolationError(f"sink {sink!r} is not among the nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ModelViolationError("node identifiers must be unique")
        if len(self.nodes) < 2:
            raise ModelViolationError("a DODA instance needs at least 2 nodes")
        self.sink: NodeId = sink
        self.aggregation = aggregation
        payloads = initial_payloads or {}
        self.tokens: Dict[NodeId, Optional[DataToken]] = {
            node: DataToken.initial(node, payload=payloads.get(node, 1.0))
            for node in self.nodes
        }
        self.transmitted_at: Dict[NodeId, int] = {}
        self.memory: Dict[NodeId, Dict[str, Any]] = {node: {} for node in self.nodes}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def owns_data(self, node: NodeId) -> bool:
        """True if ``node`` still owns a datum (has not transmitted)."""
        return self.tokens[node] is not None

    def has_transmitted(self, node: NodeId) -> bool:
        """True if ``node`` has already transmitted its datum."""
        return node in self.transmitted_at

    def owners(self) -> Set[NodeId]:
        """The set of nodes currently owning data."""
        return {node for node, token in self.tokens.items() if token is not None}

    def token_of(self, node: NodeId) -> Optional[DataToken]:
        """The token currently owned by ``node`` (None if transmitted)."""
        return self.tokens[node]

    def is_aggregation_complete(self) -> bool:
        """True when the sink is the only node owning data."""
        return self.owners() == {self.sink}

    def sink_coverage(self) -> int:
        """Number of origins folded into the sink's token."""
        token = self.tokens[self.sink]
        return 0 if token is None else len(token)

    def remaining_data_count(self) -> int:
        """Number of nodes (other than the sink) that still own data."""
        return len(self.owners() - {self.sink})

    # ------------------------------------------------------------------ #
    # Mutations (executor only)
    # ------------------------------------------------------------------ #
    def transmit(self, sender: NodeId, receiver: NodeId, time: int) -> None:
        """Apply the transmission ``sender -> receiver`` at ``time``.

        Raises:
            ModelViolationError: if the transmission violates the DODA model
                (sender or receiver without data, sender is the sink, the
                nodes are equal, or sender already transmitted).
        """
        if sender == receiver:
            raise ModelViolationError("sender and receiver must differ")
        if sender == self.sink:
            raise ModelViolationError("the sink never transmits its data")
        sender_token = self.tokens[sender]
        receiver_token = self.tokens[receiver]
        if sender_token is None:
            raise ModelViolationError(
                f"node {sender!r} cannot transmit at t={time}: it no longer owns data"
            )
        if receiver_token is None:
            raise ModelViolationError(
                f"node {receiver!r} cannot receive at t={time}: it already transmitted"
            )
        self.tokens[receiver] = receiver_token.aggregate(
            sender_token, fold=self.aggregation.fold
        )
        self.tokens[sender] = None
        self.transmitted_at[sender] = time

    def view(self, node: NodeId, knowledge: "Any" = None) -> "NodeView":
        """Build the algorithm-facing view of ``node``."""
        return NodeView(
            id=node,
            is_sink=node == self.sink,
            owns_data=self.owns_data(node),
            memory=self.memory[node],
            knowledge=knowledge,
        )


@dataclass
class NodeView:
    """The restricted view of a node handed to a DODA algorithm.

    Attributes:
        id: the node identifier (``u.ID`` in the paper).
        is_sink: the ``u.isSink`` flag.
        owns_data: whether the node still owns a datum.
        memory: the node's private persistent memory.  Oblivious algorithms
            must not read or write it; the executor can enforce this.
        knowledge: the knowledge oracles granted to the run (may be None).
    """

    id: NodeId
    is_sink: bool
    owns_data: bool
    memory: Dict[str, Any] = field(default_factory=dict)
    knowledge: Any = None

    def meet_time(self, t: int) -> int:
        """``u.meetTime(t)``: time of the next interaction with the sink after ``t``.

        Requires the ``meetTime`` knowledge oracle.  For the sink itself the
        paper defines ``meetTime`` as the identity.
        """
        if self.is_sink:
            return t
        if self.knowledge is None or not hasattr(self.knowledge, "meet_time"):
            from .exceptions import KnowledgeError

            raise KnowledgeError(
                f"node {self.id!r} has no meetTime oracle in this run"
            )
        return self.knowledge.meet_time(self.id, t)

    def future(self) -> Any:
        """``u.future``: the node's future interactions with their times."""
        if self.knowledge is None or not hasattr(self.knowledge, "future"):
            from .exceptions import KnowledgeError

            raise KnowledgeError(f"node {self.id!r} has no future oracle in this run")
        return self.knowledge.future(self.id)

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the repro package."""


class ModelViolationError(ReproError):
    """An algorithm or schedule violated the DODA model.

    Typical causes: a node transmitting twice, a transmission from a node
    that no longer owns data, or an algorithm returning a node that is not
    part of the current interaction.
    """


class InvalidInteractionError(ReproError):
    """An interaction is malformed (self-loop, unknown node, bad time)."""


class InvalidScheduleError(ReproError):
    """An offline aggregation schedule is not valid for its sequence."""


class KnowledgeError(ReproError):
    """An algorithm requested knowledge that was not provided to the run."""


class HorizonExhaustedError(ReproError):
    """A computation needed more interactions than the available horizon."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with inconsistent options."""

"""The DODA algorithm interface and registry.

A *distributed online data aggregation* (DODA) algorithm takes as input an
interaction ``I_t = {u, v}`` and its time of occurrence ``t`` and outputs
either ``u``, ``v`` or ``⊥`` (None).  The output node, if any, is the
*receiver*: the other node transmits its data to it.  Following the paper's
convention the interacting nodes are presented to the algorithm ordered by
their identifiers, and the output is ignored by the executor whenever the
two nodes do not both own data.

Algorithms may additionally declare the knowledge they require (``meetTime``,
``future``, ``underlying_graph``, ``full_knowledge``); the executor checks
the declared requirements against the knowledge it can provide before a run
starts, mirroring the paper's ``DODA(i1, i2, ...)`` notation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Type

from .data import NodeId
from .exceptions import ConfigurationError
from .node import NodeView

#: Knowledge identifiers understood by the executor, mirroring the paper's
#: ``DODA(meetTime)`` / ``DODA(future)`` / ``DODA(G-bar)`` / full knowledge.
KNOWLEDGE_MEET_TIME = "meetTime"
KNOWLEDGE_FUTURE = "future"
KNOWLEDGE_UNDERLYING_GRAPH = "underlying_graph"
KNOWLEDGE_FULL = "full_knowledge"

ALL_KNOWLEDGE = frozenset(
    {
        KNOWLEDGE_MEET_TIME,
        KNOWLEDGE_FUTURE,
        KNOWLEDGE_UNDERLYING_GRAPH,
        KNOWLEDGE_FULL,
    }
)


class DODAAlgorithm:
    """Base class for distributed online data aggregation algorithms.

    Subclasses implement :meth:`decide`.  Class attributes:

    * ``name`` — short identifier used by the registry and the CLI;
    * ``oblivious`` — True if the algorithm never touches node memory
      (the paper's :math:`D^{\\emptyset}_{ODA}` class);
    * ``requires`` — frozenset of knowledge identifiers the algorithm needs.
    """

    name: str = "abstract"
    oblivious: bool = True
    requires: FrozenSet[str] = frozenset()

    def decide(
        self, first: NodeView, second: NodeView, time: int
    ) -> Optional[NodeId]:
        """Decide the receiver for the interaction ``{first.id, second.id}``.

        Args:
            first: view of the interacting node with the smaller identifier.
            second: view of the interacting node with the larger identifier.
            time: the time of occurrence of the interaction.

        Returns:
            The identifier of the *receiver* (one of the two nodes), or None
            for "no transmission".
        """
        raise NotImplementedError

    def on_run_start(self, nodes: Iterable[NodeId], sink: NodeId) -> None:
        """Hook called once before an execution starts.

        Stateless (oblivious) algorithms normally ignore it; algorithms that
        precompute shared deterministic structures (e.g. a spanning tree of
        the underlying graph) may use it.
        """

    def validate_knowledge(self, available: Iterable[str]) -> None:
        """Check that every required knowledge item is available.

        Raises:
            ConfigurationError: if a required oracle is missing.
        """
        missing = set(self.requires) - set(available)
        if missing:
            raise ConfigurationError(
                f"algorithm {self.name!r} requires knowledge {sorted(missing)} "
                "which the executor was not given"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class AlgorithmRegistry:
    """A name -> algorithm-class registry used by the CLI and experiments."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[DODAAlgorithm]] = {}

    def register(self, cls: Type[DODAAlgorithm]) -> Type[DODAAlgorithm]:
        """Register ``cls`` under its ``name`` attribute (decorator-friendly)."""
        name = cls.name
        if not name or name == "abstract":
            raise ConfigurationError(
                f"algorithm class {cls.__name__} must define a unique 'name'"
            )
        if name in self._classes and self._classes[name] is not cls:
            raise ConfigurationError(f"algorithm name {name!r} already registered")
        self._classes[name] = cls
        return cls

    def get(self, name: str) -> Type[DODAAlgorithm]:
        """Return the algorithm class registered under ``name``."""
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(
                f"unknown algorithm {name!r}; available: {sorted(self._classes)}"
            ) from None

    def names(self) -> Iterable[str]:
        """Registered algorithm names, sorted."""
        return sorted(self._classes)

    def create(self, name: str, **kwargs) -> DODAAlgorithm:
        """Instantiate the algorithm registered under ``name``."""
        return self.get(name)(**kwargs)


#: The process-wide registry populated by :mod:`repro.algorithms`.
registry = AlgorithmRegistry()

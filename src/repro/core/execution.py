"""The execution engine: run a DODA algorithm against an interaction source.

The executor owns the model rules so that algorithm implementations stay as
small as the paper's pseudo-code:

* at each interaction the algorithm is shown the two node views ordered by
  identifier and returns a receiver or None;
* the output is ignored if the two nodes do not both own data (the paper's
  simplifying convention);
* a transmission moves the sender's token to the receiver, aggregates it, and
  permanently removes the sender from the computation;
* the run terminates as soon as the sink is the only node owning data.

An execution consumes interactions either from a pre-built finite
:class:`~repro.core.interaction.InteractionSequence` or from any object
implementing the :class:`InteractionProvider` protocol (adaptive and
randomized adversaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Protocol, Sequence, Tuple, Union

from ..obs import current_collector
from ..obs import now as _obs_now
from .algorithm import DODAAlgorithm
from .data import AggregationFunction, NodeId, SUM
from .exceptions import ConfigurationError, ModelViolationError
from .interaction import Interaction, InteractionSequence
from .node import NetworkState


class InteractionProvider(Protocol):
    """Anything that can produce the interaction occurring at a given time.

    Adaptive adversaries inspect ``state`` (the authoritative network state,
    which reflects all transmissions decided so far) to choose the next
    interaction; oblivious sources ignore it.
    """

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        """Return the interaction occurring at ``time`` or None if exhausted."""
        ...


class SequenceProvider:
    """Adapt a finite :class:`InteractionSequence` to the provider protocol."""

    def __init__(self, sequence: InteractionSequence) -> None:
        self.sequence = sequence

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        if time < len(self.sequence):
            return self.sequence[time]
        return None


class RecordingProvider:
    """Wrap a provider and record the interactions it produced.

    Adaptive adversaries do not commit to a sequence before the execution;
    wrapping them in a :class:`RecordingProvider` makes the actually-played
    sequence available afterwards (e.g. to compute the cost measure on it).
    """

    def __init__(self, inner: InteractionProvider) -> None:
        self.inner = inner
        self.recorded: List[Interaction] = []

    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        interaction = self.inner.interaction_at(time, state)
        if interaction is not None:
            if len(self.recorded) == time:
                self.recorded.append(interaction)
            elif time < len(self.recorded):
                # Re-querying a past time is allowed only if the provider
                # answers consistently; silently overwriting history would
                # let an adaptive adversary replay a different sequence than
                # the one the executor actually played.
                if self.recorded[time] != interaction:
                    raise ModelViolationError(
                        f"provider changed its answer for t={time}: recorded "
                        f"{self.recorded[time]} but now produced {interaction}"
                    )
            else:
                raise ModelViolationError(
                    "interactions must be requested in consecutive time order"
                )
        return interaction

    def recorded_sequence(self) -> InteractionSequence:
        """The interactions played so far, as a finite sequence."""
        return InteractionSequence(self.recorded, keep_times=True)


@dataclass(frozen=True)
class Transmission:
    """One data transmission: ``sender`` sent its token to ``receiver`` at ``time``."""

    time: int
    sender: NodeId
    receiver: NodeId


@dataclass
class ExecutionResult:
    """Outcome of running a DODA algorithm on a sequence of interactions.

    Attributes:
        terminated: True if the sink ended up as the only data owner.
        duration: the paper's ``duration(A, I)``: the number of interactions
            consumed up to and including the one that completed the
            aggregation.  ``None`` when the run did not terminate within the
            horizon.
        interactions_used: number of interactions consumed (= horizon when
            the run did not terminate).
        transmissions: the transmission log in chronological order.
        sink_coverage: number of origins aggregated at the sink at the end.
        node_count: number of nodes in the instance.
        remaining_owners: nodes other than the sink that still own data.
        opt_cost: duration of the optimal *offline* convergecast on the
            committed window this run consumed (``opt(0) + 1``, see
            :mod:`repro.ratio.semantics`), captured only when the executor
            was constructed with ``capture_opt=True``; ``math.inf`` when no
            offline convergecast completes in the window, None when not
            captured.
    """

    terminated: bool
    duration: Optional[int]
    interactions_used: int
    transmissions: List[Transmission]
    sink_coverage: int
    node_count: int
    remaining_owners: Tuple[NodeId, ...] = ()
    sink_payload: Optional[float] = None
    opt_cost: Optional[float] = None

    @property
    def transmission_count(self) -> int:
        """Number of transmissions performed."""
        return len(self.transmissions)

    def transmissions_by_sender(self) -> dict:
        """Map sender -> transmission, for schedule inspection."""
        return {t.sender: t for t in self.transmissions}


class Executor:
    """Run DODA algorithms while enforcing the interaction model."""

    def __init__(
        self,
        nodes: Iterable[NodeId],
        sink: NodeId,
        algorithm: DODAAlgorithm,
        aggregation: AggregationFunction = SUM,
        knowledge: Any = None,
        enforce_oblivious: bool = False,
        capture_opt: bool = False,
    ) -> None:
        self.nodes = list(nodes)
        self.sink = sink
        self.algorithm = algorithm
        self.aggregation = aggregation
        self.knowledge = knowledge
        self.enforce_oblivious = enforce_oblivious
        # When True, every run also evaluates the offline-optimum baseline
        # (the paper's opt(0)) on the exact window of interactions the run
        # consumed, and reports it as ExecutionResult.opt_cost.  Committed
        # sources are read back without any extra adversary draws; generic
        # providers are transparently wrapped in a RecordingProvider.
        self.capture_opt = capture_opt
        available = () if knowledge is None else knowledge.provides()
        algorithm.validate_knowledge(available)

    # ------------------------------------------------------------------ #
    def run(
        self,
        source: Union[InteractionSequence, InteractionProvider],
        max_interactions: Optional[int] = None,
        initial_payloads: Optional[dict] = None,
    ) -> ExecutionResult:
        """Execute the algorithm until termination or ``max_interactions``.

        Args:
            source: a finite interaction sequence or an interaction provider
                (adversary).  Finite sequences also bound the horizon.
            max_interactions: hard cap on the number of interactions
                consumed; required when ``source`` is an unbounded provider.
            initial_payloads: optional per-node numeric payloads.

        Returns:
            An :class:`ExecutionResult`.

        Raises:
            ConfigurationError: if no horizon can be derived.
            ModelViolationError: if the algorithm returns an illegal output.
        """
        provider: InteractionProvider
        if isinstance(source, InteractionSequence):
            provider = SequenceProvider(source)
            if max_interactions is None:
                max_interactions = len(source)
        else:
            provider = source
        if max_interactions is None:
            raise ConfigurationError(
                "max_interactions is required when running against an "
                "unbounded interaction provider"
            )
        if (
            self.capture_opt
            and not isinstance(source, InteractionSequence)
            and not hasattr(provider, "committed_prefix")
        ):
            # Generic (e.g. adaptive) providers do not expose their played
            # window after the fact; record it so the offline baseline can
            # be evaluated on exactly the realized sequence.
            provider = RecordingProvider(provider)

        collector = current_collector()
        tracing = collector.enabled
        run_started = _obs_now() if tracing else 0.0

        state = NetworkState(
            self.nodes,
            self.sink,
            aggregation=self.aggregation,
            initial_payloads=initial_payloads,
        )
        self.algorithm.on_run_start(self.nodes, self.sink)

        transmissions: List[Transmission] = []
        duration: Optional[int] = None
        time = 0
        terminated = state.is_aggregation_complete()
        if terminated:
            duration = 0

        while not terminated and time < max_interactions:
            interaction = provider.interaction_at(time, state)
            if interaction is None:
                break
            decision = self._decide(interaction, time, state)
            if decision is not None:
                receiver = decision
                sender = interaction.other(receiver)
                state.transmit(sender, receiver, time)
                transmissions.append(
                    Transmission(time=time, sender=sender, receiver=receiver)
                )
                if state.is_aggregation_complete():
                    terminated = True
                    duration = time + 1
            time += 1

        if tracing:
            collector.add_span(
                "engine.run",
                run_started,
                _obs_now(),
                engine="reference",
                interactions=time,
                transmissions=len(transmissions),
            )

        sink_token = state.token_of(self.sink)
        return ExecutionResult(
            terminated=terminated,
            duration=duration,
            interactions_used=time,
            transmissions=transmissions,
            sink_coverage=state.sink_coverage(),
            node_count=len(self.nodes),
            remaining_owners=tuple(sorted(
                (node for node in state.owners() if node != self.sink),
                key=repr,
            )),
            sink_payload=None if sink_token is None else sink_token.payload,
            opt_cost=(
                self._captured_opt_cost(source, provider, time)
                if self.capture_opt
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    def _captured_opt_cost(
        self,
        source: Union[InteractionSequence, InteractionProvider],
        provider: InteractionProvider,
        used: int,
    ) -> float:
        """Offline-optimum duration on the window ``[0, used)`` just played.

        The reference engine evaluates the baseline through the pure-Python
        oracle (:func:`repro.offline.convergecast.opt`) — it *is* the
        semantics oracle — while the optimized engines go through the
        differential-equal vectorized kernels of :mod:`repro.ratio`.
        Committed adversaries are read back via ``committed_prefix`` (the
        window is already committed, so this never draws), finite sequences
        are sliced, and generic providers were wrapped in a
        :class:`RecordingProvider` before the run.
        """
        from ..offline.convergecast import opt as offline_opt
        from ..ratio.semantics import opt_cost_from_end

        if isinstance(source, InteractionSequence):
            window = source.slice(0, used)
        elif hasattr(provider, "committed_prefix"):
            window = provider.committed_prefix(used)
        else:
            assert isinstance(provider, RecordingProvider)
            window = provider.recorded_sequence()
        return opt_cost_from_end(
            offline_opt(window, self.nodes, self.sink, start=0)
        )

    # ------------------------------------------------------------------ #
    def _decide(
        self, interaction: Interaction, time: int, state: NetworkState
    ) -> Optional[NodeId]:
        """Query the algorithm and validate its output for one interaction."""
        u, v = interaction.u, interaction.v
        # The paper's convention: both nodes must own data for a transmission
        # to be possible; otherwise the algorithm's output is ignored.
        if not (state.owns_data(u) and state.owns_data(v)):
            return None
        first = state.view(u, knowledge=self.knowledge)
        second = state.view(v, knowledge=self.knowledge)
        if self.enforce_oblivious and self.algorithm.oblivious:
            before = (dict(first.memory), dict(second.memory))
        decision = self.algorithm.decide(first, second, time)
        if self.enforce_oblivious and self.algorithm.oblivious:
            after = (first.memory, second.memory)
            if before[0] != after[0] or before[1] != after[1]:
                raise ModelViolationError(
                    f"oblivious algorithm {self.algorithm.name!r} modified node memory"
                )
        if decision is None:
            return None
        if decision not in (u, v):
            raise ModelViolationError(
                f"algorithm {self.algorithm.name!r} returned {decision!r} which is "
                f"not part of the interaction {{{u!r}, {v!r}}} at t={time}"
            )
        sender = interaction.other(decision)
        if sender == self.sink:
            # The sink aggregates everything; it never gives its data away.
            # Treat an attempt to make the sink transmit as a model violation
            # because no correct DODA algorithm may do this.
            raise ModelViolationError(
                f"algorithm {self.algorithm.name!r} ordered the sink to transmit "
                f"at t={time}"
            )
        return decision


def run_algorithm(
    algorithm: DODAAlgorithm,
    sequence: Union[InteractionSequence, InteractionProvider],
    nodes: Iterable[NodeId],
    sink: NodeId,
    max_interactions: Optional[int] = None,
    knowledge: Any = None,
    aggregation: AggregationFunction = SUM,
) -> ExecutionResult:
    """Convenience one-shot wrapper around :class:`Executor`."""
    executor = Executor(
        nodes=nodes,
        sink=sink,
        algorithm=algorithm,
        aggregation=aggregation,
        knowledge=knowledge,
    )
    return executor.run(sequence, max_interactions=max_interactions)

"""Data tokens and aggregation functions.

In the paper every node initially *originates* a datum, and an aggregation
function combines two data into one datum of the same size (``min``, ``max``,
``sum`` over bounded values, ...).  For the reproduction we carry the data
explicitly so that an execution can be checked end-to-end: the sink must end
up with the aggregate of *all* initial data, and nothing must be lost or
duplicated.

The default datum is a :class:`DataToken` carrying the *set of origin node
identifiers*.  Aggregating two tokens unions the origin sets, so "the sink
owns the data of the whole network" is checkable as ``token.origins ==
set(all nodes)``.  Numeric payloads can be attached and folded with any
associative/commutative aggregation function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional

NodeId = Hashable
AggregationFn = Callable[[float, float], float]


def _default_payload_fold(left: float, right: float) -> float:
    """Default payload aggregation: sum (associative and commutative)."""
    return left + right


@dataclass(frozen=True)
class DataToken:
    """A datum owned by a node.

    Attributes:
        origins: identifiers of the nodes whose initial data has been folded
            into this token.  The invariant maintained by the executor is
            that origin sets of live tokens are pairwise disjoint and their
            union is the full node set.
        payload: a numeric value folded with the configured aggregation
            function; defaults to 1.0 per origin, so with the default
            ``sum`` fold the payload equals ``len(origins)``.
    """

    origins: FrozenSet[NodeId]
    payload: float = 1.0

    @classmethod
    def initial(cls, node: NodeId, payload: float = 1.0) -> "DataToken":
        """Create the initial datum originated by ``node``."""
        return cls(origins=frozenset({node}), payload=payload)

    def aggregate(
        self, other: "DataToken", fold: AggregationFn = _default_payload_fold
    ) -> "DataToken":
        """Combine this token with ``other`` using ``fold`` on payloads.

        Raises:
            ValueError: if the two tokens share an origin, which would mean a
                datum has been duplicated somewhere upstream.
        """
        if self.origins & other.origins:
            raise ValueError(
                "cannot aggregate tokens with overlapping origins: "
                f"{sorted(self.origins & other.origins)!r}"
            )
        return DataToken(
            origins=self.origins | other.origins,
            payload=fold(self.payload, other.payload),
        )

    def covers(self, nodes: Iterable[NodeId]) -> bool:
        """Return True if this token contains the data of every node in ``nodes``."""
        return set(nodes) <= self.origins

    def __len__(self) -> int:
        return len(self.origins)


@dataclass(frozen=True)
class AggregationFunction:
    """A named, associative and commutative aggregation function.

    The paper only requires that the output of aggregating two data has the
    same size as one datum; any associative/commutative fold satisfies the
    model.  Instances are used by the executor to fold numeric payloads.
    """

    name: str
    fold: AggregationFn
    identity: Optional[float] = None

    def __call__(self, left: float, right: float) -> float:
        return self.fold(left, right)


SUM = AggregationFunction("sum", lambda a, b: a + b, identity=0.0)
MIN = AggregationFunction("min", min)
MAX = AggregationFunction("max", max)
COUNT = AggregationFunction("count", lambda a, b: a + b, identity=0.0)

_BUILTIN: Dict[str, AggregationFunction] = {
    fn.name: fn for fn in (SUM, MIN, MAX, COUNT)
}


def get_aggregation_function(name: str) -> AggregationFunction:
    """Look up a built-in aggregation function by name.

    Raises:
        KeyError: if ``name`` is not one of ``sum``, ``min``, ``max``, ``count``.
    """
    try:
        return _BUILTIN[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregation function {name!r}; "
            f"available: {sorted(_BUILTIN)}"
        ) from None


def is_associative_commutative(
    fn: AggregationFn, samples: Iterable[float]
) -> bool:
    """Empirically check associativity and commutativity of ``fn`` on samples.

    This is a testing helper (used by the property-based tests); it cannot
    prove the property, only refute it.
    """
    values = list(samples)
    for a in values:
        for b in values:
            if fn(a, b) != fn(b, a):
                return False
            for c in values:
                if fn(fn(a, b), c) != fn(a, fn(b, c)):
                    return False
    return True

"""Pairwise interactions and interaction sequences.

The paper models a dynamic graph as a couple ``(V, I)`` where ``I`` is a
sequence of *pairwise interactions*; the index of an interaction in the
sequence is its time of occurrence.  This module provides:

* :class:`Interaction` — an unordered pair of distinct nodes plus its time;
* :class:`InteractionSequence` — a finite sequence of interactions indexed by
  time ``0, 1, 2, ...`` with convenience queries (footprint, meetings with a
  node, slicing, concatenation, repetition).

Infinite sequences (used by impossibility constructions) are represented by
adversaries that generate interactions on demand; see
:mod:`repro.adversaries`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .data import NodeId
from .exceptions import InvalidInteractionError


@dataclass(frozen=True, order=True)
class Interaction:
    """A single pairwise interaction ``I_t = {u, v}`` occurring at time ``t``.

    The pair is unordered; ``u`` and ``v`` are stored in a canonical order
    (sorted by ``repr`` of the identifier) so that equality and hashing do
    not depend on argument order.
    """

    time: int
    u: NodeId
    v: NodeId

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise InvalidInteractionError(
                f"interaction at time {self.time} is a self-loop on {self.u!r}"
            )
        if self.time < 0:
            raise InvalidInteractionError(
                f"interaction time must be non-negative, got {self.time}"
            )
        a, b = _canonical_pair(self.u, self.v)
        object.__setattr__(self, "u", a)
        object.__setattr__(self, "v", b)

    @property
    def pair(self) -> FrozenSet[NodeId]:
        """The unordered pair of interacting nodes."""
        return frozenset((self.u, self.v))

    def involves(self, node: NodeId) -> bool:
        """Return True if ``node`` takes part in this interaction."""
        return node == self.u or node == self.v

    def other(self, node: NodeId) -> NodeId:
        """Return the peer of ``node`` in this interaction.

        Raises:
            InvalidInteractionError: if ``node`` is not part of the interaction.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise InvalidInteractionError(
            f"node {node!r} is not part of interaction {self}"
        )

    def at_time(self, time: int) -> "Interaction":
        """Return a copy of this interaction re-stamped at ``time``."""
        return Interaction(time=time, u=self.u, v=self.v)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"I_{self.time}={{{self.u!r},{self.v!r}}}"


def _canonical_pair(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Order a pair of node identifiers deterministically."""
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class InteractionSequence:
    """A finite sequence of interactions, indexed by time.

    The time of the ``i``-th interaction is exactly ``i`` (as in the paper);
    the constructor re-stamps interactions accordingly unless
    ``keep_times=True`` is passed and the provided times already form the
    range ``0..len-1``.
    """

    def __init__(
        self,
        interactions: Iterable[Interaction | Tuple[NodeId, NodeId]],
        keep_times: bool = False,
    ) -> None:
        items: List[Interaction] = []
        for index, item in enumerate(interactions):
            if isinstance(item, Interaction):
                interaction = item if keep_times else item.at_time(index)
            else:
                u, v = item
                interaction = Interaction(time=index, u=u, v=v)
            items.append(interaction)
        if keep_times:
            for index, interaction in enumerate(items):
                if interaction.time != index:
                    raise InvalidInteractionError(
                        "keep_times=True requires times to equal indices; "
                        f"index {index} has time {interaction.time}"
                    )
        self._items: Tuple[Interaction, ...] = tuple(items)
        self._meetings_cache: Dict[NodeId, Tuple[int, ...]] = {}
        self._pair_times: Optional[Dict[FrozenSet[NodeId], List[int]]] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[NodeId, NodeId]]
    ) -> "InteractionSequence":
        """Build a sequence from an iterable of unordered pairs."""
        return cls(pairs)

    @classmethod
    def empty(cls) -> "InteractionSequence":
        """The empty sequence."""
        return cls(())

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Interaction:
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionSequence):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InteractionSequence(len={len(self)})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def pairs(self) -> List[Tuple[NodeId, NodeId]]:
        """The sequence as a list of ``(u, v)`` pairs in canonical order."""
        return [(i.u, i.v) for i in self._items]

    def nodes(self) -> Set[NodeId]:
        """All nodes appearing in at least one interaction."""
        found: Set[NodeId] = set()
        for interaction in self._items:
            found.add(interaction.u)
            found.add(interaction.v)
        return found

    def footprint_edges(self) -> Set[FrozenSet[NodeId]]:
        """Edges of the underlying graph (pairs interacting at least once)."""
        return {interaction.pair for interaction in self._items}

    def meetings_with(self, node: NodeId) -> Tuple[int, ...]:
        """Times at which ``node`` takes part in an interaction (ascending)."""
        cached = self._meetings_cache.get(node)
        if cached is None:
            cached = tuple(
                interaction.time
                for interaction in self._items
                if interaction.involves(node)
            )
            self._meetings_cache[node] = cached
        return cached

    def _pair_index(self) -> Dict[FrozenSet[NodeId], List[int]]:
        """Per-pair sorted meeting times, built once on first use.

        Mirrors ``RandomizedAdversary._meeting_index`` so that repeated
        ``meetTime`` queries cost O(log T) each instead of re-scanning the
        tail of the sequence (O(T) per query, O(T²) per committed-sequence
        run).
        """
        index = self._pair_times
        if index is None:
            index = {}
            for interaction in self._items:
                index.setdefault(interaction.pair, []).append(interaction.time)
            self._pair_times = index
        return index

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Smallest time ``t' > after`` with ``I_{t'} = {node, peer}``.

        Returns None if the pair never interacts after ``after`` within this
        finite sequence.
        """
        times = self._pair_index().get(frozenset((node, peer)))
        if not times:
            return None
        position = bisect_right(times, after)
        if position < len(times):
            return times[position]
        return None

    def count_pair(self, u: NodeId, v: NodeId) -> int:
        """Number of occurrences of the interaction ``{u, v}``."""
        return len(self._pair_index().get(frozenset((u, v)), ()))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: Optional[int] = None) -> "InteractionSequence":
        """The subsequence of interactions with times in ``[start, stop)``.

        Times are re-stamped to start at 0 so the result is itself a valid
        sequence.
        """
        stop = len(self) if stop is None else min(stop, len(self))
        return InteractionSequence(self._items[start:stop])

    def window(self, start: int, stop: int) -> Sequence[Interaction]:
        """The raw interactions with original times in ``[start, stop)``."""
        return self._items[start:stop]

    def concat(self, other: "InteractionSequence") -> "InteractionSequence":
        """This sequence followed by ``other`` (times re-stamped)."""
        return InteractionSequence(list(self._items) + list(other._items))

    def repeat(self, times: int) -> "InteractionSequence":
        """This sequence repeated ``times`` times (times re-stamped)."""
        if times < 0:
            raise ValueError("repeat count must be non-negative")
        return InteractionSequence(list(self._items) * times)

    def reversed(self) -> "InteractionSequence":
        """The sequence with interaction order reversed (times re-stamped).

        Used by the broadcast/convergecast duality of Theorem 8.
        """
        return InteractionSequence(reversed(self._items))

"""The paper's cost measure (Section 2.3).

The *cost* of an algorithm ``A`` on a sequence ``I`` compares its duration
against successive optimal offline convergecasts:

* ``opt(t)`` — ending time of an optimal convergecast on ``I`` starting at
  ``t`` (``∞`` if impossible);
* ``T(1) = opt(0)``, ``T(i+1) = opt(T(i) + 1)`` — duration of ``i``
  successive convergecasts;
* ``cost_A(I) = min { i | duration(A, I) <= T(i) }``.

An algorithm is an optimal data aggregation on ``I`` iff its cost is 1.  If
``duration(A, I) = ∞`` the cost is the number of successive convergecasts
that fit in ``I`` (``i_max``), or ``∞`` when infinitely many fit.

All computations here are exact for finite sequences; the executor's
``duration`` is plugged in directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from ..offline.convergecast import INFINITY, opt as offline_opt
from .data import NodeId
from .execution import ExecutionResult
from .interaction import InteractionSequence

Duration = Union[int, float]


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of a run together with the convergecast milestones used.

    Attributes:
        cost: the paper's ``cost_A(I)`` (``math.inf`` if unbounded).
        duration: the algorithm's duration on the sequence (``math.inf`` if
            it did not terminate).
        milestones: the values ``T(1), T(2), ...`` computed until the cost
            was determined (finite entries only, plus at most one ``inf``).
    """

    cost: float
    duration: float
    milestones: tuple


def convergecast_milestones(
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    up_to_duration: Optional[Duration] = None,
    max_milestones: Optional[int] = None,
) -> List[float]:
    """Compute ``T(1), T(2), ...`` until they reach ``up_to_duration``.

    The list stops at the first milestone that is ``>= up_to_duration`` (the
    smallest ``i`` with ``duration <= T(i)`` is then known), at the first
    infinite milestone, or after ``max_milestones`` entries.
    """
    node_list = list(nodes)
    milestones: List[float] = []
    start = 0
    while True:
        if max_milestones is not None and len(milestones) >= max_milestones:
            break
        ending = offline_opt(sequence, node_list, sink, start=start)
        milestones.append(ending)
        if math.isinf(ending):
            break
        if up_to_duration is not None and ending + 1 >= up_to_duration:
            # duration(A, I) <= T(i) compares against the milestone's ending
            # *time*; durations are counted in interactions, i.e. ending+1.
            break
        start = int(ending) + 1
        if start >= len(sequence):
            milestones.append(INFINITY)
            break
    return milestones


def cost_of_duration(
    duration: Optional[Duration],
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    max_milestones: Optional[int] = None,
) -> CostBreakdown:
    """Compute ``cost_A(I)`` given the algorithm's duration on ``I``.

    Args:
        duration: number of interactions the algorithm needed (the executor's
            ``ExecutionResult.duration``), or None / ``math.inf`` if it did
            not terminate.
        sequence: the sequence the algorithm ran on.
        nodes: the node set.
        sink: the sink node.
        max_milestones: optional safety cap on the number of milestones.

    Returns:
        A :class:`CostBreakdown`.
    """
    effective_duration: float = (
        math.inf if duration is None else float(duration)
    )
    milestones = convergecast_milestones(
        sequence,
        nodes,
        sink,
        up_to_duration=None if math.isinf(effective_duration) else effective_duration,
        max_milestones=max_milestones,
    )
    if not math.isinf(effective_duration):
        for index, milestone in enumerate(milestones, start=1):
            # duration is a count of interactions, milestones are ending
            # times (indices); duration d means the last transmission happened
            # at time d-1, so "duration <= T(i)" is d - 1 <= T(i).
            if effective_duration - 1 <= milestone:
                return CostBreakdown(
                    cost=float(index),
                    duration=effective_duration,
                    milestones=tuple(milestones[:index]),
                )
        # The loop above always terminates because milestones either reach
        # the duration or become infinite; reaching here means the last
        # milestone is finite but max_milestones was hit.
        return CostBreakdown(
            cost=math.inf,
            duration=effective_duration,
            milestones=tuple(milestones),
        )
    # Non-terminating run: cost is the number of convergecasts that fit
    # (i_max), or infinite if convergecasts never stop fitting.
    finite = [m for m in milestones if not math.isinf(m)]
    if len(finite) == len(milestones):
        # Every computed milestone is finite and the cap was hit: unbounded.
        return CostBreakdown(
            cost=math.inf, duration=effective_duration, milestones=tuple(milestones)
        )
    imax = len(finite)
    cost = float(imax) if imax > 0 else math.inf
    return CostBreakdown(
        cost=cost, duration=effective_duration, milestones=tuple(milestones)
    )


def cost_of_result(
    result: ExecutionResult,
    sequence: InteractionSequence,
    nodes: Iterable[NodeId],
    sink: NodeId,
    max_milestones: Optional[int] = None,
) -> CostBreakdown:
    """Convenience wrapper: cost of an :class:`ExecutionResult` on ``sequence``."""
    return cost_of_duration(
        result.duration if result.terminated else None,
        sequence,
        nodes,
        sink,
        max_milestones=max_milestones,
    )


def is_optimal(result: ExecutionResult, sequence: InteractionSequence,
               nodes: Iterable[NodeId], sink: NodeId) -> bool:
    """True iff the run achieved the paper's optimality criterion (cost = 1)."""
    breakdown = cost_of_result(result, sequence, nodes, sink)
    # cost = duration / optimal duration with duration >= optimum exactly
    # (docs/metrics.md), so x/x == 1.0 is the precise optimality test.
    return breakdown.cost == 1.0  # reprolint: disable=RPL007

"""Core model of the DODA problem: data, nodes, interactions, execution, cost.

This package contains everything needed to state and execute an instance of
the *Distributed Online Data Aggregation* problem exactly as defined in
Section 2 of the paper: the data/aggregation model, the pairwise-interaction
dynamic-graph model, the algorithm interface, the execution engine enforcing
the transmit-at-most-once rule, and the cost measure of Section 2.3.
"""

from .algorithm import (
    ALL_KNOWLEDGE,
    AlgorithmRegistry,
    DODAAlgorithm,
    KNOWLEDGE_FULL,
    KNOWLEDGE_FUTURE,
    KNOWLEDGE_MEET_TIME,
    KNOWLEDGE_UNDERLYING_GRAPH,
    registry,
)
from .cost import (
    CostBreakdown,
    convergecast_milestones,
    cost_of_duration,
    cost_of_result,
    is_optimal,
)
from .data import (
    AggregationFunction,
    COUNT,
    DataToken,
    MAX,
    MIN,
    NodeId,
    SUM,
    get_aggregation_function,
)
from .exceptions import (
    ConfigurationError,
    HorizonExhaustedError,
    InvalidInteractionError,
    InvalidScheduleError,
    KnowledgeError,
    ModelViolationError,
    ReproError,
)
from .execution import (
    ExecutionResult,
    Executor,
    InteractionProvider,
    RecordingProvider,
    SequenceProvider,
    Transmission,
    run_algorithm,
)
from .fast_execution import FastExecutor
from .interaction import Interaction, InteractionSequence
from .node import NetworkState, NodeView

__all__ = [
    "ALL_KNOWLEDGE",
    "AggregationFunction",
    "AlgorithmRegistry",
    "COUNT",
    "ConfigurationError",
    "CostBreakdown",
    "DODAAlgorithm",
    "DataToken",
    "ExecutionResult",
    "Executor",
    "FastExecutor",
    "HorizonExhaustedError",
    "Interaction",
    "InteractionProvider",
    "InteractionSequence",
    "InvalidInteractionError",
    "InvalidScheduleError",
    "KNOWLEDGE_FULL",
    "KNOWLEDGE_FUTURE",
    "KNOWLEDGE_MEET_TIME",
    "KNOWLEDGE_UNDERLYING_GRAPH",
    "KnowledgeError",
    "MAX",
    "MIN",
    "ModelViolationError",
    "NetworkState",
    "NodeId",
    "NodeView",
    "RecordingProvider",
    "ReproError",
    "SUM",
    "SequenceProvider",
    "Transmission",
    "convergecast_milestones",
    "cost_of_duration",
    "cost_of_result",
    "get_aggregation_function",
    "is_optimal",
    "registry",
    "run_algorithm",
]

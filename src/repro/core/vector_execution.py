"""Trial-vectorized execution: a whole sweep cell as struct-of-arrays.

:class:`VectorizedExecutor` is the third interchangeable execution engine
(after the reference :class:`~repro.core.execution.Executor` and the
per-trial-optimised :class:`~repro.core.fast_execution.FastExecutor`).  It
executes a *batch* of B trials simultaneously in struct-of-arrays form —
``owns_data[B, n]``, ``transmitted_at[B, n]``, ``origin_counts[B, n]``
(payloads fold scalar-side in event order, in per-row lists, to reproduce
the reference engine's float semantics exactly) — consuming the committed
futures of all B adversaries as ``(B, block)`` dense index matrices
(:meth:`~repro.adversaries.committed.CommittedBlockAdversary.
committed_index_matrix`).

Per-interaction Python work is eliminated through two observations:

* **data ownership is monotone** — a node that transmitted never owns data
  again, so a block-level ownership mask computed *once per block* is a
  sound superset of the interactions that can possibly matter; everything
  outside the mask is discarded with numpy, never touching Python;
* **algorithm decisions are (mostly) pure** — each supported algorithm
  registers a :mod:`~repro.algorithms.kernels` decision kernel, a
  pure-array ``decide_block(state, iu, iv, t) -> direction`` evaluated on
  whole candidate blocks.  Only the *candidates* (superset of the at most
  ``n - 1`` transmissions per trial) are walked scalar-side, in time order,
  with an exact ownership re-check — which also guarantees that sequential
  kernels (the RNG baselines) consume their random stream at exactly the
  reference engine's ``decide`` call sites.

The engine is **metric-identical** to the reference executor — same
transmission log, same durations, same :class:`~repro.core.execution.
ExecutionResult` fields, seed for seed — enforced by the differential suite
in ``tests/test_vector_execution.py`` and the invariant harness in
``tests/test_property_engine.py``.  Every registered algorithm has a
decision kernel, so under the standard sim-layer trial shapes no trial ever
leaves the lockstep.  The few trials the kernels cannot reproduce exactly —
an adaptive / non-committed interaction source, an oracle shape a kernel
cannot mirror, ``enforce_oblivious`` runs, unorderable node identifiers, a
sequential-kernel (RNG) algorithm instance shared across trials — fall back
to :class:`~repro.core.fast_execution.FastExecutor`, and the engine reports
each downgrade through :attr:`VectorizedExecutor.last_fallbacks`
(per-trial :class:`EngineFallback` records with human-readable reasons);
the sim layer surfaces nonzero counts as :class:`EngineFallbackWarning`.

Engine selection guidance lives in ``src/repro/README.md``; the speedup
trajectory (~32x over the reference engine on the standard n = 120
Waiting / Gathering / Waiting-Greedy sweep) is recorded in
``benchmarks/BENCH_engine.json`` and regression-gated by
``benchmarks/perf_gate.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..adversaries.committed import CommittedBlockAdversary
from ..obs import current_collector
from ..obs import now as _now
from ..algorithms.kernels import (
    FIRST_RECEIVES,
    KernelUnsupported,
    NO_TRANSMISSION,
    PENDING,
    get_kernel,
)
from .algorithm import DODAAlgorithm
from .data import AggregationFunction, NodeId, SUM
from .exceptions import ConfigurationError, ModelViolationError
from .execution import ExecutionResult, InteractionProvider, Transmission
from .fast_execution import (
    BatchTrial,
    DEFAULT_BLOCK_SIZE,
    FastExecutor,
    identifier_ranks,
    validate_instance,
)
from .interaction import InteractionSequence

__all__ = [
    "EngineFallback",
    "EngineFallbackWarning",
    "VectorizedExecutor",
    "INITIAL_BLOCK",
]


class EngineFallbackWarning(RuntimeWarning):
    """A vectorized batch silently ran some trials on the fallback engine.

    Emitted (once per sweep cell, by the sim layer) when a batch submitted
    to :class:`VectorizedExecutor` routed one or more trials to
    :class:`~repro.core.fast_execution.FastExecutor`: the results are still
    exact, but any ``engine=vectorized`` label on the cell's timings no
    longer describes how those trials actually ran.
    """


@dataclass(frozen=True)
class EngineFallback:
    """One trial of a batch that ran on the fallback engine, and why.

    ``position`` is the trial's index in the batch submitted to
    :meth:`VectorizedExecutor.run_many`; ``reason`` is a human-readable
    explanation (kernel precondition messages are captured verbatim).
    """

    position: int
    reason: str

#: First block length of a batch.  Starting small keeps the scalar
#: candidate walk short through the dense early phase (when every node
#: still owns data, every interaction is a candidate); the block length
#: doubles up to the engine's ``block_size`` as owners thin out and
#: candidates become rare.
INITIAL_BLOCK = 1024

#: After this many stale candidates (endpoints that lost data earlier in
#: the same block) accumulate since the last compaction, the remaining
#: candidates are re-masked against the current ownership vector and
#: compacted.
_REFILTER_AFTER = 48


class _SequenceBlocks:
    """Adapt a finite :class:`InteractionSequence` to committed-block reads.

    Emits dense indices directly in the executor's node order, so rows built
    from sequences need no translation.
    """

    def __init__(self, sequence: InteractionSequence, index_of: Dict[NodeId, int]) -> None:
        length = len(sequence)
        self._i = np.fromiter(
            (index_of[sequence[k].u] for k in range(length)),
            dtype=np.int64,
            count=length,
        )
        self._j = np.fromiter(
            (index_of[sequence[k].v] for k in range(length)),
            dtype=np.int64,
            count=length,
        )

    def committed_index_block(self, start: int, stop: int):
        stop = min(stop, self._i.shape[0])
        if start >= stop:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._i[start:stop], self._j[start:stop]


@dataclass
class _KernelTrial:
    """One kernel-routed trial of a batch."""

    index: int  # position in the caller's trial list
    kernel: Any
    state: Any
    fetcher: Any  # committed-block reader (adversary or sequence adapter)
    translate: Optional[np.ndarray]
    horizon: int
    payloads: List[float]


class VectorizedExecutor:
    """Run batches of DODA trials as numpy struct-of-arrays.

    Construction mirrors :class:`~repro.core.fast_execution.FastExecutor`
    (and therefore the reference executor); ``block_size`` bounds the
    committed-future window consumed per lockstep iteration.

    Args:
        nodes: the node set shared by every trial of a batch.
        sink: the sink node identifier.
        algorithm: default algorithm (overridable per trial).
        aggregation: payload fold.
        knowledge: default knowledge bundle (overridable per trial).
        enforce_oblivious: when True every trial falls back to
            :class:`FastExecutor`, which implements the memory-write check
            (kernels never touch node memory, so there is nothing to
            enforce on the kernel path).
        block_size: maximum lockstep window length (default
            :data:`~repro.core.fast_execution.DEFAULT_BLOCK_SIZE`).
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        sink: NodeId,
        algorithm: DODAAlgorithm,
        aggregation: AggregationFunction = SUM,
        knowledge: Any = None,
        enforce_oblivious: bool = False,
        block_size: Optional[int] = None,
        capture_opt: bool = False,
    ) -> None:
        self.nodes = list(nodes)
        self.sink = sink
        self.algorithm = algorithm
        self.aggregation = aggregation
        self.knowledge = knowledge
        self.enforce_oblivious = enforce_oblivious
        # Offline-optimum capture (see Executor): after the lockstep, the
        # whole cell's baselines are evaluated in one batched kernel call
        # over the exact committed windows the rows consumed.
        self.capture_opt = capture_opt
        if block_size is not None and block_size < 1:
            raise ConfigurationError("block_size must be a positive integer")
        self.block_size = int(block_size or DEFAULT_BLOCK_SIZE)
        validate_instance(self.nodes, sink)
        self.index_of = {node: position for position, node in enumerate(self.nodes)}
        self.sink_index = self.index_of[sink]
        available = () if knowledge is None else knowledge.provides()
        algorithm.validate_knowledge(available)
        # Canonical identifier ranks, shared with the fast engine so the
        # ordering convention cannot drift between them; unorderable
        # identifier types route every trial to the fallback.
        ranks = identifier_ranks(self.nodes)
        self._rank: Optional[np.ndarray] = (
            None if ranks is None else np.asarray(ranks, dtype=np.int64)
        )
        #: Per-trial fallback records of the most recent :meth:`run_many`
        #: batch (empty when every trial ran the lockstep).  A side channel
        #: rather than an ``ExecutionResult`` field: results stay
        #: byte-identical across engines, while the batch caller can still
        #: observe — and report — every engine downgrade.
        self.last_fallbacks: Tuple[EngineFallback, ...] = ()

    # ------------------------------------------------------------------ #
    def run(
        self,
        source: Union[InteractionSequence, InteractionProvider],
        max_interactions: Optional[int] = None,
        initial_payloads: Optional[dict] = None,
    ) -> ExecutionResult:
        """Execute one trial (a batch of size 1).

        Same contract as :meth:`repro.core.execution.Executor.run`.  Single
        trials gain little from vectorization — the engine's natural unit is
        the sweep cell via :meth:`run_many` — but the semantics are
        identical either way.
        """
        return self.run_many(
            [
                BatchTrial(
                    source=source,
                    max_interactions=max_interactions,
                    initial_payloads=initial_payloads,
                )
            ]
        )[0]

    def run_many(self, trials: Iterable[BatchTrial]) -> List[ExecutionResult]:
        """Run a batch of trials, vectorizing every kernel-capable one.

        Results are identical to running each trial through the reference
        executor — trials the kernels cannot reproduce exactly are executed
        by a :class:`FastExecutor` (itself differentially pinned to the
        reference engine), so the returned list is uniformly exact.
        """
        batch = list(trials)
        collector = current_collector()
        with collector.span(
            "engine.run_many", engine="vectorized", trials=len(batch)
        ) as span:
            results = self._run_batch(batch, collector)
            span.set(fallbacks=len(self.last_fallbacks))
            return results

    def _run_batch(
        self, batch: List[BatchTrial], collector: Any
    ) -> List[ExecutionResult]:
        self.last_fallbacks = ()
        results: List[Optional[ExecutionResult]] = [None] * len(batch)
        effective = [
            trial.algorithm if trial.algorithm is not None else self.algorithm
            for trial in batch
        ]
        # A *stateful* (sequential-kernel, i.e. RNG-consuming) algorithm
        # instance shared by several trials must not enter the lockstep:
        # interleaving rows would consume the shared stream in a different
        # order than sequential per-trial execution.  All trials of such an
        # instance fall back together, which preserves their mutual order
        # (FastExecutor.run_many is sequential) and therefore the stream.
        stateful_uses: Dict[int, int] = {}
        for algorithm in effective:
            try:
                kernel = get_kernel(algorithm.name)
            except LookupError:
                continue  # _prepare_trial reports the missing kernel
            if not kernel.vectorized:
                key = id(algorithm)
                stateful_uses[key] = stateful_uses.get(key, 0) + 1
        kernel_trials: List[_KernelTrial] = []
        fallback: List[BatchTrial] = []
        fallback_positions: List[int] = []
        fallbacks: List[EngineFallback] = []
        for position, trial in enumerate(batch):
            algorithm = effective[position]
            knowledge = (
                trial.knowledge if trial.knowledge is not None else self.knowledge
            )
            available = () if knowledge is None else knowledge.provides()
            algorithm.validate_knowledge(available)
            shared = stateful_uses.get(id(algorithm), 0)
            if shared > 1:
                prepared: Union[_KernelTrial, str] = (
                    f"sequential (RNG) kernel state shared across "
                    f"{shared} trials of the batch"
                )
            else:
                prepared = self._prepare_trial(
                    position, algorithm, knowledge, trial
                )
            if isinstance(prepared, _KernelTrial):
                algorithm.on_run_start(self.nodes, self.sink)
                kernel_trials.append(prepared)
            else:
                fallback.append(trial)
                fallback_positions.append(position)
                fallbacks.append(
                    EngineFallback(position=position, reason=prepared)
                )
        self.last_fallbacks = tuple(fallbacks)
        if collector.enabled:
            for record in fallbacks:
                collector.event(
                    "engine.fallback",
                    engine="vectorized",
                    position=record.position,
                    reason=record.reason,
                )
        if fallback:
            engine = FastExecutor(
                self.nodes,
                self.sink,
                self.algorithm,
                aggregation=self.aggregation,
                knowledge=self.knowledge,
                enforce_oblivious=self.enforce_oblivious,
                block_size=self.block_size,
                capture_opt=self.capture_opt,
            )
            for position, result in zip(
                fallback_positions, engine.run_many(fallback)
            ):
                results[position] = result
        if kernel_trials:
            for position, result in self._run_lockstep(kernel_trials):
                results[position] = result
        return results  # type: ignore[return-value]

    @property
    def last_fallback_count(self) -> int:
        """How many trials of the last batch ran on the fallback engine."""
        return len(self.last_fallbacks)

    @property
    def last_fallback_reasons(self) -> Tuple[str, ...]:
        """The per-trial fallback reasons of the last batch, in batch order."""
        return tuple(record.reason for record in self.last_fallbacks)

    # ------------------------------------------------------------------ #
    def _prepare_trial(
        self,
        position: int,
        algorithm: DODAAlgorithm,
        knowledge: Any,
        trial: BatchTrial,
    ) -> Union[_KernelTrial, str]:
        """Route one trial: a prepared kernel trial, or the fallback reason."""
        if self.enforce_oblivious:
            return (
                "enforce_oblivious requires the fallback engine's "
                "node-memory write check"
            )
        if self._rank is None:
            return "node identifiers have no canonical total order"
        try:
            kernel = get_kernel(algorithm.name)
        except LookupError as exc:
            return str(exc.args[0]) if exc.args else str(exc)
        source = trial.source
        horizon = trial.max_interactions
        translate: Optional[np.ndarray] = None
        if isinstance(source, InteractionSequence):
            if horizon is None:
                horizon = len(source)
            try:
                fetcher: Any = _SequenceBlocks(source, self.index_of)
            except KeyError:
                # The per-interaction engines only trip over such an
                # interaction if the run actually reaches it, so route the
                # trial to the fallback instead of failing eagerly.
                return (
                    "interaction sequence mentions nodes outside the "
                    "executor's node set"
                )
        elif hasattr(source, "committed_index_block"):
            if horizon is None:
                raise ConfigurationError(
                    "max_interactions is required when running against an "
                    "unbounded interaction provider"
                )
            source_nodes = source.nodes()
            if source_nodes != self.nodes:
                try:
                    translate = np.fromiter(
                        (self.index_of[node] for node in source_nodes),
                        dtype=np.int64,
                        count=len(source_nodes),
                    )
                except KeyError:
                    # Let the fallback engine report (or survive) the
                    # mismatch exactly as the reference engine would.
                    return (
                        "adversary node set is not a subset of the "
                        "executor's node set"
                    )
            fetcher = source
        else:
            return (
                "adaptive / non-committed interaction provider "
                "(no committed future to vectorize)"
            )
        try:
            state = kernel.prepare(
                algorithm,
                source,
                knowledge,
                horizon,
                len(self.nodes),
                self.sink_index,
                translate=translate,
                sink_node=self.sink,
                index_of=self.index_of,
            )
        except KernelUnsupported as exc:
            return f"kernel precondition failed: {exc}"
        payloads = trial.initial_payloads or {}
        return _KernelTrial(
            index=position,
            kernel=kernel,
            state=state,
            fetcher=fetcher,
            translate=translate,
            horizon=int(horizon),
            payloads=[float(payloads.get(node, 1.0)) for node in self.nodes],
        )

    # ------------------------------------------------------------------ #
    def _run_lockstep(self, kernel_trials: List[_KernelTrial]):
        """The struct-of-arrays hot loop over all kernel-routed trials."""
        collector = current_collector()
        tracing = collector.enabled
        lockstep_start = _now() if tracing else 0.0
        draw_seconds = 0.0
        draw_blocks = 0
        candidates_walked = 0
        batch_size = len(kernel_trials)
        n = len(self.nodes)
        nodes = self.nodes
        sink = self.sink_index
        rank = self._rank
        fold = self.aggregation.fold

        owns = np.ones((batch_size, n), dtype=bool)
        # Python-list mirror of ``owns`` for the scalar candidate walk
        # (plain list reads are several times cheaper than numpy scalar
        # indexing); writes go through _consume_row, which updates both.
        owns_py = [[True] * n for _ in range(batch_size)]
        transmitted_at = np.full((batch_size, n), -1, dtype=np.int64)
        origin_counts = np.ones((batch_size, n), dtype=np.int64)
        # Payloads are folded scalar-side in event order (to reproduce the
        # reference engine's float semantics bit for bit), so they live as
        # per-row Python lists rather than a numpy matrix.
        payload = [list(trial.payloads) for trial in kernel_trials]
        remaining = [n - 1] * batch_size
        transmissions: List[List[Transmission]] = [[] for _ in range(batch_size)]
        duration: List[Optional[int]] = [None] * batch_size
        used = [0] * batch_size
        horizons = [trial.horizon for trial in kernel_trials]

        active = [b for b in range(batch_size) if horizons[b] > 0]
        cursor = 0
        window = min(INITIAL_BLOCK, self.block_size)
        while active:
            stops = [min(horizons[b], cursor + window) for b in active]
            # Padding with 0 (a always-valid dense index) lets the ownership
            # gather run without a sanitising pass; ``lengths`` masks the
            # padding out of the candidate set.
            if tracing:
                draw_started = _now()
            matrix_i, matrix_j, lengths = (
                CommittedBlockAdversary.committed_index_matrix(
                    [kernel_trials[b].fetcher for b in active],
                    cursor,
                    stops,
                    pad=0,
                )
            )
            if tracing:
                draw_seconds += _now() - draw_started
                draw_blocks += 1
            width = matrix_i.shape[1]
            dense_rows = [
                row
                for row, b in enumerate(active)
                if not kernel_trials[b].kernel.sparse
            ]
            if width:
                for row, b in enumerate(active):
                    trans = kernel_trials[b].translate
                    count = int(lengths[row])
                    if trans is not None and count:
                        matrix_i[row, :count] = trans[matrix_i[row, :count]]
                        matrix_j[row, :count] = trans[matrix_j[row, :count]]
                if dense_rows:
                    rows = np.array([active[row] for row in dense_rows])[:, None]
                    sub_i = matrix_i[dense_rows]
                    sub_j = matrix_j[dense_rows]
                    # The whole-matrix work is this one ownership mask:
                    # since ownership only ever decays, everything it
                    # rejects stays rejected and never reaches Python.
                    # Padded columns (index 0) need no masking here — the
                    # per-row [:count] slice below never reads them.
                    mask = owns[rows, sub_i] & owns[rows, sub_j]
                    mask_row_of = {row: k for k, row in enumerate(dense_rows)}
            still_active = []
            for row, b in enumerate(active):
                count = int(lengths[row])
                if count:
                    trial = kernel_trials[b]
                    directions: Optional[np.ndarray] = None
                    if trial.kernel.sparse:
                        # Sparse kernels (rare non-abstain set, cheap pure
                        # decision — e.g. Waiting's sink-only rule) decide
                        # the whole row first and skip the ownership
                        # gathers; the walk's re-check supplies the
                        # ownership guard.  Indices stay in raw draw order:
                        # direction 0 names the ``iu`` side positionally.
                        row_i = matrix_i[row, :count]
                        row_j = matrix_j[row, :count]
                        dirs = trial.kernel.decide_block(
                            trial.state, row_i, row_j,
                            cursor + np.arange(count),
                        )
                        candidates = np.nonzero(dirs != NO_TRANSMISSION)[0]
                        first = row_i[candidates]
                        second = row_j[candidates]
                        directions = dirs[candidates]
                    else:
                        candidates = np.nonzero(mask[mask_row_of[row]][:count])[0]
                        if candidates.size:
                            # Canonical identifier order, applied only to
                            # the candidates (the full matrix never needs
                            # it).
                            iu = matrix_i[row, candidates]
                            iv = matrix_j[row, candidates]
                            swap = rank[iu] > rank[iv]
                            first = np.where(swap, iv, iu)
                            second = np.where(swap, iu, iv)
                    if candidates.size:
                        if tracing:
                            candidates_walked += int(candidates.size)
                        terminated_at = self._consume_row(
                            trial,
                            b,
                            candidates,
                            first,
                            second,
                            cursor,
                            owns,
                            owns_py[b],
                            transmitted_at,
                            origin_counts,
                            payload[b],
                            remaining,
                            transmissions,
                            fold,
                            directions,
                        )
                        if terminated_at is not None:
                            duration[b] = terminated_at
                            used[b] = terminated_at
                            continue
                used[b] = cursor + count
                if used[b] < stops[row]:
                    continue  # committed future exhausted: row is done
                if used[b] < horizons[b]:
                    still_active.append(b)
            active = still_active
            cursor += window
            window = min(window * 2, self.block_size)

        if tracing:
            lockstep_end = _now()
            collector.add_span(
                "engine.lockstep",
                lockstep_start,
                lockstep_end,
                engine="vectorized",
                trials=batch_size,
                blocks=draw_blocks,
                candidates_walked=candidates_walked,
            )
            collector.add_span(
                "engine.committed_draws",
                lockstep_start,
                lockstep_start + draw_seconds,
                engine="vectorized",
                blocks=draw_blocks,
            )
            collector.counter("engine.candidates_walked", candidates_walked)

        opt_costs: List[Optional[float]] = [None] * batch_size
        if self.capture_opt and batch_size:
            opt_costs = self._captured_opt_costs(kernel_trials, used)

        for b, trial in enumerate(kernel_trials):
            yield trial.index, ExecutionResult(
                terminated=duration[b] is not None,
                duration=duration[b],
                interactions_used=used[b],
                transmissions=transmissions[b],
                sink_coverage=int(origin_counts[b, sink]),
                node_count=n,
                remaining_owners=tuple(
                    sorted(
                        (
                            nodes[position]
                            for position in range(n)
                            if owns[b, position] and position != sink
                        ),
                        key=repr,
                    )
                ),
                sink_payload=float(payload[b][sink]),
                opt_cost=opt_costs[b],
            )

    # ------------------------------------------------------------------ #
    def _captured_opt_costs(
        self, kernel_trials: List[_KernelTrial], used: List[int]
    ) -> List[float]:
        """Offline-optimum durations for every row, in one batched kernel call.

        Re-reads the exact committed windows the lockstep consumed (all
        already committed — zero extra adversary draws), applies each row's
        node translation, and evaluates ``opt(0)`` for the whole cell as
        ``(B, L)`` numpy array ops.
        """
        from ..ratio.kernels import opt_end_matrix
        from ..ratio.semantics import opt_cost_from_end

        matrix_i, matrix_j, lengths = (
            CommittedBlockAdversary.committed_index_matrix(
                [trial.fetcher for trial in kernel_trials],
                0,
                [int(stop) for stop in used],
                pad=0,
            )
        )
        for row, trial in enumerate(kernel_trials):
            count = int(lengths[row])
            if trial.translate is not None and count:
                matrix_i[row, :count] = trial.translate[matrix_i[row, :count]]
                matrix_j[row, :count] = trial.translate[matrix_j[row, :count]]
        ends = opt_end_matrix(
            matrix_i, matrix_j, lengths, len(self.nodes), self.sink_index
        )
        return [opt_cost_from_end(float(end)) for end in ends]

    # ------------------------------------------------------------------ #
    def _consume_row(
        self,
        trial: _KernelTrial,
        b: int,
        candidates: np.ndarray,
        first: np.ndarray,
        second: np.ndarray,
        cursor: int,
        owns: np.ndarray,
        owns_list: List[bool],
        transmitted_at: np.ndarray,
        origin_counts: np.ndarray,
        payload_row: List[float],
        remaining: List[int],
        transmissions: List[List[Transmission]],
        fold: Any,
        precomputed: Optional[np.ndarray] = None,
    ) -> Optional[int]:
        """Walk one row's candidates in time order; apply its transmissions.

        ``candidates`` holds block offsets whose endpoints (``first``/
        ``second``, canonically ordered, aligned with ``candidates``) both
        owned data at block start — a sound superset, since ownership is
        monotone — so each candidate re-checks ownership scalar-side before
        deciding/applying, exactly reproducing the reference engine's
        per-interaction guard.  Returns the trial's duration when the
        aggregation completed inside this block, else None.
        """
        kernel = trial.kernel
        state = trial.state
        owns_b = owns[b]
        sink = self.sink_index
        nodes = self.nodes
        algorithm_name = kernel.algorithm_name
        if precomputed is not None:
            directions = precomputed
            direction_list = directions.tolist()
        elif kernel.vectorized:
            directions = kernel.decide_block(
                state, first, second, cursor + candidates
            )
            keep = directions != NO_TRANSMISSION
            if not keep.all():
                candidates = candidates[keep]
                first = first[keep]
                second = second[keep]
                directions = directions[keep]
            direction_list = directions.tolist()
        else:
            direction_list = None
        # The numpy views stay alongside the scalar-walk lists so the
        # periodic re-filter compaction runs entirely in numpy.
        offsets = candidates.tolist()
        first_list = first.tolist()
        second_list = second.tolist()
        position = 0
        stale = 0
        while position < len(offsets):
            iu = first_list[position]
            iv = second_list[position]
            if not (owns_list[iu] and owns_list[iv]):
                stale += 1
                remaining_count = len(offsets) - position - 1
                if stale >= _REFILTER_AFTER and remaining_count > _REFILTER_AFTER:
                    tail = slice(position + 1, None)
                    rest_first = first[tail]
                    rest_second = second[tail]
                    alive = owns_b[rest_first] & owns_b[rest_second]
                    candidates = candidates[tail][alive]
                    first = rest_first[alive]
                    second = rest_second[alive]
                    offsets = candidates.tolist()
                    first_list = first.tolist()
                    second_list = second.tolist()
                    if direction_list is not None:
                        directions = directions[tail][alive]
                        direction_list = directions.tolist()
                    position = 0
                    stale = 0
                    continue
                position += 1
                continue
            time = cursor + offsets[position]
            if direction_list is not None:
                direction = direction_list[position]
                if direction == PENDING:
                    # The kernel deferred this decision; it is resolved only
                    # now that the candidate is known to be live (stale
                    # PENDING candidates are never resolved — the reference
                    # engine never queries the oracle for them either).
                    direction = kernel.resolve_one(state, iu, iv, time)
                    if direction == NO_TRANSMISSION:
                        position += 1
                        continue
            else:
                direction = kernel.decide_one(state, iu, iv, time)
                if direction == NO_TRANSMISSION:
                    position += 1
                    continue
            if direction == FIRST_RECEIVES:
                receiver, sender = iu, iv
            else:
                receiver, sender = iv, iu
            if sender == sink:
                raise ModelViolationError(
                    f"algorithm {algorithm_name!r} ordered the sink to "
                    f"transmit at t={time}"
                )
            payload_row[receiver] = fold(
                payload_row[receiver], payload_row[sender]
            )
            origin_counts[b, receiver] += origin_counts[b, sender]
            owns_b[sender] = False
            owns_list[sender] = False
            transmitted_at[b, sender] = time
            remaining[b] -= 1
            transmissions[b].append(
                Transmission(time=time, sender=nodes[sender], receiver=nodes[receiver])
            )
            if remaining[b] == 0:
                return time + 1
            position += 1
        return None

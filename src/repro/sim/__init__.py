"""Experiment harness: seeding, trial runners, sweeps and result tables."""

from .metrics import TrialMetrics, durations, mean_duration, termination_rate
from .results import ExperimentReport, ResultTable
from .runner import (
    SweepPoint,
    SweepResult,
    build_knowledge_for_random_run,
    default_horizon,
    run_random_trial,
    sweep_random_adversary,
)
from .seeding import derive_seed, trial_seeds

__all__ = [
    "ExperimentReport",
    "ResultTable",
    "SweepPoint",
    "SweepResult",
    "TrialMetrics",
    "build_knowledge_for_random_run",
    "default_horizon",
    "derive_seed",
    "durations",
    "mean_duration",
    "run_random_trial",
    "sweep_random_adversary",
    "termination_rate",
    "trial_seeds",
]

"""Experiment harness: seeding, trial runners, sweeps and result tables.

Role: the measurement layer between the engines and the experiments —
derive seeds, assemble adversaries + knowledge oracles for a trial, run
``ns × trials`` sweeps (serially, over worker processes, or as whole
batched cells), and collect :class:`~repro.sim.metrics.TrialMetrics`
into result tables.

Invariant: every trial's seed derives from ``(master_seed, experiment,
algorithm, n, trial)`` via :func:`~repro.sim.seeding.derive_seed`, so
all execution strategies — serial, ``workers=N``, ``batched=True``, any
engine — reproduce each other bit for bit, and everything measured above
this layer is reproducible from ``(master_seed, experiment)`` alone.
"""

from .metrics import TrialMetrics, durations, mean_duration, termination_rate

# The canonical sweep entry point is the parallel-capable one; it delegates
# to the serial implementation in .runner for workers <= 1, so there is a
# single public API surface.  The batched variant runs whole sweep cells in
# one engine invocation.
from .batch import run_sweep_cell, sweep_adversary_batched
from .parallel import run_sweep_cells, sweep_random_adversary
from .results import ExperimentReport, ResultTable
from .runner import (
    ENGINES,
    SweepPoint,
    SweepResult,
    build_knowledge_for_random_run,
    build_trial_adversary,
    default_horizon,
    derive_sweep_trial,
    execute_random_trial,
    resolve_adversary_family,
    resolve_engine,
    run_random_trial,
    run_sweep_trial,
    validate_sweep_parameters,
)
from .seeding import derive_seed, trial_seeds

__all__ = [
    "ENGINES",
    "ExperimentReport",
    "ResultTable",
    "SweepPoint",
    "SweepResult",
    "TrialMetrics",
    "build_knowledge_for_random_run",
    "build_trial_adversary",
    "default_horizon",
    "derive_seed",
    "derive_sweep_trial",
    "durations",
    "execute_random_trial",
    "mean_duration",
    "resolve_adversary_family",
    "resolve_engine",
    "run_random_trial",
    "run_sweep_cell",
    "run_sweep_cells",
    "run_sweep_trial",
    "sweep_adversary_batched",
    "sweep_random_adversary",
    "termination_rate",
    "trial_seeds",
    "validate_sweep_parameters",
]

"""Deterministic seed derivation for reproducible experiment sweeps.

Every trial of every experiment derives its RNG seed from a master seed, the
experiment name, the parameter point (e.g. ``n``) and the trial index, so
that re-running any subset of an experiment reproduces exactly the same
sequences without sharing RNG state across trials.
"""

from __future__ import annotations

import hashlib
from typing import List


def derive_seed(master_seed: int, *components: object) -> int:
    """Derive a 63-bit seed from a master seed and arbitrary components.

    The derivation is stable across processes and Python versions (it hashes
    the ``repr`` of the components with SHA-256 rather than relying on
    ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for component in components:
        digest.update(b"/")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & ((1 << 63) - 1)


def trial_seeds(
    master_seed: int, experiment: str, parameter: object, trials: int
) -> List[int]:
    """Seeds for ``trials`` independent trials of one experiment point."""
    return [
        derive_seed(master_seed, experiment, parameter, trial)
        for trial in range(trials)
    ]

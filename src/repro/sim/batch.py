"""Whole-cell batched sweep execution.

The per-trial runner (:func:`repro.sim.runner.run_sweep_trial`) assembles a
fresh executor for every ``(n, trial)`` grid cell entry.  This module runs a
whole sweep cell — all trials of one algorithm at one ``n`` — through **one
engine invocation**: a single batch-capable executor
(:class:`~repro.core.fast_execution.FastExecutor` or the trial-vectorized
:class:`~repro.core.vector_execution.VectorizedExecutor`) is constructed
per cell and its ``run_many`` executes every trial, sharing the dense
node-index map, canonical-rank precomputation and — for the vectorized
engine — the whole struct-of-arrays lockstep across trials.

Determinism contract: the batched sweep derives exactly the same per-trial
seeds, horizons and adversaries as the serial and parallel runners, so
:func:`sweep_adversary_batched` reproduces
:func:`repro.sim.runner.sweep_random_adversary` metric for metric (the
differential tests in ``tests/test_differential_adversaries.py`` assert
this for every adversary family).  With ``engine="reference"`` the cell
falls back to per-trial reference executors — useful as the oracle side of
that differential.

The cell is also the campaign layer's unit of execution and checkpointing:
:mod:`repro.campaign` decomposes a declarative spec into
:func:`run_sweep_cell` invocations (heterogeneous cells fan out over
workers via :func:`repro.sim.parallel.run_sweep_cells`) and persists each
completed cell as one store shard.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.algorithm import DODAAlgorithm
from ..core.data import NodeId
from ..core.fast_execution import BatchTrial, FastExecutor
from ..core.vector_execution import EngineFallback, EngineFallbackWarning
from ..obs import current_collector
from .metrics import TrialMetrics
from .runner import (
    AlgorithmFactory,
    SweepPoint,
    SweepResult,
    build_knowledge_for_random_run,
    build_trial_adversary,
    derive_sweep_trial,
    resolve_adversary_family,
    resolve_engine,
    validate_sweep_parameters,
)

__all__ = ["run_sweep_cell", "sweep_adversary_batched"]


def run_sweep_cell(
    algorithm_factory: AlgorithmFactory,
    n: int,
    trials: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
    sink: NodeId = 0,
    engine: str = "fast",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    block_size: Optional[int] = None,
    capture_opt: bool = False,
) -> List[TrialMetrics]:
    """Run all ``trials`` of one sweep cell in one engine invocation.

    Seeds, horizons, adversaries and knowledge oracles are derived exactly
    as in :func:`repro.sim.runner.run_sweep_trial`, so the returned metrics
    are identical to the per-trial path.  ``engine="fast"`` routes the cell
    through :meth:`FastExecutor.run_many`, ``engine="vectorized"`` through
    the struct-of-arrays lockstep of :meth:`~repro.core.vector_execution.
    VectorizedExecutor.run_many` — every registered algorithm has a decision
    kernel, so a trial leaves the lockstep only for the exceptional shapes
    listed in :mod:`repro.core.vector_execution`; when that happens the cell
    emits one :class:`EngineFallbackWarning` and tags the affected trials'
    metrics with ``extra["engine_fallback"]`` (the reason string).
    ``engine="reference"`` runs one reference executor per trial (the
    semantics oracle for differential tests of this very function).
    ``block_size`` tunes the batched engines' committed
    window (None keeps each engine's default).  ``capture_opt=True``
    additionally evaluates the offline-optimum baseline per trial (the
    vectorized engine does so for the whole cell in one batched kernel
    call), filling the metrics' ``opt_cost``/``competitive_ratio`` fields
    identically to the per-trial path.

    Raises:
        ValueError: if ``n``/``trials`` are invalid or ``engine`` /
            ``adversary`` is unknown.
    """
    validate_sweep_parameters([n], trials)
    executor_cls = resolve_engine(engine)
    resolve_adversary_family(adversary)
    nodes = list(range(n))
    if sink not in nodes:
        raise ValueError("sink must be one of the nodes 0..n-1")
    collector = current_collector()
    with collector.span(
        "sweep.cell", engine=engine, adversary=adversary, n=n, trials=trials
    ) as cell_span:
        metrics = _run_cell(
            algorithm_factory, n, trials, master_seed, experiment,
            horizon_fn, sink, engine, adversary, adversary_params,
            block_size, capture_opt, executor_cls,
        )
        if collector.enabled:
            cell_span.set(
                algorithm=metrics[0].algorithm if metrics else "",
                fallbacks=sum(
                    1 for m in metrics if "engine_fallback" in m.extra
                ),
            )
        return metrics


def _run_cell(
    algorithm_factory: AlgorithmFactory,
    n: int,
    trials: int,
    master_seed: int,
    experiment: str,
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]],
    sink: NodeId,
    engine: str,
    adversary: str,
    adversary_params: Optional[Dict[str, Any]],
    block_size: Optional[int],
    capture_opt: bool,
    executor_cls: Any,
) -> List[TrialMetrics]:
    """The cell body of :func:`run_sweep_cell` (span handled by the wrapper)."""
    nodes = list(range(n))

    def prepare(trial: int):
        """One trial's engine inputs, derived exactly like run_sweep_trial."""
        algorithm, seed, horizon = derive_sweep_trial(
            algorithm_factory, n, trial, master_seed=master_seed,
            experiment=experiment, horizon_fn=horizon_fn,
        )
        adversary_obj = build_trial_adversary(
            adversary, nodes, seed, horizon, sink, adversary_params
        )
        knowledge, committed = build_knowledge_for_random_run(
            algorithm, adversary_obj, nodes, sink, horizon
        )
        source = committed if committed is not None else adversary_obj
        return algorithm, knowledge, source, horizon, seed

    # Trials are prepared lazily — under the fast engine each committed
    # future (and any horizon-length committed prefix a knowledge oracle
    # pre-draws) is only alive while its trial runs, matching the serial
    # path's peak memory.  The vectorized engine materialises the whole
    # cell (its lockstep consumes all committed futures side by side), so
    # its peak memory grows with ``trials`` — by design.
    meta: List[Tuple[str, int, int]] = []

    def record(algorithm, horizon, seed):
        meta.append((algorithm.name, horizon, seed))

    if hasattr(executor_cls, "run_many"):
        first = prepare(0)
        executor_kwargs: Dict[str, Any] = {
            "knowledge": first[1],
            "capture_opt": capture_opt,
        }
        if block_size is not None:
            executor_kwargs["block_size"] = block_size
        cell_executor = executor_cls(nodes, sink, first[0], **executor_kwargs)

        def batch_trials():
            for trial in range(trials):
                algorithm, knowledge, source, horizon, seed = (
                    first if trial == 0 else prepare(trial)
                )
                record(algorithm, horizon, seed)
                yield BatchTrial(
                    source=source,
                    max_interactions=horizon,
                    algorithm=algorithm,
                    knowledge=knowledge,
                )

        results = cell_executor.run_many(batch_trials())
        fallbacks: Tuple[EngineFallback, ...] = getattr(
            cell_executor, "last_fallbacks", ()
        )
        if fallbacks:
            reasons = sorted({record.reason for record in fallbacks})
            warnings.warn(
                f"vectorized engine fell back to the fast engine for "
                f"{len(fallbacks)} of {trials} trials of cell "
                f"(algorithm={meta[0][0]!r}, n={n}): {'; '.join(reasons)}",
                EngineFallbackWarning,
                stacklevel=2,
            )
    else:
        fallbacks = ()
        results = []
        for trial in range(trials):
            algorithm, knowledge, source, horizon, seed = prepare(trial)
            record(algorithm, horizon, seed)
            results.append(
                executor_cls(
                    nodes, sink, algorithm, knowledge=knowledge,
                    capture_opt=capture_opt,
                ).run(source, max_interactions=horizon)
            )

    # Fallen-back trials are tagged in ``extra`` (an equality-relevant field,
    # but only set on trials that actually downgraded, so zero-fallback cells
    # stay byte-identical across engines; campaign shards ignore ``extra``
    # entirely).
    reason_of = {record.position: record.reason for record in fallbacks}
    return [
        TrialMetrics.from_result(
            result,
            n=n,
            seed=seed,
            algorithm=name,
            horizon=horizon,
            extra=(
                {"engine_fallback": reason_of[trial]}
                if trial in reason_of
                else None
            ),
        )
        for trial, (result, (name, horizon, seed)) in enumerate(
            zip(results, meta)
        )
    ]


def sweep_adversary_batched(
    algorithm_factory: AlgorithmFactory,
    ns: Sequence[int],
    trials: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
    sink: NodeId = 0,
    engine: str = "fast",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    block_size: Optional[int] = None,
    capture_opt: bool = False,
) -> SweepResult:
    """Run an ``n`` sweep with one engine invocation per ``(algorithm, n)`` cell.

    Produces the same :class:`~repro.sim.runner.SweepResult` as
    :func:`repro.sim.runner.sweep_random_adversary` (serial) and
    :func:`repro.sim.parallel.sweep_random_adversary` (multi-process), trial
    for trial — only the execution strategy differs.

    Raises:
        ValueError: if the sweep parameters, ``engine`` or ``adversary`` are
            invalid.
    """
    validate_sweep_parameters(ns, trials)
    resolve_engine(engine)
    resolve_adversary_family(adversary)
    sample_algorithm = algorithm_factory(int(ns[0]))
    result = SweepResult(algorithm=sample_algorithm.name)
    for n in ns:
        metrics = run_sweep_cell(
            algorithm_factory,
            int(n),
            trials,
            master_seed=master_seed,
            experiment=experiment,
            horizon_fn=horizon_fn,
            sink=sink,
            engine=engine,
            adversary=adversary,
            adversary_params=adversary_params,
            block_size=block_size,
            capture_opt=capture_opt,
        )
        result.points.append(
            SweepPoint(n=int(n), algorithm=result.algorithm, trials=metrics)
        )
    return result

"""Result containers: tables that render to markdown, CSV and plain dicts.

Experiments return :class:`ResultTable` objects so that the benches, the CLI
and EXPERIMENTS.md all consume the same representation.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List


def _format_cell(value: Any) -> str:
    """Render a cell compactly (floats with 3 significant decimals)."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


@dataclass
class ResultTable:
    """A simple column-ordered table of experiment results.

    Attributes:
        title: table title (used as a section heading in reports).
        columns: ordered column names.
        rows: list of row dicts; missing cells render as empty strings.
        notes: free-form annotations (e.g. fitted exponents, verdicts).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        """Append a row given as keyword arguments."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(dict(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form note displayed under the table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table with title and notes."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self.rows:
            cells = [_format_cell(row.get(column, "")) for column in self.columns]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (without the title and notes)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column, "") for column in self.columns})
        return buffer.getvalue()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict representation (JSON serialisable)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON representation."""
        return json.dumps(self.to_dict(), indent=indent, default=str)


@dataclass
class ExperimentReport:
    """The full outcome of one experiment: tables plus a pass/fail verdict.

    Attributes:
        experiment_id: identifier from DESIGN.md (e.g. ``"E11"``).
        claim: one-line statement of the paper claim being reproduced.
        tables: result tables.
        verdict: True when the measured behaviour is consistent with the
            claim, False otherwise (benches assert on this).
        details: free-form key/value details (fitted exponents, thresholds).
    """

    experiment_id: str
    claim: str
    tables: List[ResultTable]
    verdict: bool
    details: Dict[str, Any] = field(default_factory=dict)

    def to_markdown(self) -> str:
        """Render the whole report as markdown."""
        lines = [f"## {self.experiment_id} — {self.claim}", ""]
        lines.append(f"**Verdict:** {'reproduced' if self.verdict else 'NOT reproduced'}")
        if self.details:
            lines.append("")
            for key, value in self.details.items():
                lines.append(f"- {key}: {_format_cell(value)}")
        for table in self.tables:
            lines.append("")
            lines.append(table.to_markdown())
        return "\n".join(lines)

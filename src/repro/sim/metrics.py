"""Per-trial metrics extracted from executions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.execution import ExecutionResult


@dataclass(frozen=True)
class TrialMetrics:
    """Metrics of a single trial (one execution of one algorithm).

    Attributes:
        n: number of nodes.
        seed: RNG seed of the trial.
        algorithm: algorithm name.
        terminated: whether the sink ended up as the only data owner.
        duration: interactions consumed until termination (inf if not
            terminated within the horizon).
        transmissions: number of data transmissions performed.
        horizon: the interaction budget the trial was given.
        sink_coverage: number of origins aggregated at the sink at the end.
        extra: experiment-specific values (e.g. tau, cost, meeting counts).
    """

    n: int
    seed: int
    algorithm: str
    terminated: bool
    duration: float
    transmissions: int
    horizon: int
    sink_coverage: int
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        result: ExecutionResult,
        n: int,
        seed: int,
        algorithm: str,
        horizon: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "TrialMetrics":
        """Build metrics from an :class:`ExecutionResult`."""
        duration = float(result.duration) if result.terminated else math.inf
        return cls(
            n=n,
            seed=seed,
            algorithm=algorithm,
            terminated=result.terminated,
            duration=duration,
            transmissions=result.transmission_count,
            horizon=horizon,
            sink_coverage=result.sink_coverage,
            extra=dict(extra or {}),
        )


def durations(metrics: Sequence[TrialMetrics]) -> List[float]:
    """Durations of the terminated trials only."""
    return [m.duration for m in metrics if m.terminated]


def termination_rate(metrics: Sequence[TrialMetrics]) -> float:
    """Fraction of trials that terminated within their horizon."""
    if not metrics:
        raise ValueError("no trials")
    return sum(1 for m in metrics if m.terminated) / len(metrics)


def mean_duration(metrics: Sequence[TrialMetrics]) -> float:
    """Mean duration over terminated trials (inf if none terminated)."""
    finished = durations(metrics)
    if not finished:
        return math.inf
    return sum(finished) / len(finished)

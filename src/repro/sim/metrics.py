"""Per-trial metrics extracted from executions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.execution import ExecutionResult
from ..ratio.semantics import competitive_ratio as _competitive_ratio


@dataclass(frozen=True)
class TrialMetrics:
    """Metrics of a single trial (one execution of one algorithm).

    Attributes:
        n: number of nodes.
        seed: RNG seed of the trial.
        algorithm: algorithm name.
        terminated: whether the sink ended up as the only data owner.
        duration: interactions consumed until termination (inf if not
            terminated within the horizon).
        transmissions: number of data transmissions performed.
        horizon: the interaction budget the trial was given.
        sink_coverage: number of origins aggregated at the sink at the end.
        opt_cost: duration of the optimal offline convergecast on the
            committed window the trial consumed (``math.inf`` when the
            offline baseline cannot complete either); None when the trial
            ran without offline-baseline capture.
        competitive_ratio: ``duration / opt_cost`` under the conventions of
            :mod:`repro.ratio.semantics` (``>= 1`` exactly whenever finite,
            ``inf`` for non-terminated trials).  None either when the trial
            ran without capture (``opt_cost`` is None too) or when the
            captured baseline is unreachable (``opt_cost`` is ``inf``) —
            NaN is deliberately kept out of metrics so that equality
            comparisons between trials stay exact.
        extra: experiment-specific values (e.g. tau, cost, meeting counts).
    """

    n: int
    seed: int
    algorithm: str
    terminated: bool
    duration: float
    transmissions: int
    horizon: int
    sink_coverage: int
    opt_cost: Optional[float] = None
    competitive_ratio: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        result: ExecutionResult,
        n: int,
        seed: int,
        algorithm: str,
        horizon: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "TrialMetrics":
        """Build metrics from an :class:`ExecutionResult`.

        When the execution captured the offline baseline
        (``capture_opt=True`` engines), the per-trial ``opt_cost`` and
        ``competitive_ratio`` are derived here through
        :func:`repro.ratio.semantics.competitive_ratio` — the single
        definition every layer shares.
        """
        duration = float(result.duration) if result.terminated else math.inf
        opt_cost = None if result.opt_cost is None else float(result.opt_cost)
        ratio: Optional[float] = None
        if opt_cost is not None:
            value = _competitive_ratio(duration, opt_cost)
            ratio = None if math.isnan(value) else value
        return cls(
            n=n,
            seed=seed,
            algorithm=algorithm,
            terminated=result.terminated,
            duration=duration,
            transmissions=result.transmission_count,
            horizon=horizon,
            sink_coverage=result.sink_coverage,
            opt_cost=opt_cost,
            competitive_ratio=ratio,
            extra=dict(extra or {}),
        )


def durations(metrics: Sequence[TrialMetrics]) -> List[float]:
    """Durations of the terminated trials only."""
    return [m.duration for m in metrics if m.terminated]


def termination_rate(metrics: Sequence[TrialMetrics]) -> float:
    """Fraction of trials that terminated within their horizon."""
    if not metrics:
        raise ValueError("no trials")
    return sum(1 for m in metrics if m.terminated) / len(metrics)


def mean_duration(metrics: Sequence[TrialMetrics]) -> float:
    """Mean duration over terminated trials (inf if none terminated)."""
    finished = durations(metrics)
    if not finished:
        return math.inf
    return sum(finished) / len(finished)


def finite_ratios(metrics: Sequence[TrialMetrics]) -> List[float]:
    """The finite competitive ratios of a trial set (captured trials only)."""
    return [
        m.competitive_ratio
        for m in metrics
        if m.competitive_ratio is not None and math.isfinite(m.competitive_ratio)
    ]


def has_ratio_capture(metrics: Sequence[TrialMetrics]) -> bool:
    """True when at least one trial carries an offline-baseline capture."""
    return any(m.opt_cost is not None for m in metrics)

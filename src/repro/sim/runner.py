"""Trial and sweep runners for the randomized-adversary experiments.

The runner knows how to assemble, for any registered algorithm, the
knowledge oracles it requires on top of the randomized adversary (Section 4
of the paper), run one trial, and aggregate trials over an ``n`` sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..adversaries.committed import CommittedBlockAdversary
from ..adversaries.factory import (
    ADVERSARY_FAMILIES,
    make_adversary,
    resolve_adversary_family,
)
from ..core.algorithm import (
    DODAAlgorithm,
    KNOWLEDGE_FULL,
    KNOWLEDGE_FUTURE,
    KNOWLEDGE_MEET_TIME,
    KNOWLEDGE_UNDERLYING_GRAPH,
)
from ..core.data import NodeId
from ..core.execution import ExecutionResult, Executor
from ..core.fast_execution import FastExecutor
from ..core.interaction import InteractionSequence
from ..core.vector_execution import VectorizedExecutor
from ..knowledge import (
    FullKnowledge,
    FutureKnowledge,
    KnowledgeBundle,
    MeetTimeKnowledge,
    UnderlyingGraphKnowledge,
)
from ..analysis.statistics import SampleSummary, summarize_sample
from .metrics import TrialMetrics, mean_duration, termination_rate
from .results import ResultTable
from .seeding import derive_seed

AlgorithmFactory = Callable[[int], DODAAlgorithm]

#: The three interchangeable execution engines.  ``reference`` is the
#: semantics oracle (:class:`~repro.core.execution.Executor`); ``fast`` is
#: the per-trial optimised engine (:class:`~repro.core.fast_execution.
#: FastExecutor`); ``vectorized`` is the trial-vectorized engine
#: (:class:`~repro.core.vector_execution.VectorizedExecutor`), which runs
#: whole sweep cells as numpy struct-of-arrays and falls back to the fast
#: engine per trial whenever an algorithm has no decision kernel.  All
#: three produce identical results seed for seed.
ENGINES = {
    "reference": Executor,
    "fast": FastExecutor,
    "vectorized": VectorizedExecutor,
}


def resolve_engine(engine: str):
    """Map an engine name to its executor class.

    Raises:
        ValueError: if ``engine`` is not a known engine name.
    """
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; available: {sorted(ENGINES)}"
        ) from None


def default_horizon(algorithm: DODAAlgorithm, n: int, safety: float = 8.0) -> int:
    """A horizon comfortably above the algorithm's expected termination time.

    Uses the paper's expectations: ``n² log n`` for Waiting-like algorithms,
    ``n²`` for Gathering, ``n^{3/2}√log n`` for Waiting Greedy and
    ``n log n`` for the full/future knowledge algorithms; everything is then
    multiplied by a safety factor so that non-termination within the horizon
    is a strong signal rather than an artefact.
    """
    log_n = max(1.0, math.log(n))
    by_name = {
        "waiting": n * n * log_n,
        "gathering": n * n,
        "coin_flip_gathering": 2 * n * n,
        "random_receiver": n * n * log_n,
        "waiting_greedy": n ** 1.5 * math.sqrt(log_n) + n * n,
        "full_knowledge": n * log_n,
        "future_broadcast": n * log_n,
        "spanning_tree": n * n * log_n,
    }
    base = by_name.get(algorithm.name, n * n * log_n)
    return int(math.ceil(safety * base)) + 16


def build_knowledge_for_random_run(
    algorithm: DODAAlgorithm,
    adversary: CommittedBlockAdversary,
    nodes: Sequence[NodeId],
    sink: NodeId,
    horizon: int,
) -> Tuple[Optional[KnowledgeBundle], Optional[InteractionSequence]]:
    """Assemble the oracles the algorithm needs on top of the adversary.

    Works for any committed adversary (uniform, non-uniform, mobility):
    ``meetTime`` queries go to the adversary's ``next_meeting`` and the
    ``future``/``full_knowledge`` oracles replay its committed prefix.
    Returns the knowledge bundle (or None) and, when the algorithm requires
    a committed finite sequence (``future`` or ``full_knowledge``), the
    pre-drawn sequence the executor must replay instead of querying the
    adversary lazily.
    """
    required = set(algorithm.requires)
    if not required:
        return None, None
    oracles: List[Any] = []
    committed: Optional[InteractionSequence] = None
    if KNOWLEDGE_FUTURE in required or KNOWLEDGE_FULL in required:
        committed = adversary.committed_prefix(horizon)
    if KNOWLEDGE_MEET_TIME in required:
        source = committed if committed is not None else adversary
        oracles.append(
            MeetTimeKnowledge(source, sink, horizon=horizon, strict=False)
        )
    if KNOWLEDGE_FUTURE in required:
        assert committed is not None
        oracles.append(FutureKnowledge(committed))
    if KNOWLEDGE_FULL in required:
        assert committed is not None
        oracles.append(FullKnowledge(committed))
    if KNOWLEDGE_UNDERLYING_GRAPH in required:
        # Every named adversary family can eventually produce any pair
        # (uniform/non-uniform draws, waypoint proximity, community mixture),
        # so the footprint is the complete graph.
        from itertools import combinations

        oracles.append(
            UnderlyingGraphKnowledge(nodes, edges=list(combinations(nodes, 2)))
        )
    return KnowledgeBundle(*oracles), committed


def build_trial_adversary(
    adversary: str,
    nodes: Sequence[NodeId],
    seed: int,
    horizon: int,
    sink: NodeId,
    adversary_params: Optional[Dict[str, Any]] = None,
) -> CommittedBlockAdversary:
    """The committed adversary of one trial, with the standard safety margin."""
    return make_adversary(
        adversary,
        nodes,
        seed=seed,
        max_horizon=max(horizon * 2, horizon + 1024),
        sink=sink,
        params=adversary_params,
    )


def execute_random_trial(
    algorithm: DODAAlgorithm,
    n: int,
    seed: int,
    horizon: Optional[int] = None,
    sink: NodeId = 0,
    engine: str = "reference",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    capture_opt: bool = False,
) -> Tuple[ExecutionResult, int]:
    """Run one committed-adversary trial and return the raw execution result.

    This is the differential-testing entry point: for a given ``(algorithm,
    n, seed, horizon, adversary)`` the ``reference`` and ``fast`` engines
    must return equal :class:`~repro.core.execution.ExecutionResult`
    objects, including the transmission log.  ``adversary`` names a family
    from :data:`repro.adversaries.factory.ADVERSARY_FAMILIES` (uniform,
    zipf, hub, waypoint, community).  ``capture_opt=True`` additionally
    evaluates the offline-optimum baseline on the committed window the
    trial consumed (``ExecutionResult.opt_cost``), identically on every
    engine.  Returns ``(result, horizon)``.
    """
    executor_cls = resolve_engine(engine)
    nodes = list(range(n))
    if sink not in nodes:
        raise ValueError("sink must be one of the nodes 0..n-1")
    if horizon is None:
        horizon = default_horizon(algorithm, n)
    adversary_obj = build_trial_adversary(
        adversary, nodes, seed, horizon, sink, adversary_params
    )
    knowledge, committed = build_knowledge_for_random_run(
        algorithm, adversary_obj, nodes, sink, horizon
    )
    executor = executor_cls(
        nodes, sink, algorithm, knowledge=knowledge, capture_opt=capture_opt
    )
    if committed is not None:
        result = executor.run(committed, max_interactions=horizon)
    else:
        result = executor.run(adversary_obj, max_interactions=horizon)
    return result, horizon


def run_random_trial(
    algorithm: DODAAlgorithm,
    n: int,
    seed: int,
    horizon: Optional[int] = None,
    sink: NodeId = 0,
    extra: Optional[Dict[str, Any]] = None,
    engine: str = "reference",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    capture_opt: bool = False,
) -> TrialMetrics:
    """Run one trial of ``algorithm`` against a committed adversary.

    Args:
        algorithm: a fresh or reusable algorithm instance.
        n: number of nodes (identifiers ``0..n-1``; node 0 is the sink by
            default).
        seed: RNG seed for the adversary.
        horizon: interaction budget; defaults to :func:`default_horizon`.
        sink: sink node identifier.
        extra: extra key/values recorded in the metrics.
        engine: ``"reference"`` or ``"fast"``; both produce identical
            metrics, the fast engine just gets there sooner.
        adversary: adversary family name (default the paper's uniform
            randomized adversary).
        adversary_params: family-specific parameter overrides.
        capture_opt: also evaluate the offline-optimum baseline, filling
            the metrics' ``opt_cost`` and ``competitive_ratio`` fields
            (identical values on every engine and execution path).
    """
    result, horizon = execute_random_trial(
        algorithm, n, seed, horizon=horizon, sink=sink, engine=engine,
        adversary=adversary, adversary_params=adversary_params,
        capture_opt=capture_opt,
    )
    return TrialMetrics.from_result(
        result, n=n, seed=seed, algorithm=algorithm.name, horizon=horizon, extra=extra
    )


@dataclass
class SweepPoint:
    """Aggregated trials of one algorithm at one value of ``n``."""

    n: int
    algorithm: str
    trials: List[TrialMetrics]

    @property
    def termination_rate(self) -> float:
        return termination_rate(self.trials)

    @property
    def mean_duration(self) -> float:
        return mean_duration(self.trials)

    def summary(self) -> Optional[SampleSummary]:
        """Summary of terminated-trial durations (None if none terminated)."""
        finished = [t.duration for t in self.trials if t.terminated]
        if not finished:
            return None
        return summarize_sample(finished)

    def ratio_summary(self) -> Optional[SampleSummary]:
        """Summary of finite competitive ratios (None when none captured)."""
        from .metrics import finite_ratios

        ratios = finite_ratios(self.trials)
        if not ratios:
            return None
        return summarize_sample(ratios)


@dataclass
class SweepResult:
    """All points of an ``n`` sweep for one algorithm."""

    algorithm: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def ns(self) -> List[int]:
        return [point.n for point in self.points]

    @property
    def mean_durations(self) -> List[float]:
        return [point.mean_duration for point in self.points]

    def to_table(self, title: Optional[str] = None) -> ResultTable:
        """Render the sweep as a result table.

        When the sweep ran with offline-baseline capture (``--ratio``),
        per-``n`` competitive-ratio columns (``mean_ratio``,
        ``median_ratio``, ``p90_ratio``) are appended; sweeps without
        capture render exactly as before.  When any trial carries an
        ``extra["engine_fallback"]`` tag (a vectorized cell that routed
        trials to the fallback engine), a ``fallbacks`` column is
        appended so downgrades are visible in the table itself — without
        it, a ``--engine vectorized`` sweep whose cells silently fell
        back printed nothing distinguishable from a fully vectorized
        run.
        """
        from .metrics import has_ratio_capture

        with_ratio = any(has_ratio_capture(p.trials) for p in self.points)
        fallbacks_of = {
            point.n: sum(
                1
                for trial_metrics in point.trials
                if "engine_fallback" in trial_metrics.extra
            )
            for point in self.points
        }
        with_fallbacks = any(count for count in fallbacks_of.values())
        columns = ["n", "trials", "terminated", "mean", "std", "median", "p90"]
        if with_ratio:
            columns += ["mean_ratio", "median_ratio", "p90_ratio"]
        if with_fallbacks:
            columns += ["fallbacks"]
        table = ResultTable(
            title=title or f"{self.algorithm}: interactions to termination",
            columns=columns,
        )
        for point in self.points:
            summary = point.summary()
            row = dict(
                n=point.n,
                trials=len(point.trials),
                terminated=point.termination_rate,
                mean=summary.mean if summary else math.inf,
                std=summary.std if summary else math.inf,
                median=summary.median if summary else math.inf,
                p90=summary.p90 if summary else math.inf,
            )
            if with_ratio:
                ratios = point.ratio_summary()
                row.update(
                    mean_ratio=ratios.mean if ratios else math.inf,
                    median_ratio=ratios.median if ratios else math.inf,
                    p90_ratio=ratios.p90 if ratios else math.inf,
                )
            if with_fallbacks:
                row.update(fallbacks=fallbacks_of[point.n])
            table.add_row(**row)
        return table


def sweep_random_adversary(
    algorithm_factory: AlgorithmFactory,
    ns: Sequence[int],
    trials: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
    sink: NodeId = 0,
    engine: str = "reference",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    capture_opt: bool = False,
) -> SweepResult:
    """Run ``trials`` independent trials per ``n`` against a committed adversary.

    Args:
        algorithm_factory: callable mapping ``n`` to a fresh algorithm
            instance (fresh instances avoid any state leak between trials).
        ns: the values of ``n`` to sweep.
        trials: number of independent trials per ``n``.
        master_seed: master seed from which all trial seeds are derived.
        experiment: experiment name mixed into seed derivation.
        horizon_fn: optional override of :func:`default_horizon`.
        sink: sink node identifier.
        engine: execution engine, ``"reference"`` or ``"fast"``.
        adversary: adversary family name (uniform, zipf, hub, waypoint,
            community); the default is the paper's uniform randomized
            adversary.
        adversary_params: family-specific parameter overrides.

    Raises:
        ValueError: if ``ns`` is empty, ``trials < 1``, ``engine`` or
            ``adversary`` is unknown.

    For multi-process sweeps see
    :func:`repro.sim.parallel.sweep_random_adversary`; for whole-cell
    batched execution see :func:`repro.sim.batch.sweep_adversary_batched`.
    Both reproduce this function's output bit for bit.
    """
    validate_sweep_parameters(ns, trials)
    resolve_engine(engine)
    resolve_adversary_family(adversary)
    sample_algorithm = algorithm_factory(int(ns[0]))
    result = SweepResult(algorithm=sample_algorithm.name)
    for n in ns:
        metrics: List[TrialMetrics] = []
        for trial in range(trials):
            metrics.append(
                run_sweep_trial(
                    algorithm_factory,
                    int(n),
                    trial,
                    master_seed=master_seed,
                    experiment=experiment,
                    horizon_fn=horizon_fn,
                    sink=sink,
                    engine=engine,
                    adversary=adversary,
                    adversary_params=adversary_params,
                    capture_opt=capture_opt,
                )
            )
        result.points.append(
            SweepPoint(n=int(n), algorithm=result.algorithm, trials=metrics)
        )
    return result


def derive_sweep_trial(
    algorithm_factory: AlgorithmFactory,
    n: int,
    trial: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
) -> Tuple[DODAAlgorithm, int, int]:
    """Derive one sweep trial's ``(algorithm, seed, horizon)``.

    This derivation is the determinism contract of every sweep runner: the
    serial, parallel and batched paths all call it for every task, which is
    what makes ``workers > 1`` and whole-cell batching reproduce the serial
    sweep exactly.
    """
    algorithm = algorithm_factory(n)
    seed = derive_seed(master_seed, experiment, algorithm.name, n, trial)
    horizon = (
        horizon_fn(algorithm, n) if horizon_fn else default_horizon(algorithm, n)
    )
    return algorithm, seed, horizon


def run_sweep_trial(
    algorithm_factory: AlgorithmFactory,
    n: int,
    trial: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
    sink: NodeId = 0,
    engine: str = "reference",
    adversary: str = "uniform",
    adversary_params: Optional[Dict[str, Any]] = None,
    capture_opt: bool = False,
) -> TrialMetrics:
    """Run the single sweep trial ``(n, trial)`` with derived-seed determinism."""
    algorithm, seed, horizon = derive_sweep_trial(
        algorithm_factory, n, trial, master_seed=master_seed,
        experiment=experiment, horizon_fn=horizon_fn,
    )
    return run_random_trial(
        algorithm, n, seed, horizon=horizon, sink=sink, engine=engine,
        adversary=adversary, adversary_params=adversary_params,
        capture_opt=capture_opt,
    )


def validate_sweep_parameters(ns: Sequence[int], trials: int) -> None:
    """Reject empty or nonsensical sweep configurations with a clear error.

    Raises:
        ValueError: if ``ns`` is empty, contains ``n < 2``, or ``trials < 1``
            (previously an empty ``ns`` surfaced as a bare ``IndexError``
            deep in the runner, and ``n < 2`` as an adversary construction
            error mid-sweep).
    """
    if len(ns) == 0:
        raise ValueError("ns must contain at least one value of n to sweep")
    for n in ns:
        if int(n) < 2:
            raise ValueError(f"every n must be >= 2 (a DODA instance needs a sink and at least one source), got {n}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")

"""Multi-process sweep runner for the randomized-adversary experiments.

The sweep fan-out is embarrassingly parallel: every trial derives its own
seed from ``(master_seed, experiment, algorithm, n, trial)`` via
:func:`~repro.sim.seeding.derive_seed` and shares no RNG state with any
other trial.  This module farms work over a ``multiprocessing`` pool while
preserving that derivation, so a parallel sweep reproduces the serial
:func:`repro.sim.runner.sweep_random_adversary` bit for bit — same
:class:`~repro.sim.metrics.TrialMetrics`, same
:class:`~repro.sim.results.ResultTable` — for any ``workers`` count.

Two task granularities are supported:

* **per-trial** (default): the ``ns x trials`` grid is distributed one
  trial at a time — the natural unit for the per-trial engines;
* **per-cell** (``batched=True``): each ``n`` of the sweep becomes one
  task executed through :func:`repro.sim.batch.run_sweep_cell`, so every
  worker runs whole cells through a batch-capable engine — *workers ×
  vectorized cells* is the intended scale-out shape of the trial-vectorized
  engine.

For grids whose cells differ in more than ``n`` (different algorithms and
adversary families per cell, i.e. a campaign), :func:`run_sweep_cells`
maps arbitrary per-cell ``run_sweep_cell`` configurations over the same
pool, yielding results cell by cell so callers can checkpoint as they go.

Workers are started with the ``fork`` start method (the configuration,
including lambda algorithm factories, is inherited by the child processes
rather than pickled); on platforms without ``fork`` the sweep transparently
falls back to the serial runner.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..core.algorithm import DODAAlgorithm
from ..core.data import NodeId
from ..obs import (
    CollectorSnapshot,
    RecordingCollector,
    current_collector,
    use_collector,
)
from ..obs import now as _now
from .metrics import TrialMetrics
from .runner import (
    AlgorithmFactory,
    SweepPoint,
    SweepResult,
    resolve_adversary_family,
    resolve_engine,
    run_sweep_trial,
    sweep_random_adversary as _serial_sweep,
    validate_sweep_parameters,
)

#: Per-worker sweep configuration, inherited through ``fork`` (never
#: pickled, so lambda factories and closures work).
_WORKER_CONFIG: dict = {}


def _init_worker(config: dict) -> None:
    """Install the sweep configuration in a freshly forked worker."""
    _WORKER_CONFIG.clear()
    _WORKER_CONFIG.update(config)


def _with_worker_collector(fn: Callable[[], object]):
    """Run ``fn`` under a fresh recording collector when tracing is on.

    Forked workers inherit the parent's collector object, but recordings
    made into it die with the child process — so when the inherited
    collector is enabled, the worker records into a fresh
    :class:`~repro.obs.RecordingCollector` and ships the picklable
    snapshot back for the parent to merge.  Returns ``(result,
    snapshot_or_None)``.
    """
    if not current_collector().enabled:
        return fn(), None
    worker_collector = RecordingCollector()
    with use_collector(worker_collector):
        result = fn()
    return result, worker_collector.snapshot()


def _merge_snapshots(
    snapshots: Sequence[Optional[CollectorSnapshot]],
) -> None:
    """Fold worker trace snapshots into the parent's collector, if any."""
    collector = current_collector()
    if not collector.enabled:
        return
    merge = getattr(collector, "merge", None)
    if merge is None:
        return
    for snapshot in snapshots:
        if snapshot is not None:
            merge(snapshot)


def _run_task(
    task: Tuple[int, int]
) -> Tuple[TrialMetrics, Optional[CollectorSnapshot]]:
    """Run one ``(n, trial)`` grid cell inside a worker process."""
    n, trial = task
    config = _WORKER_CONFIG
    return _with_worker_collector(
        lambda: run_sweep_trial(
            config["factory"],
            n,
            trial,
            master_seed=config["master_seed"],
            experiment=config["experiment"],
            horizon_fn=config["horizon_fn"],
            sink=config["sink"],
            engine=config["engine"],
            adversary=config["adversary"],
            adversary_params=config["adversary_params"],
            capture_opt=config["capture_opt"],
        )
    )


def _run_cell_task(
    n: int,
) -> Tuple[List[TrialMetrics], Optional[CollectorSnapshot]]:
    """Run one whole sweep cell (all trials of one ``n``) inside a worker."""
    from .batch import run_sweep_cell

    config = _WORKER_CONFIG
    return _with_worker_collector(
        lambda: run_sweep_cell(
            config["factory"],
            n,
            config["trials"],
            master_seed=config["master_seed"],
            experiment=config["experiment"],
            horizon_fn=config["horizon_fn"],
            sink=config["sink"],
            engine=config["engine"],
            adversary=config["adversary"],
            adversary_params=config["adversary_params"],
            block_size=config["block_size"],
            capture_opt=config["capture_opt"],
        )
    )


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or None when unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _run_hetero_cell_task(
    index: int,
) -> Tuple[List[TrialMetrics], float, Optional[CollectorSnapshot]]:
    """Run one heterogeneous cell (by task index) inside a worker process.

    Returns ``(metrics, elapsed_seconds, trace_snapshot)``; the elapsed
    time is measured around the cell's own execution, so it stays accurate
    when several cells run concurrently, and the snapshot carries the
    worker's spans back to the parent collector (None when tracing is
    off).
    """
    from .batch import run_sweep_cell

    kwargs = _WORKER_CONFIG["cells"][index]
    start = _now()
    (metrics, snapshot) = _with_worker_collector(
        lambda: run_sweep_cell(**kwargs)
    )
    return metrics, _now() - start, snapshot


def run_sweep_cells(
    cell_kwargs: Sequence[dict], workers: int = 1, with_timing: bool = False
) -> "Iterator":
    """Run *heterogeneous* sweep cells, optionally over a process pool.

    ``cell_kwargs`` is a sequence of keyword-argument dicts for
    :func:`repro.sim.batch.run_sweep_cell` — unlike the sweep entry points
    above, each cell may name a different algorithm factory and adversary
    family, which is exactly the shape of a campaign grid
    (:mod:`repro.campaign`).  Results are yielded **in task order as each
    cell completes** (``imap`` under the hood), so a caller can checkpoint
    cell by cell; an interrupt mid-iteration loses only cells not yet
    yielded.  Per-cell results are identical for every ``workers`` value
    (each cell re-derives its trials from seeds alone).

    Yields per-cell ``List[TrialMetrics]``, or ``(metrics,
    elapsed_seconds)`` pairs when ``with_timing`` is true — the elapsed
    time is measured where the cell actually ran, so it is meaningful
    even when cells execute concurrently.

    Raises:
        ValueError: if ``workers < 1`` (raised at call time, before any
            cell runs — the iterator itself never raises it).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return _iter_sweep_cells(list(cell_kwargs), workers, with_timing)


def _iter_sweep_cells(
    cell_kwargs: List[dict], workers: int, with_timing: bool
) -> "Iterator":
    from .batch import run_sweep_cell

    context = _fork_context()
    if workers == 1 or context is None or len(cell_kwargs) <= 1:
        for kwargs in cell_kwargs:
            start = _now()
            metrics = run_sweep_cell(**kwargs)
            elapsed = _now() - start
            yield (metrics, elapsed) if with_timing else metrics
        return
    config = {"cells": cell_kwargs}
    processes = min(workers, len(cell_kwargs))
    with context.Pool(
        processes=processes, initializer=_init_worker, initargs=(config,)
    ) as pool:
        for metrics, elapsed, snapshot in pool.imap(
            _run_hetero_cell_task, range(len(cell_kwargs)), 1
        ):
            # Merge before yielding so a caller that checkpoints cell by
            # cell sees the worker's spans as soon as the cell lands.
            _merge_snapshots((snapshot,))
            yield (metrics, elapsed) if with_timing else metrics


def sweep_random_adversary(
    algorithm_factory: AlgorithmFactory,
    ns: Sequence[int],
    trials: int,
    master_seed: int = 0,
    experiment: str = "sweep",
    horizon_fn: Optional[Callable[[DODAAlgorithm, int], int]] = None,
    sink: NodeId = 0,
    engine: str = "reference",
    workers: int = 1,
    adversary: str = "uniform",
    adversary_params: Optional[dict] = None,
    batched: bool = False,
    block_size: Optional[int] = None,
    capture_opt: bool = False,
) -> SweepResult:
    """Run a committed-adversary sweep, optionally across worker processes.

    Identical to :func:`repro.sim.runner.sweep_random_adversary` plus the
    ``workers`` / ``batched`` parameters.  ``workers <= 1`` (or a platform
    without the ``fork`` start method) runs serially; any other value
    distributes work over a process pool.  ``batched=True`` switches the
    task granularity from single trials to whole sweep cells executed
    through :func:`repro.sim.batch.run_sweep_cell` (one batch-capable
    engine invocation per ``n`` — the *workers × vectorized cells* shape),
    serially when ``workers == 1``.  Results are deterministic and
    independent of ``workers``/``batched`` for every adversary family
    (each worker re-derives the trial's committed future from its seed
    alone).

    Raises:
        ValueError: if ``ns`` is empty, ``trials < 1``, ``workers < 1``,
            or ``engine`` / ``adversary`` is unknown.
    """
    validate_sweep_parameters(ns, trials)
    resolve_engine(engine)
    resolve_adversary_family(adversary)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    context = _fork_context()
    if workers == 1 or context is None:
        if batched:
            from .batch import sweep_adversary_batched

            return sweep_adversary_batched(
                algorithm_factory,
                ns,
                trials,
                master_seed=master_seed,
                experiment=experiment,
                horizon_fn=horizon_fn,
                sink=sink,
                engine=engine,
                adversary=adversary,
                adversary_params=adversary_params,
                block_size=block_size,
                capture_opt=capture_opt,
            )
        return _serial_sweep(
            algorithm_factory,
            ns,
            trials,
            master_seed=master_seed,
            experiment=experiment,
            horizon_fn=horizon_fn,
            sink=sink,
            engine=engine,
            adversary=adversary,
            adversary_params=adversary_params,
            capture_opt=capture_opt,
        )

    sample_algorithm = algorithm_factory(int(ns[0]))
    config = {
        "factory": algorithm_factory,
        "master_seed": master_seed,
        "experiment": experiment,
        "horizon_fn": horizon_fn,
        "sink": sink,
        "engine": engine,
        "adversary": adversary,
        "adversary_params": adversary_params,
        "trials": trials,
        "block_size": block_size,
        "capture_opt": capture_opt,
    }
    result = SweepResult(algorithm=sample_algorithm.name)
    if batched:
        cell_tasks = [int(n) for n in ns]
        processes = min(workers, len(cell_tasks))
        with context.Pool(
            processes=processes, initializer=_init_worker, initargs=(config,)
        ) as pool:
            outcomes = pool.map(_run_cell_task, cell_tasks, 1)
        _merge_snapshots([snapshot for _, snapshot in outcomes])
        cells: List[List[TrialMetrics]] = [metrics for metrics, _ in outcomes]
        for n, cell in zip(ns, cells):
            result.points.append(
                SweepPoint(n=int(n), algorithm=result.algorithm, trials=cell)
            )
        return result

    tasks = [(int(n), trial) for n in ns for trial in range(trials)]
    processes = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (processes * 4))
    with context.Pool(
        processes=processes, initializer=_init_worker, initargs=(config,)
    ) as pool:
        trial_outcomes = pool.map(_run_task, tasks, chunksize)
    _merge_snapshots([snapshot for _, snapshot in trial_outcomes])
    metrics: List[TrialMetrics] = [result for result, _ in trial_outcomes]

    for position, n in enumerate(ns):
        start = position * trials
        result.points.append(
            SweepPoint(
                n=int(n),
                algorithm=result.algorithm,
                trials=metrics[start : start + trials],
            )
        )
    return result

"""Per-theorem experiments (see DESIGN.md section 3 for the index)."""

from .comparison import algorithm_lineup, run_comparison
from .extensions import (
    run_nonuniform_adversary,
    run_offline_crosscheck,
    run_tau_tradeoff,
    run_tree_order_ablation,
    run_vectorized_engine_check,
)
from .impossibility import run_theorem1, run_theorem2, run_theorem3
from .knowledge import run_theorem4, run_theorem5, run_theorem6
from .randomized import (
    run_corollary1,
    run_cost_conversion,
    run_lemma1,
    run_theorem10,
    run_theorem11,
    run_theorem7,
    run_theorem8,
    run_theorem9_gathering,
    run_theorem9_waiting,
)
from .registry import EXPERIMENTS, ExperimentSpec, run_all, run_experiment
from .search import run_adversarial_search

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "algorithm_lineup",
    "run_adversarial_search",
    "run_all",
    "run_comparison",
    "run_corollary1",
    "run_cost_conversion",
    "run_experiment",
    "run_lemma1",
    "run_nonuniform_adversary",
    "run_offline_crosscheck",
    "run_tau_tradeoff",
    "run_theorem1",
    "run_vectorized_engine_check",
    "run_tree_order_ablation",
    "run_theorem10",
    "run_theorem11",
    "run_theorem2",
    "run_theorem3",
    "run_theorem4",
    "run_theorem5",
    "run_theorem6",
    "run_theorem7",
    "run_theorem8",
    "run_theorem9_gathering",
    "run_theorem9_waiting",
]

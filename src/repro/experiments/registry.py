"""Registry of all experiments, keyed by their DESIGN.md identifier."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sim.results import ExperimentReport
from .campaign import run_campaign_roundtrip
from .comparison import run_comparison
from .extensions import (
    run_nonuniform_adversary,
    run_offline_crosscheck,
    run_tau_tradeoff,
    run_tree_order_ablation,
    run_vectorized_engine_check,
)
from .impossibility import run_theorem1, run_theorem2, run_theorem3
from .knowledge import run_theorem4, run_theorem5, run_theorem6
from .mobility import run_mobility_adversaries, run_trace_replay
from .ratio import run_ratio_vs_n
from .search import run_adversarial_search
from .randomized import (
    run_corollary1,
    run_cost_conversion,
    run_lemma1,
    run_theorem10,
    run_theorem11,
    run_theorem7,
    run_theorem8,
    run_theorem9_gathering,
    run_theorem9_waiting,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: identifier, claim, and the callable."""

    experiment_id: str
    claim: str
    runner: Callable[..., ExperimentReport]


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("E1", "Theorem 1 (adaptive adversary, no knowledge)", run_theorem1),
        ExperimentSpec("E2", "Theorem 2 (oblivious adversary, randomized algorithms)", run_theorem2),
        ExperimentSpec("E3", "Theorem 3 (underlying graph knowledge insufficient)", run_theorem3),
        ExperimentSpec("E4", "Theorem 4 (recurrent interactions, finite unbounded cost)", run_theorem4),
        ExperimentSpec("E5", "Theorem 5 (tree footprint, optimal)", run_theorem5),
        ExperimentSpec("E6", "Theorem 6 (own future, cost <= n)", run_theorem6),
        ExperimentSpec("E7", "Theorem 7 (Ω(n²) lower bound)", run_theorem7),
        ExperimentSpec("E8", "Theorem 8 (full knowledge Θ(n log n))", run_theorem8),
        ExperimentSpec("E9", "Corollary 1 (future knowledge Θ(n log n))", run_corollary1),
        ExperimentSpec("E10", "Theorem 9 (Waiting O(n² log n))", run_theorem9_waiting),
        ExperimentSpec("E11", "Theorem 9 / Corollary 2 (Gathering O(n²), optimal)", run_theorem9_gathering),
        ExperimentSpec("E12", "Lemma 1 (sink meetings within n·f(n))", run_lemma1),
        ExperimentSpec("E13", "Theorem 10 / Corollary 3 (Waiting Greedy w.h.p. by tau)", run_theorem10),
        ExperimentSpec("E14", "Theorem 11 (Waiting Greedy optimal with meetTime)", run_theorem11),
        ExperimentSpec("E15", "Section 4 cost conversion (cost O(n/log n))", run_cost_conversion),
        ExperimentSpec("E16", "Algorithm comparison across n", run_comparison),
        ExperimentSpec("E17", "Ablation: offline optimum vs exhaustive search", run_offline_crosscheck),
        ExperimentSpec("E18", "Extension: non-uniform randomized adversary (Q3)", run_nonuniform_adversary),
        ExperimentSpec("E19", "Ablation: Waiting Greedy tau trade-off (Theorem 10)", run_tau_tradeoff),
        ExperimentSpec("E20", "Ablation: spanning-tree edge-order robustness", run_tree_order_ablation),
        ExperimentSpec("E21", "Extension: mobility adversaries (waypoint, community)", run_mobility_adversaries),
        ExperimentSpec("E22", "Extension: contact-trace replay (committed protocol)", run_trace_replay),
        ExperimentSpec("E23", "Extension: trial-vectorized engine equivalence (+ speedup)", run_vectorized_engine_check),
        ExperimentSpec("E24", "Campaign round trip (fresh run ≡ interrupted + resumed)", run_campaign_roundtrip),
        ExperimentSpec("E25", "Competitive ratio vs n (offline-optimum baseline, per algorithm × adversary)", run_ratio_vs_n),
        ExperimentSpec("E26", "Adversarial search beats equal-budget random sampling (+ exact corpus replay)", run_adversarial_search),
    )
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentReport:
    """Run one experiment by identifier (kwargs forwarded to its runner)."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return spec.runner(**kwargs)


def run_all(**kwargs) -> List[ExperimentReport]:
    """Run every experiment with default parameters, in identifier order."""
    reports: List[ExperimentReport] = []
    for experiment_id in sorted(EXPERIMENTS, key=_experiment_sort_key):
        reports.append(EXPERIMENTS[experiment_id].runner())
    return reports


def _experiment_sort_key(experiment_id: str) -> int:
    """Numeric ordering of identifiers like 'E7', 'E12'."""
    return int(experiment_id.lstrip("E"))

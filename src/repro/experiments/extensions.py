"""Extension and ablation experiments (E17–E20, E23).

These go beyond the paper's stated results, along the axes its own text
suggests:

* **E17 — offline-optimum cross-check (ablation of DESIGN.md decision 1).**
  The fast journey-based ``opt`` is compared against an exhaustive search on
  small random instances; they must agree exactly.
* **E18 — non-uniform randomized adversary (concluding remarks, Q3).**
  Reruns Gathering and Waiting under hub-skewed and Zipf-skewed interaction
  distributions.  The measured effect: making the *sink* more active speeds
  aggregation up (the n² bound's constant shrinks), making it less active
  slows it down — i.e. the uniform bounds are not robust to the scheduler's
  distribution, answering the paper's open question in the affirmative for
  the natural skews.
* **E19 — Waiting Greedy tau trade-off (the content of Theorem 10).**
  Sweeps the parameter ``f(n)`` in ``tau = max(n f(n), n² log n / f(n))``;
  the measured termination time must be minimised near the paper's optimal
  choice ``f(n) = sqrt(n log n)`` (Corollary 3).
* **E20 — spanning-tree edge-order ablation (Theorem 5 robustness).**
  On tree footprints, the algorithm must stay optimal (cost 1) regardless of
  the order in which the recurrent sequence presents the tree edges.
* **E23 — trial-vectorized engine equivalence.**  The struct-of-arrays
  :class:`~repro.core.vector_execution.VectorizedExecutor` must reproduce
  the reference executor's sweep metrics **exactly** — trial for trial,
  seed for seed — across the paper's algorithms and adversary families,
  while running the whole sweep cell as numpy arrays.  The report also
  records the measured wall-clock ratio (the engine's reason to exist).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from ..adversaries.nonuniform import (
    NonUniformRandomizedAdversary,
    hub_weights,
    zipf_weights,
)
from ..algorithms.gathering import Gathering
from ..algorithms.spanning_tree import SpanningTreeAggregation
from ..algorithms.waiting import Waiting
from ..algorithms.waiting_greedy import WaitingGreedy
from ..core.cost import cost_of_result
from ..core.execution import Executor
from ..graph.generators import (
    random_tree,
    sequence_with_footprint,
    tree_recurrent_sequence,
    uniform_random_sequence,
)
from ..knowledge import KnowledgeBundle, UnderlyingGraphKnowledge
from ..offline.brute_force import brute_force_opt
from ..offline.convergecast import opt as fast_opt
from ..sim.results import ExperimentReport, ResultTable
from ..sim.seeding import derive_seed


def run_offline_crosscheck(
    ns: Sequence[int] = (3, 4, 5, 6),
    sequences_per_n: int = 20,
    length: int = 40,
    master_seed: int = 0,
) -> ExperimentReport:
    """E17 — the fast offline optimum agrees with exhaustive search."""
    table = ResultTable(
        title="Offline optimum: journey-based opt vs exhaustive search",
        columns=["n", "instances", "agreements", "max_abs_difference"],
    )
    all_agree = True
    for n in ns:
        nodes = list(range(n))
        agreements = 0
        worst = 0.0
        for index in range(sequences_per_n):
            seed = derive_seed(master_seed, "crosscheck", n, index)
            sequence = uniform_random_sequence(nodes, length, seed=seed)
            fast = fast_opt(sequence, nodes, 0)
            brute = brute_force_opt(sequence, nodes, 0)
            if fast == brute or (math.isinf(fast) and math.isinf(brute)):
                agreements += 1
            else:
                all_agree = False
                worst = max(
                    worst,
                    abs((0 if math.isinf(fast) else fast) - (0 if math.isinf(brute) else brute)),
                )
        table.add_row(
            n=n,
            instances=sequences_per_n,
            agreements=agreements,
            max_abs_difference=worst,
        )
    return ExperimentReport(
        experiment_id="E17",
        claim="Ablation: the journey-based offline optimum equals the "
        "exhaustive-search optimum on every instance",
        tables=[table],
        verdict=all_agree,
        details={},
    )


def run_nonuniform_adversary(
    n: int = 40,
    trials: int = 10,
    hub_factor: float = 8.0,
    zipf_exponent: float = 1.0,
    master_seed: int = 0,
) -> ExperimentReport:
    """E18 — how the Section 4 bounds shift under non-uniform adversaries."""
    nodes = list(range(n))
    sink = 0
    scenarios: Dict[str, Optional[Dict]] = {
        "uniform": None,
        "active_sink_hub": hub_weights(nodes, hub=sink, hub_factor=hub_factor),
        "lazy_sink": hub_weights(nodes, hub=sink, hub_factor=1.0 / hub_factor),
        "zipf_activity": zipf_weights(nodes, exponent=zipf_exponent),
    }
    table = ResultTable(
        title="Non-uniform randomized adversary: mean interactions to termination",
        columns=["scenario", "gathering", "waiting", "gathering_vs_uniform"],
    )
    horizon = 64 * n * n
    means: Dict[str, Dict[str, float]] = {}
    for scenario, weights in scenarios.items():
        durations: Dict[str, List[float]] = {"gathering": [], "waiting": []}
        for trial in range(trials):
            seed = derive_seed(master_seed, "nonuniform", scenario, trial)
            for name, algorithm in (("gathering", Gathering()), ("waiting", Waiting())):
                adversary = NonUniformRandomizedAdversary(
                    nodes, weights=weights, seed=seed, max_horizon=horizon
                )
                executor = Executor(nodes, sink, algorithm)
                result = executor.run(adversary, max_interactions=horizon)
                durations[name].append(
                    result.duration if result.terminated else math.inf
                )
        means[scenario] = {
            name: (
                sum(d for d in values if not math.isinf(d))
                / max(1, sum(1 for d in values if not math.isinf(d)))
            )
            for name, values in durations.items()
        }
    for scenario in scenarios:
        table.add_row(
            scenario=scenario,
            gathering=means[scenario]["gathering"],
            waiting=means[scenario]["waiting"],
            gathering_vs_uniform=means[scenario]["gathering"]
            / means["uniform"]["gathering"],
        )
    table.add_note(
        "an active sink must speed aggregation up, a lazy sink must slow it "
        "down: the uniform-adversary constants are not distribution-robust"
    )
    verdict = (
        means["active_sink_hub"]["gathering"] < means["uniform"]["gathering"]
        and means["lazy_sink"]["gathering"] > means["uniform"]["gathering"]
    )
    return ExperimentReport(
        experiment_id="E18",
        claim="Extension (concluding remarks Q3): non-uniform randomized "
        "adversaries shift the Section 4 bounds in the expected directions",
        tables=[table],
        verdict=verdict,
        details={"means": means},
    )


def run_tau_tradeoff(
    n: int = 60,
    trials: int = 8,
    exponents: Sequence[float] = (0.25, 0.375, 0.5, 0.625, 0.75),
    master_seed: int = 0,
) -> ExperimentReport:
    """E19 — Theorem 10's trade-off: tau(f) = max(n·f, n² log n / f).

    ``f(n) = n^e sqrt(log n)`` is swept over exponents ``e``; the paper's
    optimum is ``e = 1/2`` (Corollary 3).  The verdict checks that the
    measured termination time at the optimal exponent is no worse than at
    the extreme exponents (a U-shaped curve with its minimum in the middle).
    """
    from ..sim.runner import run_random_trial

    log_n = math.log(n)
    table = ResultTable(
        title="Waiting Greedy: termination time vs the choice of f(n) in tau",
        columns=["f_exponent", "f(n)", "tau", "mean_duration", "fraction_within_tau"],
    )
    mean_by_exponent: Dict[float, float] = {}
    for exponent in exponents:
        f_n = n ** exponent * math.sqrt(log_n)
        tau = int(math.ceil(max(n * f_n, n * n * log_n / f_n)))
        durations: List[float] = []
        within = 0
        for trial in range(trials):
            seed = derive_seed(master_seed, "tau_tradeoff", exponent, trial)
            metrics = run_random_trial(
                WaitingGreedy(tau=tau), n, seed, horizon=max(6 * tau, 8 * n * n)
            )
            durations.append(metrics.duration)
            if metrics.duration <= tau:
                within += 1
        mean_duration = sum(d for d in durations if not math.isinf(d)) / max(
            1, sum(1 for d in durations if not math.isinf(d))
        )
        mean_by_exponent[exponent] = mean_duration
        table.add_row(
            **{
                "f_exponent": exponent,
                "f(n)": f_n,
                "tau": tau,
                "mean_duration": mean_duration,
                "fraction_within_tau": within / trials,
            }
        )
    optimal = mean_by_exponent[0.5]
    verdict = optimal <= mean_by_exponent[exponents[0]] and optimal <= mean_by_exponent[
        exponents[-1]
    ]
    table.add_note(
        "the paper's choice f(n) = sqrt(n log n) (exponent 0.5) minimises "
        "tau = max(n f, n^2 log n / f) and the measured termination time"
    )
    return ExperimentReport(
        experiment_id="E19",
        claim="Theorem 10 trade-off: the termination time is minimised at "
        "f(n) = sqrt(n log n), the choice of Corollary 3",
        tables=[table],
        verdict=verdict,
        details={"means": mean_by_exponent},
    )


def run_tree_order_ablation(
    n: int = 12,
    trees: int = 4,
    rounds: int = 10,
    master_seed: int = 0,
) -> ExperimentReport:
    """E20 — Theorem 5 robustness: edge order inside a round does not matter."""
    table = ResultTable(
        title="Spanning-tree algorithm on trees: cost under different edge orders",
        columns=["tree", "order", "terminated", "cost"],
    )
    all_optimal = True
    for index in range(trees):
        seed = derive_seed(master_seed, "tree_order", index)
        rng = random.Random(seed)
        tree = random_tree(n, rng=rng)
        nodes = list(range(n))
        orders = {
            "bottom_up": tree_recurrent_sequence(
                tree, rounds=rounds, order="bottom_up", root=0
            ),
            "sorted": tree_recurrent_sequence(tree, rounds=rounds, order="sorted"),
            "shuffled": sequence_with_footprint(tree, rounds=rounds, rng=rng),
        }
        for order, sequence in orders.items():
            knowledge = KnowledgeBundle(
                UnderlyingGraphKnowledge(nodes, edges=list(tree.edges()))
            )
            executor = Executor(
                nodes, 0, SpanningTreeAggregation(), knowledge=knowledge
            )
            result = executor.run(sequence)
            breakdown = cost_of_result(result, sequence, nodes, 0)
            table.add_row(
                tree=index,
                order=order,
                terminated=result.terminated,
                cost=breakdown.cost,
            )
            # cost >= 1 exactly whenever finite, so "> 1.0" is "not optimal".
            if not result.terminated or breakdown.cost > 1.0:
                all_optimal = False
    return ExperimentReport(
        experiment_id="E20",
        claim="Ablation: on tree footprints the spanning-tree algorithm is "
        "optimal regardless of the per-round edge order",
        tables=[table],
        verdict=all_optimal,
        details={},
    )


def run_vectorized_engine_check(
    n: int = 40,
    trials: int = 5,
    master_seed: int = 0,
    candidate_engine: str = "vectorized",
    adversaries: Sequence[str] = ("uniform", "community"),
) -> ExperimentReport:
    """E23 — the trial-vectorized engine is metric-identical to reference.

    Runs the paper's three main algorithms (Waiting, Gathering, Waiting
    Greedy) under each adversary family through the serial reference sweep
    and through one batched ``engine`` invocation per cell, asserts the
    :class:`~repro.sim.metrics.TrialMetrics` are equal trial for trial,
    and reports the measured wall-clock ratio.  The verdict is *equality
    only* — speedups are hardware-dependent and tracked by the benchmark
    trajectory (``benchmarks/BENCH_engine.json``) instead.
    """
    from ..algorithms.waiting_greedy import optimal_tau
    from ..obs import now as _obs_now
    from ..sim.batch import sweep_adversary_batched
    from ..sim.runner import sweep_random_adversary

    factories: Dict[str, object] = {
        "waiting": lambda size: Waiting(),
        "gathering": lambda size: Gathering(),
        "waiting_greedy": lambda size: WaitingGreedy(tau=optimal_tau(size)),
    }
    table = ResultTable(
        title=f"Trial-vectorized engine vs reference (n={n}, {trials} trials/cell)",
        columns=[
            "algorithm",
            "adversary",
            "identical",
            "reference_seconds",
            "engine_seconds",
            "speedup",
        ],
    )
    all_identical = True
    speedups: Dict[str, float] = {}
    for adversary in adversaries:
        for name, factory in factories.items():
            started = _obs_now()
            reference = sweep_random_adversary(
                factory, ns=[n], trials=trials, master_seed=master_seed,
                experiment="vector_check", engine="reference",
                adversary=adversary,
            )
            reference_seconds = _obs_now() - started
            started = _obs_now()
            vectorized = sweep_adversary_batched(
                factory, ns=[n], trials=trials, master_seed=master_seed,
                experiment="vector_check", engine=candidate_engine,
                adversary=adversary,
            )
            engine_seconds = _obs_now() - started
            identical = (
                vectorized.points[0].trials == reference.points[0].trials
            )
            all_identical = all_identical and identical
            speedup = reference_seconds / max(engine_seconds, 1e-9)
            speedups[f"{name}/{adversary}"] = speedup
            table.add_row(
                algorithm=name,
                adversary=adversary,
                identical=identical,
                reference_seconds=round(reference_seconds, 4),
                engine_seconds=round(engine_seconds, 4),
                speedup=round(speedup, 2),
            )
    table.add_note(
        "identical means equal TrialMetrics trial for trial (terminated, "
        "duration, transmissions, coverage), seed for seed; kernel-less "
        "algorithms would fall back to the fast engine transparently"
    )
    return ExperimentReport(
        experiment_id="E23",
        claim="Extension: the trial-vectorized engine reproduces the "
        "reference engine's sweep metrics exactly, cell for cell",
        tables=[table],
        verdict=all_identical,
        details={"speedups": speedups, "engine": candidate_engine},
    )

"""Competitive-ratio reproduction experiment (E25).

The paper's headline comparison is not absolute termination time but the
cost of an online algorithm *relative to the offline optimum* that knows
the whole interaction sequence (Section 2.3).  E25 reproduces the
ratio-vs-``n`` trend end to end through the campaign pipeline:

* a small ``ratio = true`` campaign (algorithms × adversary families ×
  ``n`` sweep) runs into a store, so every trial record carries
  ``opt_cost`` and ``competitive_ratio``;
* the campaign report's ratio-vs-``n`` tables (one per algorithm ×
  adversary family) become the experiment's tables — exactly what
  ``repro campaign report`` would print;
* the verdict checks the metric's defining invariants on the stored
  records: every terminated trial has a finite, reachable baseline with
  ``competitive_ratio >= 1`` *exactly*, and re-running one cell per
  adversary family through the **reference** engine reproduces the stored
  (vectorized-engine) ``opt_cost``/``competitive_ratio`` values byte for
  byte.
"""

from __future__ import annotations

import math
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Sequence

from ..campaign.report import build_campaign_report
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignSpec, algorithm_factory_for
from ..campaign.store import CampaignStore, record_to_metrics
from ..sim.batch import run_sweep_cell
from ..sim.results import ExperimentReport, ResultTable


def run_ratio_vs_n(
    ns: Sequence[int] = (10, 14, 20),
    trials: int = 5,
    algorithms: Sequence[str] = ("gathering", "waiting"),
    adversaries: Sequence[str] = ("uniform", "zipf"),
    engine: str = "vectorized",
    workers: int = 1,
    master_seed: int = 0,
) -> ExperimentReport:
    """E25 — ratio-vs-``n`` per algorithm × adversary family, from a store."""
    spec = CampaignSpec(
        name="e25-ratio",
        algorithms=tuple(algorithms),
        adversaries=tuple(adversaries),
        ns=tuple(int(n) for n in ns),
        trials=trials,
        master_seed=master_seed,
        experiment="e25",
        engine=engine,
        ratio=True,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-e25-"))
    try:
        run_campaign(spec, workdir / "store", workers=workers)
        store = CampaignStore(workdir / "store")
        report = build_campaign_report(workdir / "store")

        # Invariant pass over every stored record.
        checked = 0
        ratio_at_least_one = True
        terminated_have_baseline = True
        for cell in spec.cells():
            for record in store.load_cell(cell.key):
                metrics = record_to_metrics(record)
                checked += 1
                if metrics.opt_cost is None:
                    terminated_have_baseline = False
                    continue
                if metrics.terminated:
                    if not math.isfinite(metrics.opt_cost) or (
                        metrics.competitive_ratio is None
                        or metrics.competitive_ratio < 1.0
                    ):
                        ratio_at_least_one = False
                        terminated_have_baseline = (
                            terminated_have_baseline
                            and math.isfinite(metrics.opt_cost)
                        )

        # Engine differential: one cell per adversary family re-run through
        # the reference engine must reproduce the stored metrics exactly.
        engines_identical = True
        recheck = ResultTable(
            title="Reference-engine recheck of stored ratio cells",
            columns=["adversary", "algorithm", "n", "trials", "identical"],
        )
        for adversary in spec.adversaries:
            cell = next(c for c in spec.cells() if c.adversary == adversary)
            stored = store.load_cell_metrics(cell.key)
            rerun = run_sweep_cell(
                algorithm_factory_for(cell.algorithm),
                cell.n,
                spec.trials,
                master_seed=spec.master_seed,
                experiment=spec.experiment,
                engine="reference",
                adversary=cell.adversary,
                adversary_params=spec.params_for(cell.adversary) or None,
                capture_opt=True,
            )
            identical = stored == rerun
            engines_identical = engines_identical and identical
            recheck.add_row(
                adversary=adversary,
                algorithm=cell.algorithm,
                n=cell.n,
                trials=len(rerun),
                identical=identical,
            )

        ratio_tables = [
            table
            for table in report.tables
            if "competitive ratio" in table.title or "ratio trend" in table.title
        ]
        tables_present = sum(
            1 for table in report.tables if "competitive ratio" in table.title
        ) == len(spec.adversaries)
        verdict = (
            checked == len(spec.cells()) * spec.trials
            and ratio_at_least_one
            and terminated_have_baseline
            and engines_identical
            and tables_present
        )
        details: Dict[str, object] = {
            "records_checked": checked,
            "ratio_at_least_one": ratio_at_least_one,
            "terminated_have_finite_baseline": terminated_have_baseline,
            "reference_engine_identical": engines_identical,
            "ratio_tables_per_adversary": tables_present,
            "spec_hash": spec.spec_hash()[:16],
        }
        tables: List[ResultTable] = ratio_tables + [recheck]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return ExperimentReport(
        experiment_id="E25",
        claim="Per-trial competitive ratio (online duration / offline "
        "optimum) is >= 1, engine-invariant, and its ratio-vs-n trend per "
        "algorithm x adversary family flows from a campaign store",
        tables=tables,
        verdict=verdict,
        details=details,
    )

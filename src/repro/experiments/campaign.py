"""Campaign round-trip experiment (E24).

The campaign layer's core promise is that orchestration is *invisible in
the results*: a campaign store is a pure function of the spec hash, no
matter how the run was scheduled, interrupted or resumed.  E24 checks that
promise end to end on a small grid:

* **fresh leg** — the spec runs straight through into one store;
* **resumed leg** — the same spec runs into a second store but is
  interrupted after one cell (``max_cells=1``), then resumed to
  completion under a *different* engine;
* the two stores must hold **byte-identical shards cell for cell**, and
  the aggregated reports (``repro.campaign.report``) must render
  identically — timestamps and engine bookkeeping live only in the
  manifest fields the comparison deliberately ignores.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Dict, Sequence

from ..campaign.report import build_campaign_report
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import CampaignStore
from ..sim.results import ExperimentReport, ResultTable


def run_campaign_roundtrip(
    ns: Sequence[int] = (8, 10),
    trials: int = 3,
    engine: str = "fast",
    resume_engine: str = "vectorized",
    master_seed: int = 0,
) -> ExperimentReport:
    """E24 — fresh-run ≡ interrupted-and-resumed-run, cell for cell."""
    spec = CampaignSpec(
        name="e24-roundtrip",
        algorithms=("gathering", "waiting"),
        adversaries=("uniform",),
        ns=tuple(int(n) for n in ns),
        trials=trials,
        master_seed=master_seed,
        engine=engine,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-e24-"))
    table = ResultTable(
        title="Campaign round trip: fresh vs interrupted-and-resumed store",
        columns=["cell", "n", "records", "bytes", "shards_equal"],
    )
    try:
        fresh_dir = workdir / "fresh"
        resumed_dir = workdir / "resumed"
        fresh = run_campaign(spec, fresh_dir)
        interrupted = run_campaign(spec, resumed_dir, max_cells=1)
        resumed = run_campaign(spec, resumed_dir, engine=resume_engine)

        interrupt_respected = (
            interrupted.executed == 1
            and interrupted.remaining == len(spec.cells()) - 1
        )
        resume_skipped_checkpoint = resumed.skipped == 1
        all_complete = fresh.complete and resumed.complete

        fresh_store = CampaignStore(fresh_dir)
        resumed_store = CampaignStore(resumed_dir)
        all_equal = True
        for cell in spec.cells():
            fresh_bytes = fresh_store.shard_path(cell.key).read_bytes()
            resumed_bytes = resumed_store.shard_path(cell.key).read_bytes()
            equal = fresh_bytes == resumed_bytes
            all_equal = all_equal and equal
            table.add_row(
                cell=cell.label(),
                n=cell.n,
                records=len(fresh_store.load_cell(cell.key)),
                bytes=len(fresh_bytes),
                shards_equal=equal,
            )

        fresh_report = build_campaign_report(fresh_dir).to_markdown()
        resumed_report = build_campaign_report(resumed_dir).to_markdown()
        reports_equal = fresh_report == resumed_report
        table.add_note(
            f"fresh leg engine={engine!r}, resume leg interrupted after 1 "
            f"cell and finished under engine={resume_engine!r}; reports "
            f"render identically: {reports_equal}"
        )
        verdict = (
            interrupt_respected
            and resume_skipped_checkpoint
            and all_complete
            and all_equal
            and reports_equal
        )
        details: Dict[str, object] = {
            "cells": len(spec.cells()),
            "interrupt_respected": interrupt_respected,
            "resume_skipped_checkpoint": resume_skipped_checkpoint,
            "shards_byte_identical": all_equal,
            "reports_equal": reports_equal,
            "spec_hash": spec.spec_hash()[:16],
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return ExperimentReport(
        experiment_id="E24",
        claim="Campaign orchestration is result-invisible: an interrupted "
        "and resumed campaign store is byte-identical to a fresh run",
        tables=[table],
        verdict=verdict,
        details=details,
    )

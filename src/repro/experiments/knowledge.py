"""Experiments E4–E6: possibility results under topological/future knowledge.

* Theorem 4 — with a recurrent sequence and knowledge of G-bar, the
  spanning-tree algorithm always terminates (finite cost), but its cost is
  unbounded: an adversary can insert arbitrarily many offline convergecasts
  while the algorithm waits for one specific tree edge.
* Theorem 5 — when G-bar is a tree, the spanning-tree algorithm is optimal
  (cost exactly 1).
* Theorem 6 — when each node knows its own future, the future-broadcast
  algorithm has cost at most n.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from ..adversaries.constructions import theorem4_delaying_sequence
from ..algorithms.future_broadcast import FutureBroadcast
from ..algorithms.spanning_tree import SpanningTreeAggregation
from ..core.cost import cost_of_result
from ..core.execution import Executor
from ..graph.generators import (
    random_tree,
    round_robin_sequence,
    sequence_with_footprint,
    uniform_random_sequence,
)
from ..knowledge import FutureKnowledge, KnowledgeBundle, UnderlyingGraphKnowledge
from ..sim.results import ExperimentReport, ResultTable
from ..sim.seeding import derive_seed


def run_theorem4(
    n: int = 8,
    delay_rounds: Sequence[int] = (5, 10, 20, 40),
) -> ExperimentReport:
    """E4 — Theorem 4: recurrent interactions give finite but unbounded cost."""
    table = ResultTable(
        title="Theorem 4: spanning-tree algorithm on a delayed cycle footprint",
        columns=["n", "delay_rounds", "terminated", "duration", "cost"],
    )
    costs: List[float] = []
    all_terminated = True
    for rounds in delay_rounds:
        nodes, sequence = theorem4_delaying_sequence(n, rounds)
        sink = 0
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(nodes, sequence=sequence)
        )
        algorithm = SpanningTreeAggregation()
        executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
        result = executor.run(sequence)
        breakdown = cost_of_result(result, sequence, nodes, sink)
        table.add_row(
            n=n,
            delay_rounds=rounds,
            terminated=result.terminated,
            duration=result.duration if result.terminated else math.inf,
            cost=breakdown.cost,
        )
        costs.append(breakdown.cost)
        all_terminated = all_terminated and result.terminated
    growing = all(
        later >= earlier for earlier, later in zip(costs, costs[1:])
    ) and costs[-1] > costs[0]
    finite = all(not math.isinf(cost) for cost in costs)
    return ExperimentReport(
        experiment_id="E4",
        claim="Theorem 4: with recurrent interactions and knowledge of G-bar "
        "the cost is finite but unbounded",
        tables=[table],
        verdict=all_terminated and finite and growing,
        details={"costs": costs},
    )


def run_theorem5(
    ns: Sequence[int] = (6, 10, 16),
    trees_per_n: int = 5,
    rounds: int = 12,
    master_seed: int = 0,
) -> ExperimentReport:
    """E5 — Theorem 5: on tree footprints the spanning-tree algorithm is optimal."""
    table = ResultTable(
        title="Theorem 5: spanning-tree algorithm on random tree footprints",
        columns=["n", "tree", "terminated", "duration", "opt_duration", "cost"],
    )
    all_optimal = True
    for n in ns:
        for index in range(trees_per_n):
            seed = derive_seed(master_seed, "theorem5", n, index)
            rng = random.Random(seed)
            tree = random_tree(n, rng=rng)
            sink = 0
            sequence = sequence_with_footprint(tree, rounds=rounds, rng=rng)
            nodes = list(range(n))
            knowledge = KnowledgeBundle(
                UnderlyingGraphKnowledge(nodes, edges=list(tree.edges()))
            )
            algorithm = SpanningTreeAggregation()
            executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
            result = executor.run(sequence)
            breakdown = cost_of_result(result, sequence, nodes, sink)
            from ..offline.convergecast import opt as offline_opt

            optimum = offline_opt(sequence, nodes, sink, start=0)
            table.add_row(
                n=n,
                tree=index,
                terminated=result.terminated,
                duration=result.duration if result.terminated else math.inf,
                opt_duration=optimum + 1 if not math.isinf(optimum) else math.inf,
                cost=breakdown.cost,
            )
            # cost >= 1 exactly whenever finite, so "> 1.0" is "not optimal".
            if not result.terminated or breakdown.cost > 1.0:
                all_optimal = False
    return ExperimentReport(
        experiment_id="E5",
        claim="Theorem 5: when G-bar is a tree the spanning-tree algorithm "
        "achieves cost 1 (optimal)",
        tables=[table],
        verdict=all_optimal,
        details={"trees_per_n": trees_per_n, "rounds": rounds},
    )


def run_theorem6(
    ns: Sequence[int] = (6, 10, 16),
    trials_per_n: int = 4,
    master_seed: int = 0,
) -> ExperimentReport:
    """E6 — Theorem 6: knowing one's own future bounds the cost by n.

    The future-broadcast algorithm is run on recurrent deterministic
    sequences (round-robin over the complete graph) and on uniformly random
    sequences; in every case the measured cost must be at most n.
    """
    table = ResultTable(
        title="Theorem 6: future-broadcast algorithm, cost vs the bound n",
        columns=["n", "workload", "trial", "terminated", "duration", "cost", "bound_n"],
    )
    all_within_bound = True
    for n in ns:
        nodes = list(range(n))
        sink = 0
        workloads = {
            "round_robin": lambda seed: round_robin_sequence(nodes, rounds=3 * n),
            "uniform_random": lambda seed: uniform_random_sequence(
                nodes, length=12 * n * max(1, int(math.log(n)) + 1) * n, seed=seed
            ),
        }
        for workload_name, build in workloads.items():
            for trial in range(trials_per_n):
                seed = derive_seed(master_seed, "theorem6", n, workload_name, trial)
                sequence = build(seed)
                knowledge = KnowledgeBundle(FutureKnowledge(sequence))
                algorithm = FutureBroadcast()
                executor = Executor(nodes, sink, algorithm, knowledge=knowledge)
                result = executor.run(sequence)
                breakdown = cost_of_result(result, sequence, nodes, sink)
                table.add_row(
                    n=n,
                    workload=workload_name,
                    trial=trial,
                    terminated=result.terminated,
                    duration=result.duration if result.terminated else math.inf,
                    cost=breakdown.cost,
                    bound_n=n,
                )
                if not result.terminated or breakdown.cost > n:
                    all_within_bound = False
    return ExperimentReport(
        experiment_id="E6",
        claim="Theorem 6: with knowledge of one's own future the cost is at most n",
        tables=[table],
        verdict=all_within_bound,
        details={"trials_per_n": trials_per_n},
    )

"""Mobility-scenario experiments (E21–E22).

The paper's introduction motivates the model with mobile deployments
(body-area sensors, vehicular networks) but analyses only the uniform
randomized adversary.  These experiments run the paper's algorithms under
the committed mobility adversaries of :mod:`repro.adversaries.mobility`:

* **E21 — mobility adversaries (random waypoint, community).**  For each
  mobility family, Gathering and Waiting are run through *both* execution
  engines on the same committed futures.  The verdict is differential and
  deterministic: every trial must terminate within a generous horizon and
  the fast engine must reproduce the reference engine transmission for
  transmission.  The reported mean durations show how far each mobility
  pattern shifts the uniform-adversary expectations (locality slows
  aggregation down; a static collection point speeds the final hops up).
* **E22 — contact-trace replay.**  A synthetic vehicular trace (the
  paper's second motivating example) is replayed through
  :class:`~repro.adversaries.mobility.TraceReplayAdversary`; the committed
  replay must equal the trace exactly, both engines must agree with the
  plain finite-sequence execution, and the outcome must match the trace's
  offline feasibility.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..adversaries.factory import make_adversary
from ..adversaries.mobility import TraceReplayAdversary
from ..algorithms.gathering import Gathering
from ..algorithms.waiting import Waiting
from ..core.execution import Executor
from ..core.fast_execution import FastExecutor
from ..graph.properties import aggregation_feasible
from ..graph.traces import VehicularGridTrace
from ..sim.results import ExperimentReport, ResultTable
from ..sim.seeding import derive_seed

MOBILITY_FAMILIES: Sequence[str] = ("waypoint", "community")


def run_mobility_adversaries(
    n: int = 24,
    trials: int = 5,
    horizon_factor: int = 64,
    master_seed: int = 0,
) -> ExperimentReport:
    """E21 — mobility adversaries through both engines, differentially."""
    nodes = list(range(n))
    sink = 0
    horizon = horizon_factor * n * n
    algorithms = (("gathering", Gathering), ("waiting", Waiting))
    table = ResultTable(
        title="Mobility adversaries: mean interactions to termination "
        "(engines differentially checked)",
        columns=[
            "adversary",
            "algorithm",
            "terminated",
            "mean_duration",
            "engines_agree",
        ],
    )
    all_agree = True
    all_terminated = True
    means: Dict[str, Dict[str, float]] = {}
    for family in MOBILITY_FAMILIES:
        means[family] = {}
        for name, algorithm_cls in algorithms:
            durations: List[float] = []
            terminated = 0
            agree = True
            for trial in range(trials):
                seed = derive_seed(master_seed, "mobility", family, name, trial)
                reference = Executor(nodes, sink, algorithm_cls()).run(
                    make_adversary(
                        family, nodes, seed=seed, max_horizon=horizon, sink=sink
                    ),
                    max_interactions=horizon,
                )
                fast = FastExecutor(nodes, sink, algorithm_cls()).run(
                    make_adversary(
                        family, nodes, seed=seed, max_horizon=horizon, sink=sink
                    ),
                    max_interactions=horizon,
                )
                agree = agree and fast == reference
                if reference.terminated:
                    terminated += 1
                    durations.append(float(reference.duration))
            mean = (
                sum(durations) / len(durations) if durations else math.inf
            )
            means[family][name] = mean
            all_agree = all_agree and agree
            all_terminated = all_terminated and terminated == trials
            table.add_row(
                adversary=family,
                algorithm=name,
                terminated=terminated / trials,
                mean_duration=mean,
                engines_agree=agree,
            )
    table.add_note(
        "every trial runs the same committed future through the reference "
        "and fast engines; 'engines_agree' is transmission-for-transmission "
        "equality"
    )
    return ExperimentReport(
        experiment_id="E21",
        claim="Extension: committed mobility adversaries (random waypoint, "
        "community) run identically on both engines and terminate",
        tables=[table],
        verdict=all_agree and all_terminated,
        details={"means": means},
    )


def run_trace_replay(
    vehicles: int = 10,
    grid_size: int = 5,
    steps: int = 400,
    master_seed: int = 0,
) -> ExperimentReport:
    """E22 — recorded contact traces replayed as committed adversaries."""
    trace = VehicularGridTrace(
        vehicle_count=vehicles, grid_size=grid_size, steps=steps,
        seed=master_seed,
    ).build()
    nodes = list(trace.nodes)
    feasible = aggregation_feasible(trace)

    replay_exact = (
        TraceReplayAdversary(trace).committed_prefix(trace.length)
        == trace.sequence
    )

    table = ResultTable(
        title="Trace replay: committed adversary vs direct sequence execution",
        columns=[
            "algorithm",
            "terminated",
            "duration",
            "matches_sequence_run",
            "engines_agree",
        ],
    )
    all_consistent = replay_exact
    for name, algorithm_cls in (("gathering", Gathering), ("waiting", Waiting)):
        sequence_run = Executor(nodes, trace.sink, algorithm_cls()).run(
            trace.sequence
        )
        reference = Executor(nodes, trace.sink, algorithm_cls()).run(
            TraceReplayAdversary(trace), max_interactions=trace.length
        )
        fast = FastExecutor(nodes, trace.sink, algorithm_cls()).run(
            TraceReplayAdversary(trace), max_interactions=trace.length
        )
        matches = reference == sequence_run
        agree = fast == reference
        # Termination itself is *not* part of the verdict: the paper's own
        # impossibility results show online no-knowledge algorithms need
        # not match offline feasibility on a fixed finite trace.
        all_consistent = all_consistent and matches and agree
        table.add_row(
            algorithm=name,
            terminated=reference.terminated,
            duration=(
                reference.duration if reference.terminated else math.inf
            ),
            matches_sequence_run=matches,
            engines_agree=agree,
        )
    table.add_note(
        f"trace: {len(nodes)} nodes, {trace.length} contacts, "
        f"offline-feasible={feasible}; the committed replay equals the "
        f"recorded trace: {replay_exact}"
    )
    return ExperimentReport(
        experiment_id="E22",
        claim="Extension: contact-trace replay through the committed-block "
        "protocol is exact and engine-independent",
        tables=[table],
        verdict=all_consistent,
        details={"feasible": feasible, "replay_exact": replay_exact},
    )

"""Experiments E7–E15: bounds under the randomized adversary (Section 4).

Every experiment sweeps ``n``, runs independent trials against the uniform
randomized adversary, and compares the measured number of interactions with
the paper's claimed growth rate — by direct ratio against exact expectation
formulas where the paper derives them, and by log-log growth-rate fitting
for the asymptotic (Θ/O/Ω, w.h.p.) claims.

The trial-based experiments (E7–E11, E13, E14) accept ``engine``
("reference" or "fast", see :mod:`repro.core.fast_execution`); the
sweep-based ones (E9–E11) additionally accept ``workers`` (process fan-out,
see :mod:`repro.sim.parallel`).  Both knobs change only wall-clock time,
never the measured numbers.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..algorithms.full_knowledge import FullKnowledge
from ..algorithms.future_broadcast import FutureBroadcast
from ..algorithms.gathering import Gathering
from ..algorithms.waiting import Waiting
from ..algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from ..analysis.bounds import (
    broadcast_expected_exact,
    gathering_expected_exact,
    last_transmission_expected,
    n_log_n,
    n_squared,
    n_squared_log_n,
    n_three_halves_sqrt_log_n,
    waiting_expected_exact,
)
from ..analysis.fitting import fit_power_law, ratio_drift
from ..analysis.statistics import fraction_within
from ..core.cost import cost_of_result
from ..core.execution import Executor
from ..graph.generators import uniform_random_sequence
from ..offline.broadcast import broadcast_completion_time
from ..offline.convergecast import opt as offline_opt
from ..sim.parallel import sweep_random_adversary
from ..sim.results import ExperimentReport, ResultTable
from ..sim.runner import resolve_engine, run_random_trial
from ..sim.seeding import derive_seed

DEFAULT_NS: Sequence[int] = (16, 24, 36, 54, 80)
DEFAULT_TRIALS = 12


def run_theorem7(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
    engine: str = "reference",
) -> ExperimentReport:
    """E7 — Theorem 7: every no-knowledge algorithm needs Ω(n²) interactions.

    The lower bound is driven by the last transmission (a specific pair must
    interact, which takes ``n(n-1)/2`` interactions in expectation).  We
    measure, for the optimal no-knowledge algorithm (Gathering), both the
    total duration and the waiting time of the final transmission, and check
    that they are at least the claimed lower bounds.
    """
    table = ResultTable(
        title="Theorem 7: lower bound Ω(n²) without knowledge (measured on Gathering)",
        columns=[
            "n",
            "mean_duration",
            "lower_bound_n(n-1)/2",
            "duration_over_bound",
            "mean_last_wait",
            "last_wait_over_bound",
        ],
    )
    ratios: List[float] = []
    means: List[float] = []
    for n in ns:
        durations: List[float] = []
        for trial in range(trials):
            seed = derive_seed(master_seed, "theorem7", n, trial)
            metrics = run_random_trial(Gathering(), n, seed, engine=engine)
            durations.append(metrics.duration)
        last_waits = _last_transmission_waits(n, trials, master_seed, engine=engine)
        bound = last_transmission_expected(n)
        mean_duration = sum(durations) / len(durations)
        mean_last = sum(last_waits) / len(last_waits)
        means.append(mean_duration)
        ratios.append(mean_duration / bound)
        table.add_row(
            n=n,
            mean_duration=mean_duration,
            **{"lower_bound_n(n-1)/2": bound},
            duration_over_bound=mean_duration / bound,
            mean_last_wait=mean_last,
            last_wait_over_bound=mean_last / bound,
        )
    fit = fit_power_law(list(ns), means)
    table.add_note(f"fitted exponent of mean duration: {fit.exponent:.2f} (claim: 2)")
    verdict = all(ratio >= 0.9 for ratio in ratios) and 1.6 <= fit.exponent <= 2.4
    return ExperimentReport(
        experiment_id="E7",
        claim="Theorem 7: Ω(n²) interactions are required without knowledge",
        tables=[table],
        verdict=verdict,
        details={"fitted_exponent": fit.exponent},
    )


def _last_transmission_waits(
    n: int, trials: int, master_seed: int, engine: str = "reference"
) -> List[float]:
    """Waiting time before the final transmission of Gathering runs."""
    waits: List[float] = []
    executor_cls = resolve_engine(engine)
    for trial in range(trials):
        seed = derive_seed(master_seed, "theorem7-last", n, trial)
        from ..adversaries.randomized import RandomizedAdversary

        adversary = RandomizedAdversary(list(range(n)), seed=seed)
        executor = executor_cls(list(range(n)), 0, Gathering())
        result = executor.run(adversary, max_interactions=64 * n * n)
        if not result.terminated or len(result.transmissions) < 2:
            continue
        last = result.transmissions[-1].time
        previous = result.transmissions[-2].time
        waits.append(float(last - previous))
    return waits or [math.nan]


def run_theorem8(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
    engine: str = "reference",
) -> ExperimentReport:
    """E8 — Theorem 8: with full knowledge the optimum is Θ(n log n).

    Measured three ways on the same random sequences: the offline optimum
    ``opt(0)``, the flooding broadcast completion on the reversed sequence
    (the duality used in the proof), and the termination of the
    full-knowledge algorithm, which must equal ``opt(0) + 1`` interactions.
    """
    table = ResultTable(
        title="Theorem 8: offline optimum under the randomized adversary",
        columns=[
            "n",
            "mean_opt",
            "mean_broadcast_reversed",
            "mean_full_knowledge_run",
            "expected_broadcast_(n-1)H(n-1)",
            "opt_over_nlogn",
        ],
    )
    mean_opts: List[float] = []
    verdict = True
    for n in ns:
        nodes = list(range(n))
        sink = 0
        opts: List[float] = []
        broadcasts: List[float] = []
        runs: List[float] = []
        horizon = int(30 * n * max(1.0, math.log(n)))
        for trial in range(trials):
            seed = derive_seed(master_seed, "theorem8", n, trial)
            sequence = uniform_random_sequence(nodes, horizon, seed=seed)
            optimum = offline_opt(sequence, nodes, sink, start=0)
            if math.isinf(optimum):
                verdict = False
                continue
            opts.append(optimum + 1)
            # Duality of the proof: a convergecast within a window is a
            # broadcast from the sink on the reversed window, so the reverse
            # flood's completion length has the same distribution as opt+1.
            reversed_completion = broadcast_completion_time(
                sequence.reversed(), sink, nodes
            )
            broadcasts.append(
                reversed_completion + 1
                if not math.isinf(reversed_completion)
                else math.inf
            )
            metrics = run_random_trial(
                FullKnowledge(), n, seed, horizon=horizon, engine=engine
            )
            runs.append(metrics.duration)
        mean_opt = sum(opts) / len(opts)
        mean_opts.append(mean_opt)
        expected = broadcast_expected_exact(n)
        table.add_row(
            n=n,
            mean_opt=mean_opt,
            mean_broadcast_reversed=sum(broadcasts) / len(broadcasts),
            mean_full_knowledge_run=sum(runs) / len(runs),
            **{"expected_broadcast_(n-1)H(n-1)": expected},
            opt_over_nlogn=mean_opt / n_log_n(n),
        )
        if not (0.5 * expected <= mean_opt <= 2.0 * expected):
            verdict = False
    drift = ratio_drift(list(ns), mean_opts, n_log_n)
    table.add_note(
        f"log-slope of opt / (n log n): {drift:+.2f} (≈ 0 when the Θ(n log n) shape holds)"
    )
    verdict = verdict and abs(drift) <= 0.35
    return ExperimentReport(
        experiment_id="E8",
        claim="Theorem 8: the best full-knowledge algorithm needs Θ(n log n) interactions",
        tables=[table],
        verdict=verdict,
        details={"ratio_drift": drift},
    )


def run_corollary1(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
) -> ExperimentReport:
    """E9 — Corollary 1: DODA(future) also terminates in Θ(n log n)."""
    sweep = sweep_random_adversary(
        lambda n: FutureBroadcast(),
        ns,
        trials,
        master_seed=master_seed,
        experiment="corollary1",
        engine=engine,
        workers=workers,
    )
    means = sweep.mean_durations
    table = sweep.to_table("Corollary 1: future-broadcast termination (randomized adversary)")
    table.columns.append("mean_over_nlogn")
    for row, n, mean in zip(table.rows, sweep.ns, means):
        row["mean_over_nlogn"] = mean / n_log_n(n)
    drift = ratio_drift(sweep.ns, means, n_log_n)
    fit = fit_power_law(sweep.ns, means)
    table.add_note(
        f"fitted exponent {fit.exponent:.2f}; log-slope vs n log n {drift:+.2f}"
    )
    verdict = abs(drift) <= 0.4 and all(
        # rate = terminated/trials <= 1, so ">= 1.0" is "all terminated".
        point.termination_rate >= 1.0
        for point in sweep.points
    )
    return ExperimentReport(
        experiment_id="E9",
        claim="Corollary 1: knowing one's own future gives Θ(n log n) termination",
        tables=[table],
        verdict=verdict,
        details={"fitted_exponent": fit.exponent, "ratio_drift": drift},
    )


def run_theorem9_waiting(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
) -> ExperimentReport:
    """E10 — Theorem 9 (Waiting): O(n² log n) expected, matching the exact formula."""
    sweep = sweep_random_adversary(
        lambda n: Waiting(),
        ns,
        trials,
        master_seed=master_seed,
        experiment="theorem9_waiting",
        engine=engine,
        workers=workers,
    )
    table = sweep.to_table("Theorem 9: Waiting termination (randomized adversary)")
    table.columns.extend(["expected_exact", "mean_over_expected"])
    ratios: List[float] = []
    verdict = True
    for row, n in zip(table.rows, sweep.ns):
        expected = waiting_expected_exact(n)
        row["expected_exact"] = expected
        ratio = row["mean"] / expected
        row["mean_over_expected"] = ratio
        ratios.append(ratio)
        # Waiting's termination time has a heavy tail (relative std close to
        # 1/log n · n²/mean), so individual sweep points get a loose band and
        # the tight check is on the average ratio below.
        if not 0.5 <= ratio <= 1.7:
            verdict = False
    drift = ratio_drift(sweep.ns, sweep.mean_durations, n_squared_log_n)
    fit = fit_power_law(sweep.ns, sweep.mean_durations)
    table.add_note(
        f"fitted exponent {fit.exponent:.2f} (claim ~2 + log factor); "
        f"log-slope vs n² log n {drift:+.2f}"
    )
    mean_ratio = sum(ratios) / len(ratios)
    verdict = verdict and 0.75 <= mean_ratio <= 1.25 and abs(drift) <= 0.35
    return ExperimentReport(
        experiment_id="E10",
        claim="Theorem 9: Waiting terminates in O(n² log n) expected interactions",
        tables=[table],
        verdict=verdict,
        details={"fitted_exponent": fit.exponent, "ratio_drift": drift},
    )


def run_theorem9_gathering(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
    engine: str = "reference",
    workers: int = 1,
) -> ExperimentReport:
    """E11 — Theorem 9 / Corollary 2: Gathering is O(n²), optimal without knowledge."""
    sweep = sweep_random_adversary(
        lambda n: Gathering(),
        ns,
        trials,
        master_seed=master_seed,
        experiment="theorem9_gathering",
        engine=engine,
        workers=workers,
    )
    table = sweep.to_table("Theorem 9: Gathering termination (randomized adversary)")
    table.columns.extend(["expected_exact", "mean_over_expected"])
    ratios: List[float] = []
    verdict = True
    for row, n in zip(table.rows, sweep.ns):
        expected = gathering_expected_exact(n)
        row["expected_exact"] = expected
        ratio = row["mean"] / expected
        row["mean_over_expected"] = ratio
        ratios.append(ratio)
        # The last transmission is geometric with mean ~n²/2, so single sweep
        # points fluctuate; the tight check is on the average ratio below.
        if not 0.55 <= ratio <= 1.6:
            verdict = False
    drift = ratio_drift(sweep.ns, sweep.mean_durations, n_squared)
    fit = fit_power_law(sweep.ns, sweep.mean_durations)
    table.add_note(
        f"fitted exponent {fit.exponent:.2f} (claim 2); log-slope vs n² {drift:+.2f}"
    )
    mean_ratio = sum(ratios) / len(ratios)
    verdict = verdict and 0.75 <= mean_ratio <= 1.25 and 1.6 <= fit.exponent <= 2.4
    return ExperimentReport(
        experiment_id="E11",
        claim="Theorem 9 / Corollary 2: Gathering terminates in O(n²), optimal "
        "among no-knowledge algorithms",
        tables=[table],
        verdict=verdict,
        details={"fitted_exponent": fit.exponent, "ratio_drift": drift},
    )


def run_lemma1(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    master_seed: int = 0,
) -> ExperimentReport:
    """E12 — Lemma 1: in n·f(n) interactions Θ(f(n)) nodes meet the sink.

    Uses ``f(n) = sqrt(n log n)`` (the choice that optimises Waiting Greedy).
    """
    table = ResultTable(
        title="Lemma 1: distinct nodes meeting the sink within n·f(n) interactions",
        columns=["n", "f(n)", "horizon_nf(n)", "mean_distinct", "distinct_over_f"],
    )
    ratios: List[float] = []
    for n in ns:
        f_n = math.sqrt(n * math.log(n))
        horizon = int(n * f_n)
        nodes = list(range(n))
        sink = 0
        counts: List[int] = []
        for trial in range(trials):
            seed = derive_seed(master_seed, "lemma1", n, trial)
            sequence = uniform_random_sequence(nodes, horizon, seed=seed)
            seen = set()
            for interaction in sequence:
                if interaction.involves(sink):
                    seen.add(interaction.other(sink))
            counts.append(len(seen))
        mean_count = sum(counts) / len(counts)
        ratios.append(mean_count / f_n)
        table.add_row(
            n=n,
            **{"f(n)": f_n, "horizon_nf(n)": horizon},
            mean_distinct=mean_count,
            distinct_over_f=mean_count / f_n,
        )
    spread = max(ratios) / min(ratios)
    table.add_note(
        f"ratio spread over the sweep: {spread:.2f} (Θ(f(n)) means a bounded ratio)"
    )
    verdict = all(0.5 <= ratio <= 4.0 for ratio in ratios) and spread <= 2.5
    return ExperimentReport(
        experiment_id="E12",
        claim="Lemma 1: within n·f(n) random interactions, Θ(f(n)) distinct "
        "nodes interact with the sink",
        tables=[table],
        verdict=verdict,
        details={"ratios": ratios},
    )


def run_theorem10(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    tau_constant: float = 2.0,
    master_seed: int = 0,
    engine: str = "reference",
) -> ExperimentReport:
    """E13 — Theorem 10 / Corollary 3: Waiting Greedy terminates by tau w.h.p.

    ``tau = tau_constant · n^{3/2} √(log n)``; the constant absorbs the Θ(·)
    of the statement.  The check is the w.h.p. claim itself: the fraction of
    runs terminating within ``tau`` must be large and must not degrade as n
    grows, and the termination time must scale like n^{3/2}√(log n).
    """
    table = ResultTable(
        title="Theorem 10 / Corollary 3: Waiting Greedy with tau = c·n^{3/2}√log n",
        columns=[
            "n",
            "tau",
            "mean_duration",
            "fraction_within_tau",
            "fraction_within_1.2tau",
            "duration_over_n3/2sqrtlog",
        ],
    )
    fractions: List[float] = []
    slack_fractions: List[float] = []
    means: List[float] = []
    for n in ns:
        tau = optimal_tau(n, constant=tau_constant)
        durations: List[float] = []
        for trial in range(trials):
            seed = derive_seed(master_seed, "theorem10", n, trial)
            metrics = run_random_trial(
                WaitingGreedy(tau=tau),
                n,
                seed,
                horizon=max(8 * tau, 4 * n * n),
                engine=engine,
            )
            durations.append(metrics.duration)
        fraction = fraction_within(durations, tau)
        slack_fraction = fraction_within(durations, 1.2 * tau)
        fractions.append(fraction)
        slack_fractions.append(slack_fraction)
        mean_duration = sum(d for d in durations if not math.isinf(d)) / max(
            1, sum(1 for d in durations if not math.isinf(d))
        )
        means.append(mean_duration)
        table.add_row(
            n=n,
            tau=tau,
            mean_duration=mean_duration,
            fraction_within_tau=fraction,
            **{
                "fraction_within_1.2tau": slack_fraction,
                "duration_over_n3/2sqrtlog": mean_duration
                / n_three_halves_sqrt_log_n(n),
            },
        )
    drift = ratio_drift(list(ns), means, n_three_halves_sqrt_log_n)
    fit = fit_power_law(list(ns), means)
    table.add_note(
        f"fitted exponent {fit.exponent:.2f} (claim 1.5 + √log factor); "
        f"log-slope vs n^(3/2)√log n {drift:+.2f}"
    )
    # The Θ(·) of the statement absorbs constants: the check is that the bulk
    # of the runs finish by tau, essentially all finish with 20% slack, and
    # the termination time scales like n^{3/2}√log n (no drift).
    mean_fraction = sum(fractions) / len(fractions)
    verdict = (
        mean_fraction >= 0.8
        and all(fraction >= 0.9 for fraction in slack_fractions)
        and abs(drift) <= 0.4
    )
    return ExperimentReport(
        experiment_id="E13",
        claim="Theorem 10 / Corollary 3: Waiting Greedy with tau = Θ(n^{3/2}√log n) "
        "terminates within tau w.h.p.",
        tables=[table],
        verdict=verdict,
        details={
            "fitted_exponent": fit.exponent,
            "ratio_drift": drift,
            "tau_constant": tau_constant,
        },
    )


def run_theorem11(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    tau_constant: float = 2.0,
    master_seed: int = 0,
    engine: str = "reference",
) -> ExperimentReport:
    """E14 — Theorem 11: Waiting Greedy is optimal in DODA(meetTime).

    The optimality proof cannot be replayed empirically (it quantifies over
    all algorithms), but its two measurable consequences can: Waiting Greedy
    must beat the no-knowledge optimum (Gathering) and the naive Waiting
    strategy, and must do so by a factor that grows with n (because
    n^{3/2}√log n = o(n²)).
    """
    table = ResultTable(
        title="Theorem 11: Waiting Greedy vs no-knowledge algorithms",
        columns=[
            "n",
            "waiting_greedy",
            "gathering",
            "waiting",
            "speedup_vs_gathering",
            "speedup_vs_waiting",
        ],
    )
    speedups: List[float] = []
    wg_means: List[float] = []
    for n in ns:
        wg: List[float] = []
        ga: List[float] = []
        wa: List[float] = []
        tau = optimal_tau(n, constant=tau_constant)
        for trial in range(trials):
            seed = derive_seed(master_seed, "theorem11", n, trial)
            wg.append(
                run_random_trial(WaitingGreedy(tau=tau), n, seed, engine=engine).duration
            )
            ga.append(run_random_trial(Gathering(), n, seed, engine=engine).duration)
            wa.append(run_random_trial(Waiting(), n, seed, engine=engine).duration)
        mean_wg = sum(wg) / len(wg)
        mean_ga = sum(ga) / len(ga)
        mean_wa = sum(wa) / len(wa)
        wg_means.append(mean_wg)
        speedups.append(mean_ga / mean_wg)
        table.add_row(
            n=n,
            waiting_greedy=mean_wg,
            gathering=mean_ga,
            waiting=mean_wa,
            speedup_vs_gathering=mean_ga / mean_wg,
            speedup_vs_waiting=mean_wa / mean_wg,
        )
    fit = fit_power_law(list(ns), wg_means)
    table.add_note(
        f"Waiting Greedy fitted exponent {fit.exponent:.2f} "
        "(strictly below Gathering's 2, as n^{3/2}√log n = o(n²))"
    )
    # The speed-up must be present at the largest n and must grow.
    verdict = (
        speedups[-1] > 1.2
        and speedups[-1] >= speedups[0]
        and fit.exponent < 1.95
    )
    return ExperimentReport(
        experiment_id="E14",
        claim="Theorem 11: Waiting Greedy (meetTime knowledge) beats every "
        "no-knowledge algorithm, with a gap growing in n",
        tables=[table],
        verdict=verdict,
        details={"speedups": speedups, "fitted_exponent": fit.exponent},
    )


def run_cost_conversion(
    ns: Sequence[int] = (12, 18, 27, 40),
    trials: int = 8,
    master_seed: int = 0,
) -> ExperimentReport:
    """E15 — Section 4 conversion: O(n²) interactions ⇒ cost O(n / log n).

    Runs Gathering on committed random sequences and evaluates the paper's
    cost measure directly (number of successive offline convergecasts that
    fit within the algorithm's duration).
    """
    table = ResultTable(
        title="Cost of Gathering under the randomized adversary",
        columns=["n", "mean_duration", "mean_cost", "n_over_logn", "cost_over_bound"],
    )
    ratios: List[float] = []
    costs: List[float] = []
    for n in ns:
        nodes = list(range(n))
        sink = 0
        horizon = 8 * n * n
        trial_costs: List[float] = []
        trial_durations: List[float] = []
        for trial in range(trials):
            seed = derive_seed(master_seed, "cost_conversion", n, trial)
            sequence = uniform_random_sequence(nodes, horizon, seed=seed)
            executor = Executor(nodes, sink, Gathering())
            result = executor.run(sequence)
            breakdown = cost_of_result(result, sequence, nodes, sink)
            trial_costs.append(breakdown.cost)
            trial_durations.append(
                result.duration if result.terminated else math.inf
            )
        mean_cost = sum(trial_costs) / len(trial_costs)
        bound = n / math.log(n)
        costs.append(mean_cost)
        ratios.append(mean_cost / bound)
        table.add_row(
            n=n,
            mean_duration=sum(trial_durations) / len(trial_durations),
            mean_cost=mean_cost,
            n_over_logn=bound,
            cost_over_bound=mean_cost / bound,
        )
    drift = ratio_drift(list(ns), costs, lambda n: n / math.log(n))
    table.add_note(
        f"log-slope of cost / (n/log n): {drift:+.2f} (≈ 0 when the conversion holds)"
    )
    verdict = all(ratio <= 3.0 for ratio in ratios) and abs(drift) <= 0.5
    return ExperimentReport(
        experiment_id="E15",
        claim="Section 4: an O(n²)-interaction algorithm has cost O(n / log n) "
        "under the randomized adversary",
        tables=[table],
        verdict=verdict,
        details={"ratio_drift": drift},
    )

"""Experiments E1–E3: the impossibility constructions of Theorems 1, 2, 3.

These experiments execute the adversary constructions against concrete
algorithms and check the two properties each proof establishes:

1. the algorithm never terminates (within a horizon much larger than any
   termination bound it could have), and
2. the sequence of interactions played still allows an unbounded number of
   successive offline convergecasts, i.e. ``cost_A(I) = ∞`` in the paper's
   sense.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from ..adversaries.constructions import (
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
)
from ..core.algorithm import DODAAlgorithm
from ..core.cost import convergecast_milestones
from ..core.execution import Executor, RecordingProvider
from ..knowledge import KnowledgeBundle, UnderlyingGraphKnowledge
from ..algorithms.gathering import Gathering
from ..algorithms.waiting import Waiting
from ..algorithms.random_baseline import CoinFlipGathering
from ..algorithms.spanning_tree import SpanningTreeAggregation
from ..sim.results import ExperimentReport, ResultTable


def run_theorem1(
    horizon: int = 3000,
    algorithm_factories: Optional[Dict[str, Callable[[], DODAAlgorithm]]] = None,
) -> ExperimentReport:
    """E1 — Theorem 1: an adaptive adversary forces infinite cost on 3 nodes.

    Runs each candidate no-knowledge algorithm against the Theorem 1
    adversary for ``horizon`` interactions and verifies that (a) the
    algorithm never terminates and (b) offline convergecasts keep fitting in
    the played sequence (so the online/offline gap, i.e. the cost, grows
    without bound).
    """
    if algorithm_factories is None:
        algorithm_factories = {
            "gathering": Gathering,
            "waiting": Waiting,
            "coin_flip_gathering": lambda: CoinFlipGathering(p=0.5, seed=7),
        }
    table = ResultTable(
        title="Theorem 1: adaptive adversary vs no-knowledge algorithms (3 nodes)",
        columns=[
            "algorithm",
            "horizon",
            "terminated",
            "offline_convergecasts_fitted",
        ],
    )
    all_good = True
    for name, factory in algorithm_factories.items():
        adversary = Theorem1Adversary()
        recording = RecordingProvider(adversary)
        algorithm = factory()
        executor = Executor(adversary.nodes(), adversary.sink, algorithm)
        result = executor.run(recording, max_interactions=horizon)
        sequence = recording.recorded_sequence()
        milestones = convergecast_milestones(
            sequence, adversary.nodes(), adversary.sink, max_milestones=horizon
        )
        fitted = sum(1 for m in milestones if not math.isinf(m))
        table.add_row(
            algorithm=name,
            horizon=horizon,
            terminated=result.terminated,
            offline_convergecasts_fitted=fitted,
        )
        # The claim is reproduced when the algorithm is starved while the
        # offline optimum could have completed many times over.
        if result.terminated or fitted < 3:
            all_good = False
    return ExperimentReport(
        experiment_id="E1",
        claim="Theorem 1: against an adaptive adversary every no-knowledge "
        "algorithm has unbounded cost",
        tables=[table],
        verdict=all_good,
        details={"horizon": horizon},
    )


def run_theorem2(
    n: int = 12,
    horizon_cycles: int = 40,
    trials: int = 20,
    estimation_trials: int = 100,
    seed: int = 0,
) -> ExperimentReport:
    """E2 — Theorem 2: an oblivious adversary defeats oblivious randomized algorithms.

    Builds the construction (prefix ``I^{l_0}`` + repeated blocking pattern
    ``I'``) for Gathering and for a coin-flip randomized variant and checks
    that the algorithms fail to terminate with high empirical probability
    while the offline optimum remains feasible.
    """
    table = ResultTable(
        title="Theorem 2: oblivious adversary vs oblivious randomized algorithms",
        columns=[
            "algorithm",
            "n",
            "horizon",
            "non_termination_rate",
            "offline_convergecasts_fitted",
        ],
    )
    construction = Theorem2Construction(
        n=n, estimation_trials=estimation_trials, seed=seed
    )
    nodes = construction.node_names()
    sink = construction.sink()
    horizon = horizon_cycles * (n - 1) + 4 * n

    # Each target provides a factory used for the construction's Monte-Carlo
    # estimation and a per-trial factory (seeded differently per trial so
    # the randomized algorithm's behaviour actually varies across trials).
    targets: Dict[str, Dict[str, Callable]] = {
        "gathering": {
            "estimation": Gathering,
            "trial": lambda trial: Gathering(),
        },
        "coin_flip_gathering": {
            "estimation": lambda: CoinFlipGathering(p=0.5, seed=seed),
            "trial": lambda trial: CoinFlipGathering(p=0.5, seed=seed * 1000 + trial),
        },
    }
    all_good = True
    for name, factories in targets.items():
        adversary = construction.build(factories["estimation"])
        failures = 0
        fitted_last = 0
        for trial in range(trials):
            algorithm = factories["trial"](trial)
            executor = Executor(nodes, sink, algorithm)
            result = executor.run(adversary, max_interactions=horizon)
            if not result.terminated:
                failures += 1
            sequence = adversary.committed_prefix(horizon)
            milestones = convergecast_milestones(
                sequence, nodes, sink, max_milestones=horizon_cycles
            )
            fitted_last = sum(1 for m in milestones if not math.isinf(m))
        rate = failures / trials
        table.add_row(
            algorithm=name,
            n=n,
            horizon=horizon,
            non_termination_rate=rate,
            offline_convergecasts_fitted=fitted_last,
        )
        if rate < 0.8 or fitted_last < 3:
            all_good = False
    return ExperimentReport(
        experiment_id="E2",
        claim="Theorem 2: an oblivious adversary makes oblivious randomized "
        "algorithms fail w.h.p. while convergecasts remain possible",
        tables=[table],
        verdict=all_good,
        details={"n": n, "trials": trials},
    )


def run_theorem3(horizon: int = 3000) -> ExperimentReport:
    """E3 — Theorem 3: knowing the underlying graph G-bar is not enough (n >= 4).

    Runs the spanning-tree algorithm (which uses exactly the knowledge
    G-bar) and Gathering against the Theorem 3 adversary on the 4-cycle.
    """
    table = ResultTable(
        title="Theorem 3: adaptive adversary on the 4-cycle vs DODA(G-bar)",
        columns=[
            "algorithm",
            "horizon",
            "terminated",
            "offline_convergecasts_fitted",
        ],
    )
    all_good = True
    for name in ("spanning_tree", "gathering"):
        adversary = Theorem3Adversary()
        recording = RecordingProvider(adversary)
        nodes = adversary.nodes()
        knowledge = KnowledgeBundle(
            UnderlyingGraphKnowledge(nodes, edges=adversary.underlying_graph_edges())
        )
        algorithm: DODAAlgorithm
        if name == "spanning_tree":
            algorithm = SpanningTreeAggregation()
        else:
            algorithm = Gathering()
        executor = Executor(nodes, adversary.sink, algorithm, knowledge=knowledge)
        result = executor.run(recording, max_interactions=horizon)
        sequence = recording.recorded_sequence()
        milestones = convergecast_milestones(
            sequence, nodes, adversary.sink, max_milestones=horizon
        )
        fitted = sum(1 for m in milestones if not math.isinf(m))
        table.add_row(
            algorithm=name,
            horizon=horizon,
            terminated=result.terminated,
            offline_convergecasts_fitted=fitted,
        )
        if result.terminated or fitted < 3:
            all_good = False
    return ExperimentReport(
        experiment_id="E3",
        claim="Theorem 3: with n >= 4, knowing G-bar does not prevent an "
        "adaptive adversary from forcing unbounded cost",
        tables=[table],
        verdict=all_good,
        details={"horizon": horizon},
    )

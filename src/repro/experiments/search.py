"""E26 — adversarial search beats random sampling, and its finds replay exactly.

The paper's bounds are worst-case; random sweeps only ever sample average
cases.  E26 checks that the guided search of :mod:`repro.search` actually
*hunts*: for each configured ``algorithm × family`` pair at ``n`` the
seeded search's best competitive ratio must **strictly exceed the p99** of
an equal-budget random-sampling baseline (disjoint seed stream).  It then
closes the loop that makes a find a usable regression: the best instance
of every pair is frozen into a content-addressed corpus, reloaded, and
replayed on all three engines — the stored competitive ratio (and
duration and transmission count) must reproduce **bit-for-bit** on each.

Both halves are deterministic per ``seed``: re-running E26 with the same
arguments reproduces the same ratios, digests and verdict.
"""

from __future__ import annotations

import math
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..search.corpus import WorstCaseCorpus, instance_from_candidate, replay_instance
from ..search.loop import SearchConfig, run_random_baseline, run_search
from ..sim.results import ExperimentReport, ResultTable

__all__ = ["run_adversarial_search"]

_DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("gathering", "uniform"),
    ("gathering", "zipf"),
)

_REPLAY_ENGINES = ("reference", "fast", "vectorized")


def _replay_matches(instance, engine: str) -> bool:
    """Bit-identical replay check on one engine (ratio, duration, tx)."""
    metrics = replay_instance(instance, engine=engine)
    ratio = metrics.competitive_ratio
    return (
        ratio is not None
        and ratio == instance.competitive_ratio
        and metrics.terminated
        and int(metrics.duration) == int(instance.metrics["duration"])
        and metrics.transmissions == int(instance.metrics["transmissions"])
    )


def run_adversarial_search(
    n: int = 60,
    budget: int = 192,
    seed: int = 0,
    engine: str = "vectorized",
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    store: Optional[str] = None,
    min_beating_pairs: int = 2,
) -> ExperimentReport:
    """Run E26 (see module docstring).

    Args:
        n: node count (the claim is stated at n=60).
        budget: evaluation budget shared by search and random baseline.
        seed: master seed; the whole experiment is deterministic in it.
        engine: scoring engine for search and baseline (replay always
            exercises all three engines).
        pairs: ``(algorithm, family)`` pairs to search; defaults to
            gathering × {uniform, zipf}.
        store: optional corpus directory to persist the finds into
            (defaults to a throwaway temp store).
        min_beating_pairs: how many pairs must strictly beat the baseline
            p99 for the verdict to pass.
    """
    chosen = tuple(pairs) if pairs is not None else _DEFAULT_PAIRS
    table = ResultTable(
        title=f"E26: guided search vs equal-budget random sampling (n={n}, budget={budget})",
        columns=[
            "algorithm",
            "family",
            "search_best",
            "random_best",
            "random_p99",
            "beats_p99",
            "lineage_depth",
            "replay_identical",
        ],
    )
    details: Dict[str, object] = {"n": n, "budget": budget, "seed": seed}
    beating = 0
    all_replays_identical = True
    digests: List[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        corpus = WorstCaseCorpus(store if store is not None else tmp)
        for algorithm, family in chosen:
            config = SearchConfig(
                algorithm=algorithm,
                family=family,
                n=n,
                budget=budget,
                seed=seed,
                engine=engine,
            )
            outcome = run_search(config)
            baseline = run_random_baseline(config)
            ratios = [
                m.competitive_ratio
                for m in baseline
                if m.competitive_ratio is not None
                and math.isfinite(m.competitive_ratio)
            ]
            p99 = float(np.percentile(np.asarray(ratios), 99.0))
            best = outcome.best_ratio
            beats = bool(math.isfinite(best) and best > p99)
            beating += beats

            replay_identical = False
            lineage_depth = len(outcome.best.lineage)
            if math.isfinite(best):
                digest = corpus.add(
                    instance_from_candidate(config, outcome.best)
                )
                digests.append(digest)
                instance = corpus.load(digest)
                replay_identical = all(
                    _replay_matches(instance, replay_engine)
                    for replay_engine in _REPLAY_ENGINES
                )
            all_replays_identical &= replay_identical

            table.add_row(
                algorithm=algorithm,
                family=family,
                search_best=round(best, 3) if math.isfinite(best) else None,
                random_best=round(max(ratios), 3) if ratios else None,
                random_p99=round(p99, 3),
                beats_p99=beats,
                lineage_depth=lineage_depth,
                replay_identical=replay_identical,
            )
            details[f"{algorithm}x{family}"] = {
                "search_best": best,
                "random_p99": p99,
                "beats_p99": beats,
                "replay_identical": replay_identical,
            }

    verdict = beating >= min_beating_pairs and all_replays_identical
    table.add_note(
        f"{beating}/{len(chosen)} pairs beat the random p99 "
        f"(need >= {min_beating_pairs}); corpus replay bit-identical on "
        f"{'/'.join(_REPLAY_ENGINES)}: {all_replays_identical}."
    )
    table.add_note(
        "Search and baseline share the budget but draw from disjoint "
        "derive_seed streams; the whole experiment is deterministic per seed."
    )
    details["digests"] = digests
    details["beating_pairs"] = beating
    return ExperimentReport(
        experiment_id="E26",
        claim=(
            "Adversarial schedule search finds strictly harder instances "
            "than equal-budget random sampling, and every find replays its "
            "ratio bit-for-bit on all three engines"
        ),
        tables=[table],
        verdict=verdict,
        details=details,
    )

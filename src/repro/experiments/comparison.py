"""Experiment E16: head-to-head comparison of all algorithms.

This is the "summary figure" a systems reader expects: mean termination
time (in interactions) of every algorithm across an ``n`` sweep under the
randomized adversary, together with the offline optimum.  The qualitative
shape the paper implies must hold: the offline optimum (and the
future/full-knowledge algorithms) are fastest, Waiting Greedy sits strictly
between them and the no-knowledge algorithms, Gathering beats Waiting, and
the random-receiver baseline is worst.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms.full_knowledge import FullKnowledge
from ..algorithms.future_broadcast import FutureBroadcast
from ..algorithms.gathering import Gathering
from ..algorithms.random_baseline import RandomReceiver
from ..algorithms.waiting import Waiting
from ..algorithms.waiting_greedy import WaitingGreedy, optimal_tau
from ..core.algorithm import DODAAlgorithm
from ..sim.results import ExperimentReport, ResultTable
from ..sim.runner import run_random_trial
from ..sim.seeding import derive_seed

DEFAULT_NS: Sequence[int] = (16, 24, 36, 54)
DEFAULT_TRIALS = 8


def algorithm_lineup(tau_constant: float = 2.0) -> Dict[str, Callable[[int], DODAAlgorithm]]:
    """The factories compared by the summary experiment, keyed by display name."""
    return {
        "full_knowledge": lambda n: FullKnowledge(),
        "future_broadcast": lambda n: FutureBroadcast(),
        "waiting_greedy": lambda n: WaitingGreedy(
            tau=optimal_tau(n, constant=tau_constant)
        ),
        "gathering": lambda n: Gathering(),
        "waiting": lambda n: Waiting(),
        "random_receiver": lambda n: RandomReceiver(seed=0),
    }


def run_comparison(
    ns: Sequence[int] = DEFAULT_NS,
    trials: int = DEFAULT_TRIALS,
    tau_constant: float = 2.0,
    master_seed: int = 0,
    lineup: Optional[Dict[str, Callable[[int], DODAAlgorithm]]] = None,
) -> ExperimentReport:
    """E16 — mean interactions to termination for every algorithm across n."""
    factories = lineup or algorithm_lineup(tau_constant=tau_constant)
    table = ResultTable(
        title="Comparison: mean interactions to termination (randomized adversary)",
        columns=["n"] + list(factories),
    )
    means: Dict[str, List[float]] = {name: [] for name in factories}
    for n in ns:
        row: Dict[str, float] = {"n": n}
        for name, factory in factories.items():
            durations: List[float] = []
            for trial in range(trials):
                seed = derive_seed(master_seed, "comparison", name, n, trial)
                metrics = run_random_trial(factory(int(n)), int(n), seed)
                durations.append(metrics.duration)
            finite = [d for d in durations if not math.isinf(d)]
            mean = sum(finite) / len(finite) if finite else math.inf
            row[name] = mean
            means[name].append(mean)
        table.add_row(**row)
    # Expected ordering at the largest n (the paper's qualitative claim).
    last = {name: values[-1] for name, values in means.items()}
    ordering_holds = (
        last["full_knowledge"] <= last["waiting_greedy"] <= last["gathering"]
        and last["gathering"] <= last["waiting"]
        and last["future_broadcast"] <= last["waiting_greedy"]
    )
    table.add_note(
        "expected ordering at the largest n: full/future knowledge < waiting "
        "greedy < gathering <= waiting"
    )
    return ExperimentReport(
        experiment_id="E16",
        claim="Knowledge strictly helps: the more a node knows, the fewer "
        "interactions the aggregation needs",
        tables=[table],
        verdict=ordering_holds,
        details={"means_at_largest_n": last},
    )

"""repro — reproduction of "Distributed Online Data Aggregation in Dynamic Graphs".

The package implements, tests and benchmarks the model, algorithms,
adversaries and bounds of Bramas, Masuzawa and Tixeuil (ICDCS 2016):

* :mod:`repro.core` — the DODA problem: interactions, execution engine,
  cost measure;
* :mod:`repro.graph` — dynamic graphs, generators, journeys, contact traces;
* :mod:`repro.adversaries` — oblivious, adaptive, randomized and mobility
  adversaries, including the impossibility constructions of Theorems 1–3;
* :mod:`repro.algorithms` — Waiting, Gathering, Waiting Greedy, spanning
  tree, future broadcast, full knowledge, baselines;
* :mod:`repro.knowledge` — the knowledge oracles (meetTime, future, G-bar,
  full knowledge);
* :mod:`repro.offline` — exact offline optimum (convergecast) and schedules;
* :mod:`repro.ratio` — competitive-ratio subsystem: trial-vectorized
  offline-optimum kernels and the shared ratio semantics behind the
  engines' ``capture_opt`` path;
* :mod:`repro.analysis` — bounds, growth-rate fitting, statistics;
* :mod:`repro.sim` — trial/sweep runners and result tables;
* :mod:`repro.experiments` — one module per paper claim (see DESIGN.md);
* :mod:`repro.campaign` — declarative campaign specs, sharded resumable
  runs, content-addressed result stores and paper-figure reports.

Quickstart::

    from repro import Gathering, RandomizedAdversary, Executor

    nodes = list(range(50))
    adversary = RandomizedAdversary(nodes, seed=1)
    result = Executor(nodes, sink=0, algorithm=Gathering()).run(
        adversary, max_interactions=50_000
    )
    print(result.terminated, result.duration)
"""

from .adversaries import (
    AdaptiveAdversary,
    Adversary,
    CommittedBlockAdversary,
    CommunityAdversary,
    EventuallyPeriodicAdversary,
    NonUniformRandomizedAdversary,
    RandomWaypointAdversary,
    RandomizedAdversary,
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    TraceReplayAdversary,
    make_adversary,
    theorem4_delaying_sequence,
)
from .algorithms import (
    CoinFlipGathering,
    FullKnowledge,
    FutureBroadcast,
    Gathering,
    RandomReceiver,
    SpanningTreeAggregation,
    Waiting,
    WaitingGreedy,
    optimal_tau,
)
from .core import (
    DODAAlgorithm,
    DataToken,
    ExecutionResult,
    Executor,
    FastExecutor,
    Interaction,
    InteractionSequence,
    NetworkState,
    NodeView,
    Transmission,
    cost_of_duration,
    cost_of_result,
    is_optimal,
    registry,
    run_algorithm,
)
from .graph import (
    BodyAreaNetworkTrace,
    DynamicGraph,
    RandomWaypointTrace,
    VehicularGridTrace,
    uniform_random_sequence,
)
from .knowledge import (
    FullKnowledge as FullKnowledgeOracle,
    FutureKnowledge,
    KnowledgeBundle,
    MeetTimeKnowledge,
    UnderlyingGraphKnowledge,
)
from .offline import (
    AggregationSchedule,
    build_convergecast_schedule,
    foremost_arrival_times,
    opt,
    validate_schedule,
)
from .ratio import (
    competitive_ratio,
    foremost_arrival_matrix,
    opt_end_matrix,
    successive_convergecast_end_matrix,
)
from .sim import (
    ExperimentReport,
    ResultTable,
    run_random_trial,
    sweep_adversary_batched,
    sweep_random_adversary,
)

__version__ = "1.4.0"

from .campaign import (  # noqa: E402  (needs __version__ for store manifests)
    CampaignReport,
    CampaignSpec,
    CampaignStore,
    build_campaign_report,
    load_campaign_spec,
    run_campaign,
)

__all__ = [
    "AdaptiveAdversary",
    "Adversary",
    "AggregationSchedule",
    "BodyAreaNetworkTrace",
    "CampaignReport",
    "CampaignSpec",
    "CampaignStore",
    "CoinFlipGathering",
    "CommittedBlockAdversary",
    "CommunityAdversary",
    "DODAAlgorithm",
    "DataToken",
    "DynamicGraph",
    "EventuallyPeriodicAdversary",
    "ExecutionResult",
    "Executor",
    "ExperimentReport",
    "FastExecutor",
    "FullKnowledge",
    "FullKnowledgeOracle",
    "FutureBroadcast",
    "FutureKnowledge",
    "Gathering",
    "Interaction",
    "InteractionSequence",
    "KnowledgeBundle",
    "MeetTimeKnowledge",
    "NetworkState",
    "NodeView",
    "NonUniformRandomizedAdversary",
    "RandomReceiver",
    "RandomWaypointAdversary",
    "RandomWaypointTrace",
    "RandomizedAdversary",
    "ResultTable",
    "SpanningTreeAggregation",
    "Theorem1Adversary",
    "Theorem2Construction",
    "Theorem3Adversary",
    "TraceReplayAdversary",
    "Transmission",
    "UnderlyingGraphKnowledge",
    "VehicularGridTrace",
    "Waiting",
    "WaitingGreedy",
    "build_campaign_report",
    "build_convergecast_schedule",
    "competitive_ratio",
    "cost_of_duration",
    "cost_of_result",
    "foremost_arrival_matrix",
    "foremost_arrival_times",
    "is_optimal",
    "load_campaign_spec",
    "make_adversary",
    "opt",
    "opt_end_matrix",
    "optimal_tau",
    "successive_convergecast_end_matrix",
    "registry",
    "run_algorithm",
    "run_campaign",
    "run_random_trial",
    "sweep_adversary_batched",
    "sweep_random_adversary",
    "theorem4_delaying_sequence",
    "uniform_random_sequence",
    "validate_schedule",
    "__version__",
]

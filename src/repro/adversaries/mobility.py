"""Committed mobility adversaries (the paper's motivating scenarios).

The paper motivates the interaction model with body-area sensors and cars in
a city, but analyses only the uniform randomized adversary; its concluding
remarks ask how realistic, skewed contact patterns change the Section 4
bounds.  This module turns the mobility *workloads* of
:mod:`repro.graph.traces` into first-class **adversaries**: objects that
commit to their future like :class:`~repro.adversaries.randomized.
RandomizedAdversary` does, so that

* the ``meetTime`` and ``future`` oracles answer consistently with the
  interactions the executor replays (``next_meeting`` over the committed
  future), and
* :class:`~repro.core.fast_execution.FastExecutor` consumes them in numpy
  blocks through the shared committed-block protocol
  (:class:`~repro.adversaries.committed.CommittedBlockAdversary`).

Three families are provided:

* :class:`RandomWaypointAdversary` — nodes move in a unit square under the
  random-waypoint mobility model; every simulation step serialises the
  pairs within radio range into the paper's one-interaction-per-step model;
* :class:`CommunityAdversary` — a home-cell / community mixture: each
  interaction picks a node uniformly, which then meets a member of its own
  community with probability ``p_intra`` and a uniformly random other node
  otherwise (Zipf-style hubs emerge when community sizes are skewed);
* :class:`TraceReplayAdversary` — replays a recorded contact trace (an
  :class:`~repro.core.interaction.InteractionSequence`, a
  :class:`~repro.graph.dynamic_graph.DynamicGraph`, or a CSV file via
  :func:`repro.graph.trace_io.load_contact_csv`) as a finite committed
  future.

All draws are pure functions of the construction arguments, so two
adversaries built with the same parameters commit to the same sequence in
any process — the property the parallel sweep runner relies on.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import InteractionSequence
from ..graph.dynamic_graph import DynamicGraph
from .committed import CommittedBlockAdversary

__all__ = [
    "CommunityAdversary",
    "RandomWaypointAdversary",
    "TraceReplayAdversary",
]


class RandomWaypointAdversary(CommittedBlockAdversary):
    """Random-waypoint mobility in a unit square, committed as interactions.

    Nodes pick a random destination and speed, move towards it, and repeat.
    At every simulation step, each pair of nodes within ``radio_range`` is
    in contact; the step's contacts are serialised in a seeded random order
    (the standard reduction from evolving graphs to the paper's pairwise
    model).  ``static_node`` (typically the sink, modelling a collection
    point) is pinned at the centre of the arena.

    The mobility simulation advances in whole steps regardless of how the
    committed future is queried, so the committed sequence is a pure
    function of the construction arguments.

    Args:
        nodes: the node set.
        seed: RNG seed driving waypoints, speeds and serialisation order.
        radio_range: contact distance in the unit square.
        speed_range: per-leg speed drawn uniformly from this interval.
        static_node: optional node pinned at (0.5, 0.5); None moves all.
        max_horizon: safety cap on the committed future.
        max_idle_steps: raise if this many consecutive steps produce no
            contact (a sign the radio range is too small to ever connect).
    """

    family = "mobility"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        seed: Optional[int] = None,
        radio_range: float = 0.18,
        speed_range: Tuple[float, float] = (0.02, 0.06),
        static_node: Optional[NodeId] = None,
        max_horizon: int = 10_000_000,
        max_idle_steps: int = 100_000,
    ) -> None:
        super().__init__(nodes, max_horizon=max_horizon)
        if radio_range <= 0:
            raise ConfigurationError("radio_range must be positive")
        low, high = speed_range
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"speed_range must satisfy 0 < low <= high, got {speed_range}"
            )
        if static_node is not None and static_node not in self._index_of:
            raise ConfigurationError(
                f"static_node {static_node!r} is not one of the nodes"
            )
        self._radio_range = float(radio_range)
        self._speed_range = (float(low), float(high))
        self._max_idle_steps = max_idle_steps
        self._rng = np.random.Generator(np.random.PCG64(seed))
        n = len(self._nodes)
        self._positions = self._rng.random((n, 2))
        self._destinations = self._rng.random((n, 2))
        self._speeds = self._rng.uniform(low, high, size=n)
        self._static_index: Optional[int] = None
        if static_node is not None:
            index = self._index_of[static_node]
            self._static_index = index
            self._positions[index] = (0.5, 0.5)
            self._destinations[index] = (0.5, 0.5)
            self._speeds[index] = 0.0
        # FIFO buffer of drawn-but-uncommitted contacts (whole steps are
        # simulated at once; _sample_block serves them k at a time).
        self._buffer_i: List[int] = []
        self._buffer_j: List[int] = []
        self._buffer_head = 0

    # ------------------------------------------------------------------ #
    def _advance(self) -> None:
        """Move every node one step towards its destination, vectorised."""
        delta = self._destinations - self._positions
        distance = np.hypot(delta[:, 0], delta[:, 1])
        arrived = distance <= self._speeds
        moving = ~arrived
        if np.any(moving):
            ratio = self._speeds[moving] / distance[moving]
            self._positions[moving] += delta[moving] * ratio[:, None]
        if np.any(arrived):
            self._positions[arrived] = self._destinations[arrived]
            count = int(arrived.sum())
            self._destinations[arrived] = self._rng.random((count, 2))
            self._speeds[arrived] = self._rng.uniform(
                *self._speed_range, size=count
            )
        if self._static_index is not None:
            index = self._static_index
            self._positions[index] = (0.5, 0.5)
            self._destinations[index] = (0.5, 0.5)
            self._speeds[index] = 0.0

    def _step_contacts(self) -> Tuple[np.ndarray, np.ndarray]:
        """All pairs currently within radio range, in seeded random order."""
        diff = self._positions[:, None, :] - self._positions[None, :, :]
        within = np.hypot(diff[..., 0], diff[..., 1]) <= self._radio_range
        i, j = np.nonzero(np.triu(within, k=1))
        if i.size > 1:
            order = self._rng.permutation(i.size)
            i, j = i[order], j[order]
        return i.astype(np.int64), j.astype(np.int64)

    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        idle = 0
        while len(self._buffer_i) - self._buffer_head < k:
            self._advance()
            i, j = self._step_contacts()
            if i.size == 0:
                idle += 1
                if idle > self._max_idle_steps:
                    raise ConfigurationError(
                        f"no contact in {self._max_idle_steps} consecutive "
                        "mobility steps; increase radio_range or node count"
                    )
                continue
            idle = 0
            self._buffer_i.extend(i.tolist())
            self._buffer_j.extend(j.tolist())
        head = self._buffer_head
        block_i = np.array(self._buffer_i[head : head + k], dtype=np.int64)
        block_j = np.array(self._buffer_j[head : head + k], dtype=np.int64)
        self._buffer_head += k
        if self._buffer_head > 1_000_000:
            # Compact the served prefix so the buffer does not grow forever.
            del self._buffer_i[: self._buffer_head]
            del self._buffer_j[: self._buffer_head]
            self._buffer_head = 0
        return block_i, block_j


class CommunityAdversary(CommittedBlockAdversary):
    """Home-cell / community mobility as a committed mixture distribution.

    Every interaction picks an initiating node uniformly at random; with
    probability ``p_intra`` the partner is a uniformly random member of the
    initiator's home community, otherwise a uniformly random other node.
    With ``communities=1`` (or ``p_intra=0``) this degenerates to the
    uniform randomized adversary; larger community counts model the strong
    locality of human and vehicular contact traces.

    Nodes are assigned to homes round-robin (node ``i`` lives in community
    ``i % communities``), which keeps the assignment a deterministic
    function of the node order.

    Args:
        nodes: the node set.
        communities: number of home cells (defaults to ``ceil(sqrt(n))``).
        p_intra: probability that an interaction stays within the
            initiator's community (given the community has another member).
        seed: RNG seed.
        max_horizon: safety cap on the committed future.
    """

    family = "mobility"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        communities: Optional[int] = None,
        p_intra: float = 0.8,
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        super().__init__(nodes, max_horizon=max_horizon)
        n = len(self._nodes)
        if communities is None:
            communities = max(1, int(np.ceil(np.sqrt(n))))
        if communities < 1 or communities > n:
            raise ConfigurationError(
                f"communities must be in 1..{n}, got {communities}"
            )
        if not 0.0 <= p_intra <= 1.0:
            raise ConfigurationError(
                f"p_intra must be a probability, got {p_intra}"
            )
        self._communities = int(communities)
        self._p_intra = float(p_intra)
        self._rng = np.random.Generator(np.random.PCG64(seed))
        self._home = np.arange(n, dtype=np.int64) % self._communities
        # members[c] lists the dense indices living in community c, so an
        # intra-community draw is one bounded integer plus a gather.
        members = [
            np.nonzero(self._home == c)[0].astype(np.int64)
            for c in range(self._communities)
        ]
        sizes = np.array([m.size for m in members], dtype=np.int64)
        offsets = np.zeros(self._communities, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        self._members_flat = np.concatenate(members)
        self._community_size = sizes
        self._community_offset = offsets
        self._position_in_community = np.empty(n, dtype=np.int64)
        for c, member in enumerate(members):
            self._position_in_community[member] = np.arange(member.size)

    def community_of(self, node: NodeId) -> int:
        """The home community of ``node``."""
        return int(self._home[self._index_of[node]])

    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        n = len(self._nodes)
        i = self._rng.integers(0, n, size=k)
        stay = self._rng.random(size=k) < self._p_intra
        home = self._home[i]
        size = self._community_size[home]
        # Singleton communities cannot host an intra contact.
        stay &= size > 1
        # Both partner draws consume RNG for every position so the stream
        # shape never depends on the data-dependent intra/inter split.
        intra_raw = self._rng.integers(0, np.maximum(size - 1, 1), size=k)
        inter_raw = self._rng.integers(0, n - 1, size=k)
        position = self._position_in_community[i]
        intra_raw += intra_raw >= position
        # The gather evaluates for masked-out (inter / singleton) entries
        # too, so clamp their index in-bounds; np.where discards the value.
        intra = self._members_flat[
            self._community_offset[home] + np.minimum(intra_raw, size - 1)
        ]
        inter = inter_raw + (inter_raw >= i)
        j = np.where(stay, intra, inter)
        return i, j


class TraceReplayAdversary(CommittedBlockAdversary):
    """Replay a recorded contact trace as a finite committed future.

    Accepts an :class:`~repro.core.interaction.InteractionSequence`, a
    :class:`~repro.graph.dynamic_graph.DynamicGraph` (whose node set and
    order are preserved), or — via :meth:`from_csv` — a ``time,u,v`` CSV
    contact log.  The committed future is exactly the trace: once it is
    exhausted, ``interaction_at`` returns None and ``next_meeting`` answers
    None for meetings beyond the trace, so the ``meetTime``/``future``
    oracles degrade exactly like they do on a finite committed sequence.

    Args:
        trace: the contact trace to replay.
        nodes: optional explicit node set (may be a superset of the nodes
            appearing in the trace, e.g. to include nodes that never
            interact); defaults to the trace's nodes.
        max_horizon: optional cap replaying only a prefix of the trace.
    """

    family = "mobility"

    def __init__(
        self,
        trace: Union[InteractionSequence, DynamicGraph],
        nodes: Optional[Sequence[NodeId]] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        if isinstance(trace, DynamicGraph):
            sequence = trace.sequence
            if nodes is None:
                nodes = list(trace.nodes)
        elif isinstance(trace, InteractionSequence):
            sequence = trace
        else:
            raise ConfigurationError(
                "trace must be an InteractionSequence or a DynamicGraph, "
                f"got {type(trace).__name__}"
            )
        if nodes is None:
            nodes = sorted(sequence.nodes(), key=repr)
        super().__init__(nodes, max_horizon=max_horizon)
        missing = sequence.nodes() - set(self._nodes)
        if missing:
            raise ConfigurationError(
                f"trace references nodes outside the declared node set: "
                f"{sorted(map(repr, missing))}"
            )
        self._trace_i = np.array(
            [self._index_of[interaction.u] for interaction in sequence],
            dtype=np.int64,
        )
        self._trace_j = np.array(
            [self._index_of[interaction.v] for interaction in sequence],
            dtype=np.int64,
        )

    @classmethod
    def from_dense_indices(
        cls,
        i: np.ndarray,
        j: np.ndarray,
        nodes: Sequence[NodeId],
        max_horizon: int = 10_000_000,
    ) -> "TraceReplayAdversary":
        """Build a replay adversary directly from dense node-index arrays.

        ``i``/``j`` are positions into ``nodes`` (the same dense encoding the
        committed buffers and the batched engines use), so this constructor
        skips the per-interaction :class:`~repro.core.interaction.
        InteractionSequence` round trip entirely — the adversarial search
        loop scores thousands of mutated schedules through this path.  The
        arrays are copied and validated (same length, indices in range,
        no self-interactions).

        Raises:
            ConfigurationError: if the arrays are malformed.
        """
        trace_i = np.ascontiguousarray(i, dtype=np.int64)
        trace_j = np.ascontiguousarray(j, dtype=np.int64)
        if trace_i.ndim != 1 or trace_j.ndim != 1:
            raise ConfigurationError("index arrays must be one-dimensional")
        if trace_i.shape[0] != trace_j.shape[0]:
            raise ConfigurationError(
                f"index arrays disagree on length: {trace_i.shape[0]} vs "
                f"{trace_j.shape[0]}"
            )
        n = len(nodes)
        if trace_i.size:
            low = min(int(trace_i.min()), int(trace_j.min()))
            high = max(int(trace_i.max()), int(trace_j.max()))
            if low < 0 or high >= n:
                raise ConfigurationError(
                    f"dense indices must lie in [0, {n}), found [{low}, {high}]"
                )
            if bool(np.any(trace_i == trace_j)):
                raise ConfigurationError("self-interactions are not allowed")
        adversary = cls.__new__(cls)
        CommittedBlockAdversary.__init__(adversary, nodes, max_horizon=max_horizon)
        adversary._trace_i = trace_i.copy()
        adversary._trace_j = trace_j.copy()
        return adversary

    @classmethod
    def from_csv(
        cls,
        path: Union[str, Path],
        sink: NodeId,
        delimiter: str = ",",
        nodes: Optional[Sequence[NodeId]] = None,
        max_horizon: int = 10_000_000,
    ) -> "TraceReplayAdversary":
        """Load a ``time,u,v`` contact CSV and replay it (see ``trace_io``)."""
        from ..graph.trace_io import load_contact_csv

        graph = load_contact_csv(path, sink, delimiter=delimiter, nodes=nodes)
        return cls(graph, max_horizon=max_horizon)

    @property
    def trace_length(self) -> int:
        """Total number of interactions in the replayed trace."""
        return int(self._trace_i.shape[0])

    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        start = self._size
        stop = min(start + k, self.trace_length)
        return self._trace_i[start:stop], self._trace_j[start:stop]

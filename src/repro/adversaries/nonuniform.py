"""Non-uniform randomized adversary (concluding remarks, question 3).

The paper closes by asking whether randomized adversaries with a
*non-uniform* interaction distribution change the Section 4 bounds (in the
spirit of Yamauchi et al. on probabilistic schedulers).  This adversary
draws each interaction with probability proportional to the product of the
two endpoints' weights, which covers the natural skews:

* a *popular hub* (one node, possibly the sink, with a much larger weight);
* *Zipf-distributed* activity (a few very social nodes, a long tail);
* the uniform adversary as the special case of equal weights.

The committed-future machinery is shared with :class:`RandomizedAdversary`
through :class:`~repro.adversaries.committed.CommittedBlockAdversary`, so
the ``meetTime`` and ``future`` oracles stay consistent with the replayed
interactions, both engines can consume the adversary (the fast one in
batches), and the ablation experiment (E18) can rerun the paper's
algorithms unchanged under the skewed distribution.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from .committed import CommittedBlockAdversary


def zipf_weights(nodes: Sequence[NodeId], exponent: float = 1.0) -> Dict[NodeId, float]:
    """Zipf-like activity weights: the i-th node gets weight ``1 / (i+1)^exponent``."""
    return {
        node: 1.0 / (index + 1) ** exponent for index, node in enumerate(nodes)
    }


def hub_weights(
    nodes: Sequence[NodeId], hub: NodeId, hub_factor: float = 10.0
) -> Dict[NodeId, float]:
    """Equal weights except for one hub node that is ``hub_factor`` times more active."""
    weights = {node: 1.0 for node in nodes}
    if hub not in weights:
        raise ConfigurationError(f"hub {hub!r} is not one of the nodes")
    weights[hub] = hub_factor
    return weights


class NonUniformRandomizedAdversary(CommittedBlockAdversary):
    """Randomized adversary with pair probability proportional to weight products."""

    family = "randomized"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        weights: Optional[Dict[NodeId, float]] = None,
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        super().__init__(nodes, max_horizon=max_horizon)
        weights = weights or {node: 1.0 for node in self._nodes}
        missing = set(self._nodes) - set(weights)
        if missing:
            raise ConfigurationError(
                f"missing weights for nodes {sorted(map(repr, missing))}"
            )
        if any(weights[node] <= 0 for node in self._nodes):
            raise ConfigurationError("weights must be strictly positive")
        self._weights = {node: float(weights[node]) for node in self._nodes}
        self._pairs: List[Tuple[NodeId, NodeId]] = list(
            itertools.combinations(self._nodes, 2)
        )
        # Dense index view of the same pair list, for committed-block commits.
        self._pair_indices = np.array(
            [
                (self._index_of[u], self._index_of[v])
                for u, v in self._pairs
            ],
            dtype=np.int64,
        )
        pair_weights = [
            self._weights[u] * self._weights[v] for u, v in self._pairs
        ]
        total = sum(pair_weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in pair_weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0
        self._cdf = np.asarray(self._cumulative, dtype=np.float64)
        # Seeded PCG64 stream (seeds arrive derived via repro.sim.seeding);
        # the stdlib-random stream this replaces was never byte-pinned — the
        # committed-future contract only requires draws to be a pure,
        # chunk-alignment-independent function of the seed, which a single
        # Generator consumed in commit order satisfies.
        self._rng = np.random.Generator(np.random.PCG64(seed))

    # ------------------------------------------------------------------ #
    def pair_probability(self, u: NodeId, v: NodeId) -> float:
        """The per-interaction probability of the pair ``{u, v}``."""
        try:
            index = self._pairs.index((u, v))
        except ValueError:
            index = self._pairs.index((v, u))
        lower = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - lower

    def _sample_block(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``k`` pairs by inverse-CDF sampling, one uniform each.

        Exactly one RNG value is consumed per committed interaction, in
        commit order (PCG64 doubles are generated sequentially, so a block
        draw of ``k`` equals ``k`` single draws), keeping the committed
        future a pure prefix-deterministic function of the seed regardless
        of chunk alignment.
        """
        last = len(self._pairs) - 1
        points = self._rng.random(k)
        picks = np.minimum(
            np.searchsorted(self._cdf, points, side="left"), last
        ).astype(np.int64)
        chosen = self._pair_indices[picks]
        return chosen[:, 0].copy(), chosen[:, 1].copy()

    def _meeting_search_block(self, iu: int, iv: int) -> int:
        """Extend by the pair's expected waiting time per probe."""
        u, v = self._nodes[iu], self._nodes[iv]
        return max(16, int(2.0 / max(self.pair_probability(u, v), 1e-9)))

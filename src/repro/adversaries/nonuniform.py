"""Non-uniform randomized adversary (concluding remarks, question 3).

The paper closes by asking whether randomized adversaries with a
*non-uniform* interaction distribution change the Section 4 bounds (in the
spirit of Yamauchi et al. on probabilistic schedulers).  This adversary
draws each interaction with probability proportional to the product of the
two endpoints' weights, which covers the natural skews:

* a *popular hub* (one node, possibly the sink, with a much larger weight);
* *Zipf-distributed* activity (a few very social nodes, a long tail);
* the uniform adversary as the special case of equal weights.

The committed-future machinery mirrors :class:`RandomizedAdversary`, so the
``meetTime`` and ``future`` oracles stay consistent with the replayed
interactions, and the ablation experiment (E18) can rerun the paper's
algorithms unchanged under the skewed distribution.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.data import NodeId
from ..core.exceptions import ConfigurationError
from ..core.interaction import Interaction, InteractionSequence
from ..core.node import NetworkState
from .base import Adversary


def zipf_weights(nodes: Sequence[NodeId], exponent: float = 1.0) -> Dict[NodeId, float]:
    """Zipf-like activity weights: the i-th node gets weight ``1 / (i+1)^exponent``."""
    return {
        node: 1.0 / (index + 1) ** exponent for index, node in enumerate(nodes)
    }


def hub_weights(
    nodes: Sequence[NodeId], hub: NodeId, hub_factor: float = 10.0
) -> Dict[NodeId, float]:
    """Equal weights except for one hub node that is ``hub_factor`` times more active."""
    weights = {node: 1.0 for node in nodes}
    if hub not in weights:
        raise ConfigurationError(f"hub {hub!r} is not one of the nodes")
    weights[hub] = hub_factor
    return weights


class NonUniformRandomizedAdversary(Adversary):
    """Randomized adversary with pair probability proportional to weight products."""

    family = "randomized"

    def __init__(
        self,
        nodes: Sequence[NodeId],
        weights: Optional[Dict[NodeId, float]] = None,
        seed: Optional[int] = None,
        max_horizon: int = 10_000_000,
    ) -> None:
        self._nodes: List[NodeId] = list(nodes)
        if len(self._nodes) < 2:
            raise ConfigurationError("need at least two nodes")
        weights = weights or {node: 1.0 for node in self._nodes}
        missing = set(self._nodes) - set(weights)
        if missing:
            raise ConfigurationError(
                f"missing weights for nodes {sorted(map(repr, missing))}"
            )
        if any(weights[node] <= 0 for node in self._nodes):
            raise ConfigurationError("weights must be strictly positive")
        self._weights = {node: float(weights[node]) for node in self._nodes}
        self._pairs: List[Tuple[NodeId, NodeId]] = list(
            itertools.combinations(self._nodes, 2)
        )
        pair_weights = [
            self._weights[u] * self._weights[v] for u, v in self._pairs
        ]
        total = sum(pair_weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in pair_weights:
            running += weight / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0
        self._rng = random.Random(seed)
        self._max_horizon = max_horizon
        self._committed: List[Tuple[NodeId, NodeId]] = []
        self._meeting_index: Dict[frozenset, List[int]] = {}

    # ------------------------------------------------------------------ #
    def pair_probability(self, u: NodeId, v: NodeId) -> float:
        """The per-interaction probability of the pair ``{u, v}``."""
        try:
            index = self._pairs.index((u, v))
        except ValueError:
            index = self._pairs.index((v, u))
        lower = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - lower

    def _draw_pair(self) -> Tuple[NodeId, NodeId]:
        """Draw one pair according to the weight-product distribution."""
        point = self._rng.random()
        index = bisect.bisect_left(self._cumulative, point)
        index = min(index, len(self._pairs) - 1)
        return self._pairs[index]

    def ensure_committed(self, length: int) -> None:
        """Extend the committed sequence to at least ``length`` interactions."""
        length = min(length, self._max_horizon)
        while len(self._committed) < length:
            pair = self._draw_pair()
            time = len(self._committed)
            self._committed.append(pair)
            self._meeting_index.setdefault(frozenset(pair), []).append(time)

    # ------------------------------------------------------------------ #
    # InteractionProvider / committed-future protocol
    # ------------------------------------------------------------------ #
    def interaction_at(
        self, time: int, state: NetworkState
    ) -> Optional[Interaction]:
        if time >= self._max_horizon:
            return None
        self.ensure_committed(time + 1)
        u, v = self._committed[time]
        return Interaction(time=time, u=u, v=v)

    def committed_prefix(self, length: int) -> InteractionSequence:
        self.ensure_committed(length)
        return InteractionSequence.from_pairs(self._committed[:length])

    def next_meeting(
        self, node: NodeId, peer: NodeId, after: int
    ) -> Optional[int]:
        """Next committed time ``> after`` at which ``{node, peer}`` interact."""
        key = frozenset((node, peer))
        expected_wait = max(16, int(2.0 / max(self.pair_probability(node, peer), 1e-9)))
        while True:
            times = self._meeting_index.get(key, ())
            position = bisect.bisect_right(times, after)
            if position < len(times):
                return times[position]
            if len(self._committed) >= self._max_horizon:
                return None
            self.ensure_committed(len(self._committed) + expected_wait)

    def nodes(self) -> List[NodeId]:
        """The node set the adversary draws from."""
        return list(self._nodes)

"""Named adversary families for runners, sweeps and the CLI.

The sim layer and the CLI refer to committed adversaries by *family name*
(``--adversary waypoint``) instead of constructing classes directly, so a
sweep can swap the interaction distribution without touching anything else.
Every family listed here implements the committed-block protocol of
:class:`~repro.adversaries.committed.CommittedBlockAdversary` and is
therefore supported by both execution engines (the fast one in batches) and
by the ``meetTime``/``future`` knowledge oracles.

Trace replay (:class:`~repro.adversaries.mobility.TraceReplayAdversary`) is
deliberately *not* a named family: a recorded trace fixes both the node set
and the horizon, so it does not fit a ``(nodes, seed)``-parameterised sweep;
construct it directly instead.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..core.data import NodeId
from .committed import CommittedBlockAdversary
from .mobility import CommunityAdversary, RandomWaypointAdversary
from .nonuniform import NonUniformRandomizedAdversary, hub_weights, zipf_weights
from .randomized import RandomizedAdversary

__all__ = ["ADVERSARY_FAMILIES", "make_adversary", "resolve_adversary_family"]


def _make_uniform(nodes, seed, max_horizon, sink, params):
    return RandomizedAdversary(nodes, seed=seed, max_horizon=max_horizon)


def _make_zipf(nodes, seed, max_horizon, sink, params):
    exponent = params.get("exponent", 1.0)
    return NonUniformRandomizedAdversary(
        nodes,
        weights=zipf_weights(nodes, exponent=exponent),
        seed=seed,
        max_horizon=max_horizon,
    )


def _make_hub(nodes, seed, max_horizon, sink, params):
    hub = params.get("hub", sink)
    return NonUniformRandomizedAdversary(
        nodes,
        weights=hub_weights(nodes, hub=hub, hub_factor=params.get("hub_factor", 8.0)),
        seed=seed,
        max_horizon=max_horizon,
    )


def _make_waypoint(nodes, seed, max_horizon, sink, params):
    return RandomWaypointAdversary(
        nodes,
        seed=seed,
        radio_range=params.get("radio_range", 0.18),
        speed_range=params.get("speed_range", (0.02, 0.06)),
        static_node=params.get("static_node", sink),
        max_horizon=max_horizon,
    )


def _make_community(nodes, seed, max_horizon, sink, params):
    return CommunityAdversary(
        nodes,
        communities=params.get("communities"),
        p_intra=params.get("p_intra", 0.8),
        seed=seed,
        max_horizon=max_horizon,
    )


#: family name -> factory(nodes, seed, max_horizon, sink, params).
ADVERSARY_FAMILIES: Dict[str, Callable[..., CommittedBlockAdversary]] = {
    "uniform": _make_uniform,
    "zipf": _make_zipf,
    "hub": _make_hub,
    "waypoint": _make_waypoint,
    "community": _make_community,
}


def resolve_adversary_family(name: str) -> Callable[..., CommittedBlockAdversary]:
    """Map an adversary family name to its factory.

    Raises:
        ValueError: if ``name`` is not a known family.
    """
    try:
        return ADVERSARY_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary family {name!r}; "
            f"available: {sorted(ADVERSARY_FAMILIES)}"
        ) from None


def make_adversary(
    family: str,
    nodes: Sequence[NodeId],
    seed: Optional[int] = None,
    max_horizon: int = 10_000_000,
    sink: Optional[NodeId] = None,
    params: Optional[dict] = None,
) -> CommittedBlockAdversary:
    """Build a committed adversary of the named family.

    Args:
        family: one of :data:`ADVERSARY_FAMILIES`.
        nodes: the node set.
        seed: RNG seed (the committed future is a pure function of it).
        max_horizon: safety cap on the committed future.
        sink: sink identifier; families with a distinguished node (``hub``
            defaults its hub, ``waypoint`` its static collection point) use
            it unless overridden through ``params``.
        params: family-specific overrides, e.g. ``{"exponent": 1.5}`` for
            ``zipf`` or ``{"radio_range": 0.25}`` for ``waypoint``.

    Raises:
        ValueError: if ``family`` is unknown.
    """
    factory = resolve_adversary_family(family)
    return factory(nodes, seed, max_horizon, sink, dict(params or {}))

"""Adversary models: oblivious, online adaptive, randomized, and mobility."""

from .base import Adversary, AdaptiveAdversary, EventuallyPeriodicAdversary
from .committed import COMMIT_CHUNK, CommittedBlockAdversary
from .constructions import (
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    theorem4_delaying_sequence,
)
from .factory import ADVERSARY_FAMILIES, make_adversary, resolve_adversary_family
from .mobility import (
    CommunityAdversary,
    RandomWaypointAdversary,
    TraceReplayAdversary,
)
from .nonuniform import NonUniformRandomizedAdversary, hub_weights, zipf_weights
from .randomized import RandomizedAdversary

__all__ = [
    "ADVERSARY_FAMILIES",
    "AdaptiveAdversary",
    "Adversary",
    "COMMIT_CHUNK",
    "CommittedBlockAdversary",
    "CommunityAdversary",
    "EventuallyPeriodicAdversary",
    "NonUniformRandomizedAdversary",
    "RandomWaypointAdversary",
    "RandomizedAdversary",
    "TraceReplayAdversary",
    "hub_weights",
    "make_adversary",
    "resolve_adversary_family",
    "zipf_weights",
    "Theorem1Adversary",
    "Theorem2Construction",
    "Theorem3Adversary",
    "theorem4_delaying_sequence",
]

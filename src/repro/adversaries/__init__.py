"""Adversary models: oblivious, online adaptive, and randomized."""

from .base import Adversary, AdaptiveAdversary, EventuallyPeriodicAdversary
from .constructions import (
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    theorem4_delaying_sequence,
)
from .nonuniform import NonUniformRandomizedAdversary, hub_weights, zipf_weights
from .randomized import RandomizedAdversary

__all__ = [
    "AdaptiveAdversary",
    "Adversary",
    "EventuallyPeriodicAdversary",
    "NonUniformRandomizedAdversary",
    "RandomizedAdversary",
    "hub_weights",
    "zipf_weights",
    "Theorem1Adversary",
    "Theorem2Construction",
    "Theorem3Adversary",
    "theorem4_delaying_sequence",
]

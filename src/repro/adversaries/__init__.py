"""Adversary models: oblivious, online adaptive, randomized, and mobility.

Role: everything that *chooses interactions* lives here — the
impossibility constructions of Theorems 1–3, eventually-periodic
oblivious sequences, and the committed families (uniform, zipf, hub,
waypoint, community, trace replay) catalogued in ``docs/scenarios.md``
and named through :mod:`repro.adversaries.factory`.

Invariants:

* *Committed* adversaries fix their future as a pure function of
  ``(nodes, seed)`` — independent of the algorithm's decisions and of the
  query pattern (chunked ``draw_block`` commitment), which is what makes
  the ``meetTime``/``future`` oracles, batched engines and campaign
  resumes exact.
* *Adaptive* adversaries may read the network state, but only through its
  read-only query methods; they support no future-looking oracles.
"""

from .base import Adversary, AdaptiveAdversary, EventuallyPeriodicAdversary
from .committed import COMMIT_CHUNK, CommittedBlockAdversary
from .constructions import (
    Theorem1Adversary,
    Theorem2Construction,
    Theorem3Adversary,
    theorem4_delaying_sequence,
)
from .factory import ADVERSARY_FAMILIES, make_adversary, resolve_adversary_family
from .mobility import (
    CommunityAdversary,
    RandomWaypointAdversary,
    TraceReplayAdversary,
)
from .nonuniform import NonUniformRandomizedAdversary, hub_weights, zipf_weights
from .randomized import RandomizedAdversary

__all__ = [
    "ADVERSARY_FAMILIES",
    "AdaptiveAdversary",
    "Adversary",
    "COMMIT_CHUNK",
    "CommittedBlockAdversary",
    "CommunityAdversary",
    "EventuallyPeriodicAdversary",
    "NonUniformRandomizedAdversary",
    "RandomWaypointAdversary",
    "RandomizedAdversary",
    "TraceReplayAdversary",
    "hub_weights",
    "make_adversary",
    "resolve_adversary_family",
    "zipf_weights",
    "Theorem1Adversary",
    "Theorem2Construction",
    "Theorem3Adversary",
    "theorem4_delaying_sequence",
]
